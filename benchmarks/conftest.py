"""Shared fixtures for the benchmark harness.

Each benchmark reproduces one table or figure of the paper.  The heavy
inputs -- trained classifiers and synthesized programs -- are cached on
disk by the :class:`~repro.eval.experiments.ExperimentContext`, so the
first run trains/synthesizes and later runs measure attack behaviour
against identical artifacts.

Select the scale with ``REPRO_BENCH_PROFILE`` (``quick`` default,
``full`` for paper-scale thresholds); results are also written to
``benchmarks/results/``.
"""

import os

import pytest

from repro.eval.experiments import ExperimentContext, active_profile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def context():
    return ExperimentContext(active_profile())


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist a formatted table and echo it to stdout."""
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def write_bench_result(results_dir: str, suite: str, metrics) -> str:
    """Persist ``BENCH_<suite>.json`` next to the text table.

    ``metrics`` is an iterable of ``(name, value, unit)`` triples; the
    file follows the ``repro-bench/1`` schema shared with campaign
    reports, so one collector can chart benchmark and campaign numbers
    on the same trajectory.
    """
    from repro.campaign.bench import bench_metric, write_bench

    return write_bench(
        results_dir,
        suite,
        [bench_metric(name, value, unit) for name, value, unit in metrics],
    )
