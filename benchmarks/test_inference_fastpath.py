"""Inference fast path: frozen float32 serving vs. the seed eval path.

The serving stack scores broker-sized batches (32 images per flush by
default), so the number that matters is batched forward-pass throughput.
This benchmark pins the tentpole claim: freezing a model -- folding each
batch norm into its preceding convolution, reusing im2col workspaces,
and skipping every layer's backward-cache construction -- at the float32
serving configuration clears **2x** the throughput of the seed float64
eval path on those batches, while staying decision-identical (same
argmax everywhere, scores allclose at float32 tolerance).

Query counts are untouched by construction: folding changes how fast a
forward pass runs, never how many of them an attack submits.
"""

import time

import numpy as np

from conftest import write_bench_result, write_result
from repro.classifier.blackbox import NetworkClassifier
from repro.models.registry import build_model

ARCH = "googlenet"
BATCH = 32
IMAGE_SIZE = 16
NUM_CLASSES = 10
REPEATS = 5


def _classifier(dtype=None, freeze=False):
    """A freshly built, BN-warmed googlenet (deterministic per seed)."""
    model = build_model(ARCH, num_classes=NUM_CLASSES, seed=0)
    model.train()
    warmup = np.random.default_rng(1)
    for _ in range(2):
        model(warmup.normal(0.45, 0.25, size=(16, 3, IMAGE_SIZE, IMAGE_SIZE)))
    model.eval()
    return NetworkClassifier(model, dtype=dtype, freeze=freeze)


def _time_batches(classifier, images):
    """Best-of-``REPEATS`` seconds to score one broker-sized batch."""
    classifier.batch(images)  # warm workspaces out of the timed region
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        classifier.batch(images)
        best = min(best, time.perf_counter() - started)
    return best


def test_inference_fastpath_throughput(results_dir):
    images = np.random.default_rng(2).random((BATCH, IMAGE_SIZE, IMAGE_SIZE, 3))

    baseline = _classifier()  # the seed configuration: float64, unfrozen
    fast = _classifier(dtype=np.float32, freeze=True)

    # correctness before speed: the fast path must not change decisions
    reference = baseline.batch(images)
    frozen = fast.batch(images)
    decisions_equal = np.array_equal(
        reference.argmax(axis=1), frozen.argmax(axis=1)
    )
    assert decisions_equal, "frozen float32 path changed a decision"
    assert np.allclose(reference, frozen, rtol=1e-3, atol=1e-4)

    baseline_time = _time_batches(baseline, images)
    fast_time = _time_batches(fast, images)
    speedup = baseline_time / fast_time
    baseline_ips = BATCH / baseline_time
    fast_ips = BATCH / fast_time

    lines = [
        f"inference fast path ({ARCH}, batch {BATCH}, "
        f"{IMAGE_SIZE}x{IMAGE_SIZE}, best of {REPEATS})",
        f"  seed eval path (float64):      {baseline_time * 1000:7.1f} ms/batch "
        f"({baseline_ips:.0f} img/s)",
        f"  frozen fast path (float32):    {fast_time * 1000:7.1f} ms/batch "
        f"({fast_ips:.0f} img/s)",
        f"  throughput gain: {speedup:.2f}x",
        f"  decisions identical: {decisions_equal}",
        "  query counts unaffected: folding changes per-query latency only",
    ]
    write_result(results_dir, "inference_fastpath", "\n".join(lines))
    write_bench_result(
        results_dir,
        "inference_fastpath",
        [
            ("baseline_ms_per_batch", baseline_time * 1000, "ms"),
            ("fastpath_ms_per_batch", fast_time * 1000, "ms"),
            ("speedup", speedup, "x"),
        ],
    )

    assert speedup >= 2.0, (
        f"frozen float32 path gained only {speedup:.2f}x over the seed "
        f"eval path (needed 2x)"
    )
