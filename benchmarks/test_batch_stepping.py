"""Batch-native stepping: single-session latency vs. the scalar protocol.

Scalar stepping pays one forward pass per query; batch-native stepping
(DESIGN §14) speculates a window of upcoming queries and answers them
with one vectorized forward, so a single session's latency drops by
roughly the model's batch-amortization factor.  This benchmark pins the
tentpole claim: on the frozen inference fast path, a full-budget sketch
session steps at least **2x** faster batched than scalar -- while
producing a bit-identical result and query count, because speculation
never changes what the attack observes or what the budget charges.

The attack is the budget-exhausting fixed sketch (a constant-False
program enumerates pairs in priority order without score-driven
reordering), so every speculative window is consumed in full and the
measured gap is the protocol's, not the program's.
"""

import time

import numpy as np

from conftest import write_bench_result, write_result
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.blackbox import NetworkClassifier
from repro.core.stepping import drive_steps
from repro.models.registry import build_model
from repro.testkit.differential import result_fingerprint

ARCH = "googlenet"
IMAGE_SIZE = 16
NUM_CLASSES = 10
BUDGET = 192
WINDOW = 32  # the serving default (BatchPolicy.max_batch_size)
REPEATS = 3
PROBE_SEEDS = 8


def _classifier():
    """A freshly built, BN-warmed googlenet on the frozen fast path."""
    model = build_model(ARCH, num_classes=NUM_CLASSES, seed=0)
    model.train()
    warmup = np.random.default_rng(1)
    for _ in range(2):
        model(warmup.normal(0.45, 0.25, size=(16, 3, IMAGE_SIZE, IMAGE_SIZE)))
    model.eval()
    return NetworkClassifier(model, dtype=np.float32, freeze=True)


def _run(attack, classifier, image, true_class, batch_size):
    return drive_steps(
        attack.steps(image, true_class, budget=BUDGET, batch_size=batch_size),
        classifier,
    )


def _pick_case(classifier):
    """The first probe image whose session spends the full budget (the
    latency-relevant case); falls back to the longest session found."""
    best = None
    for seed in range(PROBE_SEEDS):
        image = np.random.default_rng(10 + seed).random(
            (IMAGE_SIZE, IMAGE_SIZE, 3)
        )
        true_class = int(np.argmax(classifier(image)))
        result = _run(FixedSketchAttack(), classifier, image, true_class, 0)
        if best is None or result.queries > best[2].queries:
            best = (image, true_class, result)
        if result.queries >= BUDGET:
            break
    return best


def _time_session(classifier, image, true_class, batch_size):
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        _run(FixedSketchAttack(), classifier, image, true_class, batch_size)
        best = min(best, time.perf_counter() - started)
    return best


def test_batched_stepping_session_latency(results_dir):
    classifier = _classifier()
    image, true_class, scalar_result = _pick_case(classifier)

    # correctness before speed: batched must be bit-identical
    batched_result = _run(
        FixedSketchAttack(), classifier, image, true_class, WINDOW
    )
    assert result_fingerprint(batched_result) == result_fingerprint(
        scalar_result
    ), "batched stepping changed the attack result"

    scalar_time = _time_session(classifier, image, true_class, 0)
    batched_time = _time_session(classifier, image, true_class, WINDOW)
    speedup = scalar_time / batched_time
    queries = scalar_result.queries

    lines = [
        f"batch-native stepping ({ARCH} frozen float32, "
        f"{IMAGE_SIZE}x{IMAGE_SIZE}, budget {BUDGET}, window {WINDOW}, "
        f"best of {REPEATS})",
        f"  session queries:        {queries}",
        f"  scalar protocol:        {scalar_time * 1000:7.1f} ms/session "
        f"({queries / scalar_time:.0f} q/s)",
        f"  batched protocol:       {batched_time * 1000:7.1f} ms/session "
        f"({queries / batched_time:.0f} q/s)",
        f"  single-session speedup: {speedup:.2f}x",
        "  results bit-identical: same AttackResult, same query count",
    ]
    write_result(results_dir, "batch_stepping", "\n".join(lines))
    write_bench_result(
        results_dir,
        "batch_stepping",
        [
            ("scalar_ms_per_session", scalar_time * 1000, "ms"),
            ("batched_ms_per_session", batched_time * 1000, "ms"),
            ("speedup", speedup, "x"),
        ],
    )

    assert speedup >= 2.0, (
        f"batched stepping gained only {speedup:.2f}x over the scalar "
        f"protocol (needed 2x)"
    )
