"""Table 2 (Appendix C): the value of the conditions and the search.

Paper shape to reproduce, per CIFAR classifier:

- OPPSLA needs fewer queries than Sketch+False (the paper's avg gap: 3x),
- OPPSLA needs fewer (or comparable) queries than Sketch+Random (1.4x),
- Sparse-RS needs the most queries of all approaches,
- all sketch variants share one success rate (completeness).

The paper's averages-over-successes are comparable there because its
test sets hold thousands of images; at our test-set sizes (a handful of
successes per approach) the assertions run on the *failure-penalized*
average instead, which stays comparable when success sets differ and is
far less sensitive to a single expensive success.  The per-success
columns are still reported for side-by-side reading with the paper.
"""

import pytest

from conftest import write_bench_result, write_result
from repro.eval.experiments import run_table2
from repro.eval.reporting import format_ablation
from repro.models.registry import CIFAR_ARCHITECTURES


@pytest.mark.parametrize("arch", CIFAR_ARCHITECTURES)
def test_table2_ablation(benchmark, context, results_dir, arch):
    rows = benchmark.pedantic(
        run_table2, args=(context, arch), rounds=1, iterations=1
    )
    text = format_ablation(rows)
    write_result(results_dir, f"table2_{arch}", text)
    write_bench_result(
        results_dir,
        f"table2_{arch}",
        [
            (
                f"{row.approach}/penalized_avg_queries",
                row.penalized_avg_queries,
                "queries",
            )
            for row in rows
        ]
        + [
            (f"{row.approach}/success_rate", row.success_rate, "fraction")
            for row in rows
        ],
    )

    by_name = {row.approach: row for row in rows}
    oppsla = by_name["OPPSLA"]
    fixed = by_name["Sketch+False"]
    random_sketch = by_name["Sketch+Random"]
    sparse_rs = by_name["Sparse-RS"]

    # completeness: every sketch variant has the same success rate (the
    # budget equals the full pair space, so all are exhaustive)
    assert oppsla.success_rate == fixed.success_rate == random_sketch.success_rate

    # shape: the learned prioritization does not lose to the fixed one
    # (failure-penalized average; see the module docstring)
    assert (
        oppsla.penalized_avg_queries <= fixed.penalized_avg_queries * 1.1
    )
    # shape: Sparse-RS never beats OPPSLA -- no more successes, and not
    # meaningfully cheaper overall (5% tolerance absorbs the per-success
    # noise of a handful of samples)
    assert sparse_rs.success_rate <= oppsla.success_rate
    assert (
        sparse_rs.penalized_avg_queries
        >= oppsla.penalized_avg_queries * 0.95
    )
