"""Serving throughput: micro-batched broker vs. per-query dispatch.

The serving claim: when many attack sessions run concurrently against a
latency-bound model (a remote oracle, a batched accelerator), coalescing
their queries into batched forward passes multiplies throughput, because
a batch of N costs roughly one round trip instead of N.

This benchmark drives the same set of concurrent sessions twice through
the identical threaded serving stack -- once with ``max_batch_size=1``
(the broker degrades to per-query dispatch: every query pays its own
round trip under the model lock) and once with real micro-batching --
and asserts the batched configuration clears 2x the throughput with at
least 8 concurrent sessions.  Per-session attack results are also
checked bit-identical to direct (unserved) runs: batching changes
scheduling, never scores.
"""

import time

import numpy as np

from conftest import write_bench_result, write_result
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.classifier.toy import (
    LatencyClassifier,
    LinearPixelClassifier,
    make_toy_images,
)
from repro.core.stepping import drive_steps
from repro.serve.broker import BatchPolicy, MicroBatchBroker
from repro.serve.sessions import SessionManager

#: Simulated oracle round trip, paid once per *batch* by the model.
QUERY_LATENCY = 0.003
SESSIONS = 8
BUDGET = 96
SHAPE = (8, 8, 3)


def _jobs():
    base = LinearPixelClassifier(SHAPE, num_classes=4, seed=3, temperature=0.05)
    images = make_toy_images(SESSIONS, SHAPE, seed=9)
    jobs = []
    for index, image in enumerate(images):
        if index % 2 == 0:
            attack = FixedSketchAttack()
        else:
            attack = UniformRandomAttack(UniformRandomConfig(seed=index))
        jobs.append((attack, image, int(np.argmax(base(image)))))
    return base, jobs


def _run_served(base, jobs, max_batch_size):
    classifier = LatencyClassifier(base, latency=QUERY_LATENCY)
    policy = BatchPolicy(max_batch_size=max_batch_size, max_wait=0.002)
    with MicroBatchBroker(classifier, policy=policy) as broker:
        manager = SessionManager(broker, max_workers=SESSIONS)
        sessions = [
            manager.create(attack, image, label, budget=BUDGET)
            for attack, image, label in jobs
        ]
        started = time.perf_counter()
        futures = [manager.start(session) for session in sessions]
        for future in futures:
            future.result(timeout=300)
        elapsed = time.perf_counter() - started
        stats = broker.stats()
        manager.shutdown()
    return sessions, elapsed, stats


def _signature(sessions):
    return [
        (
            session.result.success,
            session.result.queries,
            session.result.location,
            None
            if session.result.perturbation is None
            else session.result.perturbation.tobytes(),
        )
        for session in sessions
    ]


def test_serve_throughput(results_dir):
    base, jobs = _jobs()

    # ground truth: each attack run directly, no serving stack
    direct = [
        (
            lambda r: (
                r.success,
                r.queries,
                r.location,
                None if r.perturbation is None else r.perturbation.tobytes(),
            )
        )(drive_steps(attack.steps(image, label, budget=BUDGET), base))
        for attack, image, label in _jobs()[1]
    ]

    unbatched_sessions, unbatched_time, unbatched_stats = _run_served(
        base, jobs, max_batch_size=1
    )
    base2, jobs2 = _jobs()
    batched_sessions, batched_time, batched_stats = _run_served(
        base2, jobs2, max_batch_size=SESSIONS
    )

    # correctness first: serving must not change what the paper measures
    assert _signature(unbatched_sessions) == direct
    assert _signature(batched_sessions) == direct

    total_queries = sum(s.result.queries for s in batched_sessions)
    unbatched_qps = unbatched_stats["submitted"] / unbatched_time
    batched_qps = batched_stats["submitted"] / batched_time
    speedup = batched_qps / unbatched_qps

    lines = [
        "serving throughput (micro-batched broker vs. per-query dispatch, "
        f"{QUERY_LATENCY * 1000:.0f}ms/query)",
        f"  sessions {SESSIONS}, budget {BUDGET}, "
        f"counted queries {total_queries}",
        f"  per-query dispatch: {unbatched_time:.2f}s "
        f"({unbatched_qps:.0f} q/s, mean batch "
        f"{unbatched_stats['batch_sizes']['mean']:.2f})",
        f"  micro-batched:      {batched_time:.2f}s "
        f"({batched_qps:.0f} q/s, mean batch "
        f"{batched_stats['batch_sizes']['mean']:.2f}, "
        f"max {batched_stats['batch_sizes']['max']:.0f})",
        f"  throughput gain: {speedup:.2f}x",
        "  per-session results bit-identical to direct runs: True",
    ]
    write_result(results_dir, "serve_throughput", "\n".join(lines))
    write_bench_result(
        results_dir,
        "serve_throughput",
        [
            ("unbatched_qps", unbatched_qps, "queries/s"),
            ("batched_qps", batched_qps, "queries/s"),
            ("speedup", speedup, "x"),
            ("mean_batch_size", batched_stats["batch_sizes"]["mean"], "queries"),
        ],
    )

    assert batched_stats["batch_sizes"]["max"] >= 2, "broker never batched"
    assert speedup >= 2.0, (
        f"micro-batching gained only {speedup:.2f}x over per-query dispatch"
    )
