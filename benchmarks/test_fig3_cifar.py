"""Figure 3 (CIFAR): success rate vs. query budget, per classifier.

Paper shape to reproduce: OPPSLA's success rate dominates Sparse-RS and
SuOPA at small budgets (<= 100 and <= 500 queries) on every CIFAR
classifier, with the baselines closing most of the gap at the full
budget.
"""

import pytest

from conftest import write_bench_result, write_result
from repro.eval.experiments import run_figure3
from repro.eval.reporting import format_success_curves
from repro.models.registry import CIFAR_ARCHITECTURES


@pytest.mark.parametrize("arch", CIFAR_ARCHITECTURES)
def test_fig3_cifar(benchmark, context, results_dir, arch):
    curves = benchmark.pedantic(
        run_figure3, args=(context, "cifar", arch), rounds=1, iterations=1
    )
    text = format_success_curves(f"cifar/{arch}", curves)
    write_result(results_dir, f"fig3_cifar_{arch}", text)
    write_bench_result(
        results_dir,
        f"fig3_cifar_{arch}",
        [
            (f"{attack}/rate_at_{threshold}", curve.rate_at(threshold), "fraction")
            for attack, curve in sorted(curves.items())
            for threshold in context.profile.cifar_thresholds
        ],
    )

    oppsla = curves["OPPSLA"]
    sparse_rs = curves["Sparse-RS"]
    suopa = curves["SuOPA"]
    thresholds = context.profile.cifar_thresholds
    low = thresholds[0]

    # shape 1: OPPSLA at the low budget beats both baselines
    assert oppsla.rate_at(low) >= sparse_rs.rate_at(low)
    assert oppsla.rate_at(low) >= suopa.rate_at(low)
    # shape 2: OPPSLA attains a nonzero success rate
    assert oppsla.rate_at(max(thresholds)) > 0
    # shape 3: success-rate curves are monotone in the budget
    for curve in curves.values():
        assert curve.rates == sorted(curve.rates)
