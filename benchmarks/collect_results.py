#!/usr/bin/env python
"""Inject the latest benchmark tables into EXPERIMENTS.md.

Replaces each ``<!-- RESULTS:NAME -->`` marker's following placeholder
paragraph with the corresponding files from ``benchmarks/results/``:
``.txt`` tables for the benchmark sections, and ``campaign_<id>.md``
reports (written by ``repro campaign report --out``) for the
``<!-- RESULTS:CAMPAIGN -->`` section.  Run after
``pytest benchmarks/ --benchmark-only``::

    python benchmarks/collect_results.py
"""

import glob
import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results")
EXPERIMENTS = os.path.join(HERE, "..", "EXPERIMENTS.md")

SECTIONS = {
    "FIG3": ["fig3_cifar_googlenet", "fig3_cifar_resnet18", "fig3_cifar_vgg16bn",
             "fig3_imagenet_densenet121", "fig3_imagenet_resnet50"],
    "TABLE1": ["table1_transfer"],
    "FIG4": ["fig4_synthesis"],
    "TABLE2": ["table2_googlenet", "table2_resnet18", "table2_vgg16bn"],
    "ABLATION": ["ablation_scoring"],
}


def load_block(names, extension="txt"):
    chunks = []
    for name in names:
        path = os.path.join(RESULTS, f"{name}.{extension}")
        if os.path.exists(path):
            with open(path) as handle:
                chunks.append(handle.read().rstrip())
        else:
            chunks.append(f"({name}: not yet generated)")
    return "```\n" + "\n\n".join(chunks) + "\n```"


def campaign_names():
    """Campaign reports present in the results dir (``campaign_<id>.md``,
    written by ``repro campaign report --out``)."""
    return sorted(
        os.path.splitext(os.path.basename(path))[0]
        for path in glob.glob(os.path.join(RESULTS, "campaign_*.md"))
    )


def main():
    with open(EXPERIMENTS) as handle:
        text = handle.read()
    sections = {key: (names, "txt") for key, names in SECTIONS.items()}
    campaigns = campaign_names()
    if campaigns:
        sections["CAMPAIGN"] = (campaigns, "md")
    for key, (names, extension) in sections.items():
        marker = f"<!-- RESULTS:{key} -->"
        if marker not in text:
            print(f"marker {marker} missing, skipped", file=sys.stderr)
            continue
        block = marker + "\n" + load_block(names, extension)
        # replace marker plus everything up to the next blank-line-delimited
        # paragraph (the placeholder sentence or a previous injection)
        pattern = re.escape(marker) + r"\n(?:```.*?```|\*[^\n]*\*)"
        if re.search(pattern, text, flags=re.DOTALL):
            text = re.sub(pattern, block, text, flags=re.DOTALL)
        else:
            text = text.replace(marker, block)
    with open(EXPERIMENTS, "w") as handle:
        handle.write(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
