"""Table 1: transferability of synthesized programs across classifiers.

Paper shape to reproduce: programs synthesized for one classifier remain
effective against the others -- the off-diagonal average query counts stay
within a small factor of the diagonal (the paper's worst case is ~2.1x,
GoogLeNet's program on ResNet18).
"""

import math

from conftest import write_bench_result, write_result
from repro.eval.experiments import run_table1
from repro.eval.reporting import format_transfer


def test_table1_transfer(benchmark, context, results_dir):
    matrix = benchmark.pedantic(run_table1, args=(context,), rounds=1, iterations=1)
    text = format_transfer(matrix)
    write_result(results_dir, "table1_transfer", text)
    write_bench_result(
        results_dir,
        "table1_transfer",
        [
            (
                f"{source}_to_{target}/overhead",
                matrix.transfer_overhead(target, source),
                "x",
            )
            for target in matrix.names
            for source in matrix.names
        ],
    )

    for target in matrix.names:
        assert math.isfinite(matrix.diagonal(target)), (
            f"native program should succeed on {target}"
        )
        for source in matrix.names:
            overhead = matrix.transfer_overhead(target, source)
            # transferred programs stay effective: bounded overhead
            assert overhead < 8.0, (
                f"{source} -> {target} transfer overhead {overhead:.1f}x"
            )
