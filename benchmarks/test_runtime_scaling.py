"""Runtime scaling: sequential vs. parallel attack execution.

Real black-box attacks query a remote oracle, so per-query wall time is
latency-bound rather than compute-bound -- the regime the execution
engine targets.  This benchmark attacks the same image set sequentially
and through a 4-worker :class:`~repro.runtime.pool.WorkerPool` over a
latency-simulating classifier, asserts the results are bit-identical,
and records the wall-clock speedup.

Latency-bound tasks parallelize across processes even on one CPU, so
the >1.5x speedup bar is enforced whenever the host grants us at least
one CPU; the measured numbers land in ``benchmarks/results/``.
"""

import os
import time

import numpy as np

from conftest import write_bench_result, write_result
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import (
    LatencyClassifier,
    LinearPixelClassifier,
    make_toy_images,
)
from repro.eval.runner import attack_dataset
from repro.runtime import FaultPolicy, RunLog, WorkerPool

#: Simulated oracle round-trip; large enough to dominate pool overhead.
QUERY_LATENCY = 0.003
WORKERS = 4
BUDGET = 64
IMAGES = 16


def _signature(summary):
    return [
        (
            result.success,
            result.queries,
            result.location,
            None if result.perturbation is None else result.perturbation.tobytes(),
        )
        for result in summary.results
    ]


def test_runtime_scaling(results_dir):
    shape = (8, 8, 3)
    base = LinearPixelClassifier(shape, num_classes=4, seed=3, temperature=0.05)
    classifier = LatencyClassifier(base, latency=QUERY_LATENCY)
    images = make_toy_images(IMAGES, shape, seed=5)
    pairs = [(image, int(np.argmax(base(image)))) for image in images]
    attack = FixedSketchAttack()

    started = time.perf_counter()
    sequential = attack_dataset(attack, classifier, pairs, budget=BUDGET)
    sequential_time = time.perf_counter() - started

    log = RunLog()
    pool = WorkerPool(workers=WORKERS, policy=FaultPolicy(retries=1), run_log=log)
    started = time.perf_counter()
    parallel = attack_dataset(
        attack, classifier, pairs, budget=BUDGET, executor=pool
    )
    parallel_time = time.perf_counter() - started

    assert _signature(sequential) == _signature(parallel)
    speedup = sequential_time / parallel_time if parallel_time > 0 else float("inf")
    total_queries = sequential.total_queries

    lines = [
        "runtime scaling (latency-bound oracle, "
        f"{QUERY_LATENCY * 1000:.0f}ms/query, {os.cpu_count()} CPU(s))",
        f"  images {IMAGES}, budget {BUDGET}, total queries {total_queries}",
        f"  sequential: {sequential_time:.2f}s",
        f"  parallel ({WORKERS} workers): {parallel_time:.2f}s",
        f"  speedup: {speedup:.2f}x",
        f"  results bit-identical: True",
    ]
    write_result(results_dir, "runtime_scaling", "\n".join(lines))
    write_bench_result(
        results_dir,
        "runtime_scaling",
        [
            ("sequential_seconds", sequential_time, "s"),
            ("parallel_seconds", parallel_time, "s"),
            ("speedup", speedup, "x"),
        ],
    )

    run_end = log.of_type("run_end")
    assert run_end and run_end[0]["failed"] == 0
    assert speedup > 1.5
