"""Ablation: failure-penalized vs. paper-literal candidate scoring.

DESIGN.md documents one deliberate deviation from Algorithm 2: when
candidate evaluation runs under a per-image budget, scoring by the
successes-only average (the paper's formula) lets a candidate "improve"
by pushing an expensive borderline success past the budget.  This
benchmark synthesizes under both scoring rules on a toy classifier with
known structure and checks the penalized rule never yields a program
with *fewer* training successes -- the failure mode the deviation exists
to prevent -- at comparable quality.

Runs at toy scale (seconds), so it exercises the design choice without
the CNN zoo.
"""

import numpy as np

from conftest import write_bench_result, write_result
from repro.classifier.toy import SmoothLinearClassifier, make_toy_images
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig


def run_scoring_ablation(seeds=(0, 1, 2)):
    shape = (10, 10, 3)
    classifier = SmoothLinearClassifier(
        shape, num_classes=3, seed=1, temperature=0.02, hotspot=(0.85, -0.85)
    )
    images = make_toy_images(15, shape, seed=2)
    pairs = [(im, int(np.argmax(classifier(im)))) for im in images]
    rows = []
    for seed in seeds:
        for score_failures in (True, False):
            config = OppslaConfig(
                max_iterations=30,
                beta=0.05,
                per_image_budget=300,
                score_failures=score_failures,
                seed=seed,
            )
            result = Oppsla(config).synthesize(classifier, pairs)
            evaluation = result.best_evaluation
            rows.append(
                {
                    "seed": seed,
                    "score_failures": score_failures,
                    "successes": evaluation.successes,
                    "avg": evaluation.avg_queries,
                    "penalized": evaluation.penalized_avg_queries,
                }
            )
    return rows


def test_scoring_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(run_scoring_ablation, rounds=1, iterations=1)
    lines = ["[Ablation] candidate scoring rule (toy classifier)"]
    lines.append(
        f"{'seed':>4}  {'score_failures':>14}  {'successes':>9}  "
        f"{'avg':>8}  {'penalized':>9}"
    )
    for row in rows:
        lines.append(
            f"{row['seed']:>4}  {str(row['score_failures']):>14}  "
            f"{row['successes']:>9}  {row['avg']:>8.1f}  {row['penalized']:>9.1f}"
        )
    write_result(results_dir, "ablation_scoring", "\n".join(lines))
    write_bench_result(
        results_dir,
        "ablation_scoring",
        [
            (
                f"seed{row['seed']}/"
                f"{'penalized' if row['score_failures'] else 'literal'}"
                f"/successes",
                row["successes"],
                "images",
            )
            for row in rows
        ],
    )

    by_seed = {}
    for row in rows:
        by_seed.setdefault(row["seed"], {})[row["score_failures"]] = row
    for seed, variants in by_seed.items():
        penalized_run = variants[True]
        literal_run = variants[False]
        # the safety property: penalized scoring never trades successes away
        assert penalized_run["successes"] >= literal_run["successes"], (
            f"seed {seed}: penalized scoring lost successes"
        )
