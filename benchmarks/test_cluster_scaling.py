"""Cluster scaling: aggregate session throughput, 4 workers vs. 1.

The cluster claim: when the model is compute-bound, a single serve
process serializes every session's queries through one model lock, so
adding worker *processes* -- each with its own replica -- multiplies
aggregate session throughput.

The workload is deliberately uniform and independent: every session
attacks a *distinct* hard image (one the fixed-sketch attack never
cracks), so each runs exactly the full 288-query pair space and no two
sessions ever submit the same query -- the broker coalesces identical
in-flight images, so same-image sessions would share model passes and
fake the scaling number; the query cache is disabled too; and the
toy model is wrapped with a per-image latency
(:class:`~repro.serve.server.PerImageLatencyClassifier`), so scoring N
queries costs N * latency seconds of replica time no matter how the
broker batches them.  Total work is therefore fixed, deterministic, and
divisible only by adding replicas -- which is exactly what the benchmark
measures.

Session ids are router-generated (``c1``..``cN``), so the consistent
hash spread over 4 workers is deterministic: the worst-loaded worker
owns 5 of 16 sessions, bounding the ideal speedup at 3.2x.  The gate is
2.0x -- the ISSUE's acceptance floor, with headroom for scheduler noise.
"""

import time

from conftest import write_bench_result, write_result
from repro.cluster.config import ClusterConfig
from repro.cluster.router import ClusterHandle
from repro.cluster.workers import http_json
from repro.testkit.kill import HARD_IMAGE_SEEDS, hard_cluster_spec

SESSIONS = 16
LATENCY = 0.002  # seconds of simulated replica time per query
HARD_QUERIES = 288


def _tier(workers):
    return ClusterConfig(
        workers=workers, port=0,
        height=6, width=6, num_classes=3, seed=1,
        latency=LATENCY, cache_size=0,  # cache off: work must not collapse
        max_sessions=SESSIONS + 4, max_threads=SESSIONS + 4,
        rate=1000.0, burst=float(SESSIONS + 4),
    )


def _run_tier(workers):
    """Complete SESSIONS hard sessions; return (elapsed, finals, spread)."""
    import json

    specs = [
        json.dumps(hard_cluster_spec(seed)).encode()
        for seed in HARD_IMAGE_SEEDS[:SESSIONS]
    ]
    with ClusterHandle(_tier(workers)) as tier:
        address = tier.address
        started = time.perf_counter()
        accepted = []
        for spec_bytes in specs:
            status, payload = http_json(
                address, "POST", "/attacks", body=spec_bytes
            )
            assert status == 202, payload
            accepted.append(payload)
        finals = {}
        deadline = time.monotonic() + 600.0
        while len(finals) < SESSIONS and time.monotonic() < deadline:
            for payload in accepted:
                session_id = payload["id"]
                if session_id in finals:
                    continue
                status, state = http_json(
                    address, "GET", f"/attacks/{session_id}"
                )
                if status == 200 and state["state"] in ("done", "failed"):
                    finals[session_id] = state
            time.sleep(0.02)
        elapsed = time.perf_counter() - started
        spread = {}
        for payload in accepted:
            spread[payload["worker"]] = spread.get(payload["worker"], 0) + 1
    assert len(finals) == SESSIONS, "sessions did not finish"
    return elapsed, finals, spread


def test_cluster_scaling(results_dir):
    single_time, single_finals, _ = _run_tier(1)
    quad_time, quad_finals, spread = _run_tier(4)

    # correctness first: replicas must not change what sessions measure
    for finals in (single_finals, quad_finals):
        for state in finals.values():
            assert state["state"] == "done"
            assert state["result"]["queries"] == HARD_QUERIES

    single_rate = SESSIONS / single_time
    quad_rate = SESSIONS / quad_time
    speedup = quad_rate / single_rate
    worst = max(spread.values())

    lines = [
        "cluster scaling (aggregate session throughput, 4 workers vs 1, "
        f"{LATENCY * 1000:.0f}ms/query, cache off)",
        f"  sessions {SESSIONS}, {HARD_QUERIES} queries each "
        f"(uniform, deterministic)",
        f"  1 worker : {single_time:.2f}s ({single_rate:.2f} sessions/s)",
        f"  4 workers: {quad_time:.2f}s ({quad_rate:.2f} sessions/s), "
        f"spread {dict(sorted(spread.items()))}",
        f"  speedup: {speedup:.2f}x "
        f"(hash-spread ceiling {SESSIONS / worst:.2f}x)",
    ]
    write_result(results_dir, "cluster_scaling", "\n".join(lines))
    write_bench_result(
        results_dir,
        "cluster_scaling",
        [
            ("single_worker_sessions_per_s", single_rate, "sessions/s"),
            ("quad_worker_sessions_per_s", quad_rate, "sessions/s"),
            ("speedup", speedup, "x"),
            ("worst_worker_sessions", float(worst), "sessions"),
        ],
    )

    assert speedup >= 2.0, (
        f"4 workers gained only {speedup:.2f}x over 1 "
        f"(spread {spread}, ceiling {SESSIONS / worst:.2f}x)"
    )
