"""Shared L2 cache: aggregate model forwards, 2 workers shared vs. private.

The shared tier's claim (DESIGN §15): when two replicas serve the same
deterministic session, the second replica's L1 misses are answered by
the first replica's write-through instead of fresh forward passes --
so the *aggregate* number of model forwards across the tier drops while
every per-session query count stays exactly golden (cache hits, local
or remote, are still counted queries).

The workload submits the one deterministic HARD_SEED session repeatedly
-- sequentially, each to completion -- until both replicas have served
it at least once.  Session ids are router-generated (``c1``..``cN``),
so the consistent-hash placement is deterministic and identical across
the private and shared runs: both runs serve the same session sequence
on the same replicas, and the only difference is where repeat queries
are answered.  Aggregate forwards are read from the cluster ``/metrics``
rollup's merged ``model_batch_sizes`` histogram (sum = mean x count).

Gate: the shared tier pays *strictly fewer* aggregate forwards than the
private baseline, with bit-identical per-session query counts.
"""

import time

from conftest import write_bench_result, write_result
from repro.cluster.config import ClusterConfig
from repro.cluster.router import ClusterHandle
from repro.cluster.workers import http_json
from repro.testkit.kill import hard_cluster_spec

LATENCY = 0.002  # seconds of simulated replica time per model forward
MAX_SUBMISSIONS = 8
TIMEOUT = 300.0


def _tier(shared):
    return ClusterConfig(
        workers=2, port=0,
        height=6, width=6, num_classes=3, seed=1,
        latency=LATENCY, shared_cache=shared,
        heartbeat=0.2, backoff=0.2,
    )


def _histogram_total(snapshot):
    """Total observations folded into a merged histogram (mean x count)."""
    return int(round(snapshot.get("mean", 0.0) * snapshot.get("count", 0)))


def _run_tier(shared):
    """Serve HARD_SEED on both replicas; return (sessions, forwards, l2)."""
    spec = hard_cluster_spec()
    with ClusterHandle(_tier(shared)) as tier:
        address = tier.address
        sessions = []
        served_by = set()
        for _ in range(MAX_SUBMISSIONS):
            import json

            status, accepted = http_json(
                address, "POST", "/attacks",
                body=json.dumps(spec).encode(),
            )
            assert status == 202, accepted
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                status, state = http_json(
                    address, "GET", f"/attacks/{accepted['id']}"
                )
                if status == 200 and state["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            assert state["state"] == "done", state
            sessions.append(
                {"worker": state["worker"],
                 "queries": state["result"]["queries"]}
            )
            served_by.add(state["worker"])
            if len(served_by) >= 2:
                break
        assert len(served_by) >= 2, "hash ring never used the second replica"
        _status, rollup = http_json(address, "GET", "/metrics")
        forwards = _histogram_total(
            rollup["broker"]["model_batch_sizes"]
        )
        cache = (rollup.get("cache") or {}).get("cluster") or {}
    return sessions, forwards, cache


def test_shared_cache_cuts_aggregate_forwards(results_dir):
    private_sessions, private_forwards, _ = _run_tier(shared=False)
    shared_sessions, shared_forwards, shared_cache = _run_tier(shared=True)

    # correctness first: the tier must not change what sessions measure
    golden = private_sessions[0]["queries"]
    for session in private_sessions + shared_sessions:
        assert session["queries"] == golden
    # deterministic placement: both runs served the same session sequence
    assert [s["worker"] for s in shared_sessions] == [
        s["worker"] for s in private_sessions
    ]
    assert shared_cache.get("l2_hits", 0) > 0, shared_cache

    saved = private_forwards - shared_forwards
    ratio = shared_forwards / private_forwards if private_forwards else 1.0

    lines = [
        "shared L2 cache (aggregate model forwards, 2 workers, "
        f"{len(shared_sessions)} identical sessions, {LATENCY * 1000:.0f}"
        "ms/forward)",
        f"  per-session queries: {golden} (identical in both tiers)",
        f"  private caches: {private_forwards} forwards",
        f"  shared  tier  : {shared_forwards} forwards "
        f"(l2_hits {shared_cache.get('l2_hits')}, "
        f"shared_hit_rate {shared_cache.get('shared_hit_rate', 0.0):.2f})",
        f"  saved: {saved} forwards ({1 - ratio:.0%})",
    ]
    write_result(results_dir, "shared_cache", "\n".join(lines))
    write_bench_result(
        results_dir,
        "shared_cache",
        [
            ("private_forwards", float(private_forwards), "forwards"),
            ("shared_forwards", float(shared_forwards), "forwards"),
            ("forwards_saved", float(saved), "forwards"),
            ("l2_hits", float(shared_cache.get("l2_hits", 0)), "hits"),
            (
                "shared_hit_rate",
                float(shared_cache.get("shared_hit_rate", 0.0)),
                "ratio",
            ),
        ],
    )

    assert shared_forwards < private_forwards, (
        f"shared tier paid {shared_forwards} forwards, private baseline "
        f"{private_forwards} -- the L2 saved nothing"
    )
