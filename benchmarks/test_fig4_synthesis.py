"""Figure 4: attack quality as a function of synthesis cost.

Paper shape to reproduce: replaying the intermediate accepted programs on
a held-out test set, the average query count trends downward with the
synthesis queries invested, and the best synthesized program needs fewer
queries than the zero-cost fixed-prioritization program (the paper
reports a 2.7x reduction after ~50k synthesis queries).
"""

from conftest import write_bench_result, write_result
from repro.eval.experiments import run_figure4
from repro.eval.reporting import format_synthesis_study


def test_fig4_synthesis(benchmark, context, results_dir):
    study = benchmark.pedantic(
        run_figure4, args=(context,), kwargs={"arch": "vgg16bn", "class_label": 0},
        rounds=1, iterations=1,
    )
    text = format_synthesis_study(study)
    write_result(results_dir, "fig4_synthesis", text)
    write_bench_result(
        results_dir,
        "fig4_synthesis",
        [
            ("best_avg_queries", study.best_avg_queries, "queries"),
            ("fixed_avg_queries", study.fixed_avg_queries, "queries"),
            ("accepted_programs", len(study.points), "programs"),
        ],
    )

    assert study.points, "the search must accept at least the initial program"
    # synthesis queries along the trace are monotone (cost accumulates)
    costs = [point.synthesis_queries for point in study.points]
    assert costs == sorted(costs)
    # shape: the best accepted program is no worse than the first accepted
    assert study.best_avg_queries <= study.points[0].avg_test_queries
    # shape: synthesized prioritization beats (or ties) the fixed one
    assert study.best_avg_queries <= study.fixed_avg_queries * 1.1
