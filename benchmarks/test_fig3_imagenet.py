"""Figure 3 (ImageNet): success rate vs. query budget.

Paper shape to reproduce: on the higher-resolution dataset (search space
much larger than the budget), OPPSLA's success rate at the full budget
exceeds Sparse-RS's, and OPPSLA is at least as good at a few hundred
queries.
"""

import pytest

from conftest import write_bench_result, write_result
from repro.eval.experiments import run_figure3
from repro.eval.reporting import format_success_curves
from repro.models.registry import IMAGENET_ARCHITECTURES


@pytest.mark.parametrize("arch", IMAGENET_ARCHITECTURES)
def test_fig3_imagenet(benchmark, context, results_dir, arch):
    curves = benchmark.pedantic(
        run_figure3, args=(context, "imagenet", arch), rounds=1, iterations=1
    )
    text = format_success_curves(f"imagenet/{arch}", curves)
    write_result(results_dir, f"fig3_imagenet_{arch}", text)
    write_bench_result(
        results_dir,
        f"fig3_imagenet_{arch}",
        [
            (f"{attack}/rate_at_{threshold}", curve.rate_at(threshold), "fraction")
            for attack, curve in sorted(curves.items())
            for threshold in context.profile.imagenet_thresholds
        ],
    )

    oppsla = curves["OPPSLA"]
    sparse_rs = curves["Sparse-RS"]
    thresholds = context.profile.imagenet_thresholds

    # shape: OPPSLA >= Sparse-RS at the low threshold and overall
    assert oppsla.rate_at(thresholds[0]) >= sparse_rs.rate_at(thresholds[0])
    assert oppsla.rate_at(max(thresholds)) > 0
