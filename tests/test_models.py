"""Tests for the scaled paper architectures."""

import numpy as np
import pytest

from repro.models.densenet import DenseBlock, DenseLayer, MiniDenseNet, transition
from repro.models.googlenet import MiniGoogLeNet, inception_module
from repro.models.registry import ARCHITECTURES, build_model
from repro.models.resnet import MiniResNet, MiniResNetBottleneck
from repro.models.vgg import MiniVGG

RNG = np.random.default_rng(0)


def tiny_batch(size=8):
    return RNG.uniform(size=(2, 3, size, size))


TINY_KWARGS = {
    "vgg16bn": dict(stage_channels=(4, 8), convs_per_stage=1),
    "resnet18": dict(stage_channels=(4, 8), blocks_per_stage=1),
    "resnet50": dict(stage_channels=(4, 8), blocks_per_stage=1),
    "googlenet": dict(stem_channels=4, module_specs=((2, 4, 2, 2),)),
    "densenet121": dict(stem_channels=4, block_layers=(2, 2), growth=4),
}


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
class TestAllArchitectures:
    def build(self, arch, num_classes=5):
        return ARCHITECTURES[arch](num_classes=num_classes, seed=0, **TINY_KWARGS[arch])

    def test_forward_shape(self, arch):
        model = self.build(arch)
        out = model(tiny_batch())
        assert out.shape == (2, 5)
        assert np.isfinite(out).all()

    def test_backward_runs_and_populates_grads(self, arch):
        model = self.build(arch)
        out = model(tiny_batch())
        model.zero_grad()
        model.backward(np.ones_like(out))
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) * 0.5, (
            "most parameters should receive gradient"
        )

    def test_deterministic_construction(self, arch):
        a = self.build(arch)
        b = self.build(arch)
        x = tiny_batch()
        assert np.allclose(a(x), b(x))

    def test_resolution_agnostic(self, arch):
        """GAP heads make every model work at both benchmark resolutions."""
        model = self.build(arch)
        small = model(tiny_batch(8))
        large = model(tiny_batch(16))
        assert small.shape == large.shape == (2, 5)

    def test_state_dict_round_trip(self, arch):
        model = self.build(arch)
        state = model.state_dict()
        clone = self.build(arch)
        clone.load_state_dict(state)
        x = tiny_batch()
        model.eval()
        clone.eval()
        assert np.allclose(model(x), clone(x))


class TestRegistry:
    def test_known_names(self):
        assert set(ARCHITECTURES) == {
            "vgg16bn",
            "resnet18",
            "googlenet",
            "densenet121",
            "resnet50",
        }

    def test_build_model(self):
        model = build_model("vgg16bn", num_classes=7, seed=1)
        assert isinstance(model, MiniVGG)
        out = model(tiny_batch(16))
        assert out.shape == (2, 7)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            build_model("alexnet", num_classes=10)

    def test_family_types(self):
        assert isinstance(build_model("resnet18", 10), MiniResNet)
        assert isinstance(build_model("resnet50", 10), MiniResNetBottleneck)
        assert isinstance(build_model("googlenet", 10), MiniGoogLeNet)
        assert isinstance(build_model("densenet121", 10), MiniDenseNet)


class TestBuildingBlocks:
    def test_dense_layer_concatenates(self):
        rng = np.random.default_rng(1)
        layer = DenseLayer(4, growth=3, rng=rng)
        x = rng.normal(size=(2, 4, 6, 6))
        out = layer(x)
        assert out.shape == (2, 7, 6, 6)
        assert np.allclose(out[:, :4], x)  # input channels pass through

    def test_dense_block_growth(self):
        rng = np.random.default_rng(2)
        block = DenseBlock(4, num_layers=3, growth=2, rng=rng)
        assert block.out_channels == 10
        out = block(rng.normal(size=(1, 4, 6, 6)))
        assert out.shape == (1, 10, 6, 6)

    def test_transition_halves_spatial(self):
        rng = np.random.default_rng(3)
        layer = transition(8, 4, rng=rng)
        out = layer(rng.normal(size=(1, 8, 6, 6)))
        assert out.shape == (1, 4, 3, 3)

    def test_inception_concatenates_branches(self):
        rng = np.random.default_rng(4)
        module = inception_module(6, (2, 3, 2, 1), rng=rng)
        out = module(rng.normal(size=(1, 6, 8, 8)))
        assert out.shape == (1, 8, 8, 8)

    def test_dense_layer_gradient_splits_correctly(self):
        rng = np.random.default_rng(5)
        layer = DenseLayer(2, growth=2, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
