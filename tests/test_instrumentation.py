"""Tests for sketch execution statistics."""

import numpy as np
import pytest

from repro.classifier.toy import SinglePixelBackdoorClassifier
from repro.core.dsl.ast import (
    Comparison,
    Condition,
    Constant,
    Center,
    Program,
)
from repro.core.instrumentation import SketchStats
from repro.core.sketch import OnePixelSketch

SHAPE = (6, 6, 3)
FULL_SPACE = 8 * 6 * 6


def gray_image():
    return np.full(SHAPE, 0.5)


def no_adversarial_classifier():
    """No corner write ever flips this classifier."""
    return SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.array([0.5, 0.3, 0.7]))


class TestSketchStats:
    def test_false_program_never_fires(self):
        stats = SketchStats()
        OnePixelSketch(Program.constant(False)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
        )
        assert stats.main_loop_pops == FULL_SPACE
        assert stats.eager_checks == 0
        assert stats.eager_fraction == 0.0
        for name in ("b1", "b2", "b3", "b4"):
            assert stats.condition_fired[name] == 0
            assert stats.condition_evaluated[name] == FULL_SPACE
            assert stats.fire_rate(name) == 0.0

    def test_true_program_fires_everywhere(self):
        stats = SketchStats()
        OnePixelSketch(Program.constant(True)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
        )
        assert stats.total_queries == FULL_SPACE
        assert stats.eager_checks > 0
        assert stats.fire_rate("b1") == 1.0
        # pushed-back counters reflect real reordering activity
        assert stats.pushed_back_location > 0
        assert stats.pushed_back_perturbation > 0

    def test_total_queries_matches_result(self):
        stats = SketchStats()
        result = OnePixelSketch(Program.constant(True)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
        )
        assert stats.total_queries == result.queries

    def test_eager_only_b4(self):
        always_b4 = Program.constant(False).replace(
            3, Condition(Comparison.LT, Center(), Constant(100.0))
        )
        stats = SketchStats()
        OnePixelSketch(always_b4).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
        )
        assert stats.eager_checks > 0
        assert stats.condition_fired["b3"] == 0
        assert stats.condition_fired["b4"] > 0
        # eager checks consume queue entries, so main pops + eager = space
        assert stats.total_queries == FULL_SPACE

    def test_merge(self):
        a = SketchStats()
        b = SketchStats()
        OnePixelSketch(Program.constant(True)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=a
        )
        OnePixelSketch(Program.constant(False)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=b
        )
        total = SketchStats().merge(a).merge(b)
        assert total.total_queries == a.total_queries + b.total_queries
        assert (
            total.condition_evaluated["b1"]
            == a.condition_evaluated["b1"] + b.condition_evaluated["b1"]
        )

    def test_summary_is_readable(self):
        stats = SketchStats()
        OnePixelSketch(Program.constant(True)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
        )
        text = stats.summary()
        assert "eager fraction" in text
        assert "B1" in text and "B4" in text

    def test_stats_accumulate_across_runs(self):
        stats = SketchStats()
        sketch = OnePixelSketch(Program.constant(False))
        for _ in range(2):
            sketch.attack(
                no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
            )
        assert stats.main_loop_pops == 2 * FULL_SPACE

    def test_fire_rate_zero_when_never_evaluated(self):
        assert SketchStats().fire_rate("b1") == 0.0
        assert SketchStats().eager_fraction == 0.0

    def test_to_dict_is_json_safe(self):
        import json

        stats = SketchStats()
        OnePixelSketch(Program.constant(True)).attack(
            no_adversarial_classifier(), gray_image(), true_class=0, stats=stats
        )
        payload = stats.to_dict()
        assert payload["total_queries"] == stats.total_queries
        assert payload["eager_fraction"] == stats.eager_fraction
        assert payload["fire_rates"]["b1"] == stats.fire_rate("b1")
        # round-trips through JSON without custom encoders
        assert json.loads(json.dumps(payload)) == payload

    def test_to_dict_of_empty_stats_has_finite_values(self):
        import json

        payload = SketchStats().to_dict()
        assert payload["total_queries"] == 0
        assert payload["eager_fraction"] == 0.0
        assert set(payload["fire_rates"]) == {"b1", "b2", "b3", "b4"}
        assert json.dumps(payload)  # no inf/nan anywhere
