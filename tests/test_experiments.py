"""Tests for the experiment orchestration layer."""

import os

import pytest

from repro.core.dsl.ast import Program
from repro.eval.experiments import (
    PROFILES,
    ExperimentContext,
    ExperimentProfile,
    active_profile,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)


@pytest.fixture
def tiny_profile():
    """Small enough to run a full experiment inside a unit test."""
    return ExperimentProfile(
        name="tiny",
        cifar_size=8,
        imagenet_size=8,
        train_per_class=10,
        test_per_class=4,
        epochs=1,
        test_images=3,
        cifar_thresholds=(20, 80),
        imagenet_thresholds=(20, 80),
        synthesis_train_images=3,
        synthesis_iterations=2,
        synthesis_per_image_budget=60,
        suopa_population=8,
    )


@pytest.fixture
def context(tiny_profile, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return ExperimentContext(tiny_profile)


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"quick", "full"}
        for profile in PROFILES.values():
            assert profile.cifar_budget == max(profile.cifar_thresholds)
            assert profile.imagenet_budget == max(profile.imagenet_thresholds)

    def test_active_profile_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert active_profile().name == "quick"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "full")
        assert active_profile().name == "full"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "huge")
        with pytest.raises(ValueError):
            active_profile()


class TestContext:
    def test_zoo_caching(self, context):
        assert context.zoo("cifar") is context.zoo("cifar")
        assert context.zoo("cifar") is not context.zoo("imagenet")

    def test_architecture_lists(self, context):
        assert "vgg16bn" in context.architectures("cifar")
        assert "resnet50" in context.architectures("imagenet")

    def test_training_pairs_screened_and_cached(self, context):
        pairs = context.synthesis_training_pairs("cifar", "vgg16bn")
        assert 0 < len(pairs) <= context.profile.synthesis_train_images
        assert context.synthesis_training_pairs("cifar", "vgg16bn") is pairs

    def test_program_cached_on_disk(self, context, tmp_path):
        program = context.program_for("cifar", "vgg16bn")
        assert isinstance(program, Program)
        cached_jsons = [
            name for name in os.listdir(tmp_path) if name.endswith(".json")
            and "oppsla" in name
        ]
        assert cached_jsons, "synthesized program must be persisted"
        # a fresh context loads the identical program from disk
        fresh = ExperimentContext(context.profile)
        assert fresh.program_for("cifar", "vgg16bn") == program


class TestExperimentRuns:
    def test_run_figure3_smoke(self, context):
        curves = run_figure3(context, "cifar", "vgg16bn")
        assert set(curves) == {"OPPSLA", "Sparse-RS", "SuOPA"}
        for curve in curves.values():
            assert len(curve.rates) == len(context.profile.cifar_thresholds)

    def test_run_table2_smoke(self, context):
        rows = run_table2(context, "vgg16bn")
        assert [row.approach for row in rows] == [
            "OPPSLA", "Sketch+False", "Sketch+Random", "Sparse-RS",
        ]

    def test_run_figure4_smoke(self, context):
        study = run_figure4(context, arch="vgg16bn", class_label=0)
        assert study.points

    def test_run_table1_smoke(self, context):
        matrix = run_table1(context)
        assert sorted(matrix.names) == ["googlenet", "resnet18", "vgg16bn"]
