"""Tests for the shared L2 query-cache tier (DESIGN §15).

Covers the wire encoding, the :class:`TieredQueryCache` contract
(L1-only hot path, batched L2 round trips, silent degradation), the
cache-service HTTP surface, cross-broker sharing through a real loopback
service, the cluster metrics rollup, the differential sweep, and the
``--shared-cache`` CLI surface.
"""

import threading

import numpy as np
import pytest

from repro.classifier.toy import SmoothLinearClassifier
from repro.cluster.cacheservice import (
    CacheServiceHandle,
    HttpSharedCacheClient,
    SharedCacheService,
    parse_cache_address,
)
from repro.cluster.metrics import merge_cache_stats
from repro.runtime.cache import (
    QueryCache,
    TieredQueryCache,
    decode_scores,
    encode_scores,
    image_digest,
)
from repro.serve.broker import MicroBatchBroker
from repro.testkit.sharedcache import (
    InMemorySharedCache,
    shared_cache_sweep,
    tiered_broker_factory,
)


def _toy_images(count, seed=7, shape=(4, 4, 3)):
    rng = np.random.default_rng(seed)
    return [rng.random(shape).astype(np.float32) for _ in range(count)]


class TestScoreWireEncoding:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int64, np.float16]
    )
    def test_roundtrip_is_bit_exact(self, dtype):
        rng = np.random.default_rng(3)
        scores = rng.standard_normal(10).astype(dtype)
        decoded = decode_scores(encode_scores(scores))
        assert decoded.dtype == scores.dtype
        assert decoded.shape == scores.shape
        assert decoded.tobytes() == scores.tobytes()

    def test_roundtrip_preserves_shape(self):
        scores = np.arange(12, dtype=np.float32).reshape(3, 4)
        decoded = decode_scores(encode_scores(scores))
        assert decoded.shape == (3, 4)
        np.testing.assert_array_equal(decoded, scores)

    def test_survives_json(self):
        import json

        scores = np.array([1.0, -2.5, 3e-8], dtype=np.float64)
        payload = json.loads(json.dumps(encode_scores(scores)))
        np.testing.assert_array_equal(decode_scores(payload), scores)

    def test_decoded_array_is_writable(self):
        decoded = decode_scores(encode_scores(np.ones(3, dtype=np.float32)))
        decoded[0] = 9.0  # frombuffer alone would be read-only


class TestTieredQueryCache:
    def test_get_put_touch_l1_only(self):
        shared = InMemorySharedCache()
        tiered = TieredQueryCache(QueryCache(8), shared)
        key = b"k" * 20
        scores = np.array([1.0, 2.0], dtype=np.float32)
        assert tiered.get(key) is None
        tiered.put(key, scores)
        np.testing.assert_array_equal(tiered.get(key), scores)
        assert shared.operations == 0  # no remote round trips on hot path

    def test_fetch_remote_promotes_and_counts(self):
        shared = InMemorySharedCache()
        key_hit, key_miss = b"a" * 20, b"b" * 20
        scores = np.array([0.5, 0.25], dtype=np.float32)
        shared.store({key_hit: scores})
        tiered = TieredQueryCache(QueryCache(8), shared)
        found = tiered.fetch_remote([key_hit, key_miss])
        assert set(found) == {key_hit}
        np.testing.assert_array_equal(found[key_hit], scores)
        assert tiered.l2_hits == 1 and tiered.l2_misses == 1
        # one lookup round trip total, and the hit is now local
        lookups_after_fetch = shared.operations
        np.testing.assert_array_equal(tiered.get(key_hit), scores)
        assert shared.operations == lookups_after_fetch

    def test_store_remote_writes_through(self):
        shared = InMemorySharedCache()
        tiered = TieredQueryCache(QueryCache(8), shared)
        key = b"c" * 20
        tiered.store_remote({key: np.array([1.0], dtype=np.float32)})
        assert tiered.l2_stores == 1
        assert shared.stored == 1
        assert set(tiered.fetch_remote([key])) == {key}

    def test_transport_error_degrades_silently(self):
        shared = InMemorySharedCache(fail_after=0)
        tiered = TieredQueryCache(QueryCache(8), shared, cooldown=3600.0)
        assert tiered.fetch_remote([b"x" * 20]) == {}
        assert tiered.l2_errors == 1
        assert tiered.degraded
        # suspended: further operations never touch the remote
        tiered.store_remote({b"y" * 20: np.ones(2, dtype=np.float32)})
        assert tiered.fetch_remote([b"x" * 20]) == {}
        assert tiered.l2_errors == 1
        # L1 keeps working throughout
        tiered.put(b"z" * 20, np.ones(2, dtype=np.float32))
        assert tiered.get(b"z" * 20) is not None

    def test_cooldown_expiry_reprobes(self):
        shared = InMemorySharedCache(fail_after=0)
        tiered = TieredQueryCache(QueryCache(8), shared, cooldown=0.0)
        tiered.fetch_remote([b"x" * 20])
        shared.fail_after = None  # "service restarted"
        shared.store({b"x" * 20: np.ones(2, dtype=np.float32)})
        assert set(tiered.fetch_remote([b"x" * 20])) == {b"x" * 20}
        assert not tiered.degraded

    def test_stats_shape(self):
        tiered = TieredQueryCache(QueryCache(8), InMemorySharedCache())
        stats = tiered.stats()
        assert stats["tiered"] is True
        l2 = stats["l2"]
        assert set(l2) >= {
            "hits", "misses", "stores", "errors",
            "hit_rate", "rtt_ms", "degraded",
        }
        assert {"hits", "misses", "maxsize"} <= set(stats)  # L1 shape kept

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            TieredQueryCache(QueryCache(8), InMemorySharedCache(), cooldown=-1)


class TestCacheService:
    def test_http_lookup_store_roundtrip(self):
        with CacheServiceHandle(maxsize=16) as handle:
            client = handle.client()
            key = image_digest(np.ones((2, 2), dtype=np.float32))
            scores = np.array([0.1, 0.9], dtype=np.float64)
            assert client.lookup([key]) == {}
            client.store({key: scores})
            found = client.lookup([key])
            assert found[key].tobytes() == scores.tobytes()
            assert found[key].dtype == scores.dtype

    def test_healthz_and_metrics(self):
        from repro.cluster.workers import http_json

        with CacheServiceHandle(maxsize=16) as handle:
            status, payload = http_json(handle.address, "GET", "/healthz")
            assert (status, payload["role"]) == (200, "shared-cache")
            handle.client().store(
                {b"k" * 20: np.ones(2, dtype=np.float32)}
            )
            status, payload = http_json(handle.address, "GET", "/metrics")
            assert status == 200
            stats = payload["shared_cache"]
            assert stats["size"] == 1
            assert stats["store_calls"] == 1

    def test_unknown_paths_and_bad_payloads(self):
        from repro.cluster.workers import http_json

        with CacheServiceHandle(maxsize=16) as handle:
            status, _ = http_json(handle.address, "GET", "/nope")
            assert status == 404
            import json

            status, payload = http_json(
                handle.address,
                "POST",
                "/cache/store",
                body=json.dumps(
                    {"entries": {"zz": {"bogus": True}}}
                ).encode("utf-8"),
            )
            assert status == 400
            assert "error" in payload

    def test_client_raises_oserror_when_service_down(self):
        handle = CacheServiceHandle(maxsize=16)
        client = handle.client()
        handle.close()
        with pytest.raises(OSError):
            client.lookup([b"k" * 20])

    def test_service_store_is_bounded_lru(self):
        service = SharedCacheService(maxsize=2)
        for index in range(3):
            service.put(
                {
                    (bytes([index]) * 20).hex(): encode_scores(
                        np.array([index], dtype=np.float32)
                    )
                }
            )
        assert len(service.store) == 2
        assert service.store.evictions == 1

    def test_parse_cache_address(self):
        assert parse_cache_address("127.0.0.1:8890") == ("127.0.0.1", 8890)
        with pytest.raises(ValueError):
            parse_cache_address("8890")
        with pytest.raises(ValueError):
            parse_cache_address(":8890")
        with pytest.raises(ValueError):
            parse_cache_address("host:port")


class TestCrossBrokerSharing:
    def test_second_broker_pays_zero_forwards(self):
        """The tier's whole point: replica B reuses replica A's scores."""
        forwards = []
        base = SmoothLinearClassifier((4, 4, 3), num_classes=3, seed=5)

        def classifier_with_spy(image):
            forwards.append(1)
            return base(image)

        images = _toy_images(5, seed=11)
        with CacheServiceHandle(maxsize=64) as handle:
            def broker_for_replica():
                return MicroBatchBroker(
                    classifier_with_spy,
                    cache=TieredQueryCache(QueryCache(64), handle.client()),
                )

            broker_a = broker_for_replica()
            scores_a = broker_a.evaluate(images)
            paid_by_a = sum(forwards)
            assert paid_by_a == len(images)

            broker_b = broker_for_replica()
            scores_b = broker_b.evaluate(images)
            assert sum(forwards) == paid_by_a  # B paid nothing
            for a, b in zip(scores_a, scores_b):
                np.testing.assert_array_equal(a, b)
            assert broker_b.cache.l2_hits == len(images)

    def test_metrics_rollup_sums_l2(self):
        stats_a = {
            "hits": 3, "misses": 7,
            "l2": {"hits": 2, "misses": 5, "stores": 5, "errors": 0,
                   "rtt_ms": {"count": 7, "mean": 1.0, "max": 2.0,
                              "buckets": {"<=2": 7}}},
        }
        stats_b = {
            "hits": 1, "misses": 4,
            "l2": {"hits": 3, "misses": 1, "stores": 1, "errors": 1,
                   "rtt_ms": {"count": 4, "mean": 3.0, "max": 4.0,
                              "buckets": {"<=4": 4}}},
        }
        rollup = merge_cache_stats({"w0": stats_a, "w1": stats_b})["cluster"]
        assert rollup["l2_hits"] == 5
        assert rollup["l2_misses"] == 6
        assert rollup["l2_stores"] == 6
        assert rollup["l2_errors"] == 1
        assert rollup["shared_hit_rate"] == pytest.approx(5 / 11)
        assert rollup["l2_rtt_ms"]["count"] == 11

    def test_metrics_rollup_without_l2_is_unchanged(self):
        rollup = merge_cache_stats(
            {"w0": {"hits": 2, "misses": 2}}
        )["cluster"]
        assert "l2_hits" not in rollup
        assert rollup == {"hits": 2, "misses": 2, "hit_rate": 0.5}


class TestDifferentialSweep:
    def test_small_sweep_is_bit_identical(self):
        report = shared_cache_sweep(seeds=range(4), budget=30)
        assert report["divergences"] == []
        assert report["warm_hits"] > 0
        assert report["ok"]

    def test_sweep_rejects_unknown_modes(self):
        with pytest.raises(ValueError):
            shared_cache_sweep(modes=("off", "bogus"))

    def test_factory_leaves_uncached_cells_uncached(self):
        factory = tiered_broker_factory(InMemorySharedCache())
        broker = factory(
            SmoothLinearClassifier((4, 4, 3), num_classes=3, seed=1), None
        )
        assert broker.cache is None


class TestServeFlags:
    def test_serve_config_defaults(self):
        from repro.serve.server import ServeConfig

        config = ServeConfig()
        assert config.shared_cache is None
        assert config.shared_cache_size == 65536

    def test_parser_accepts_host_port(self):
        from repro.serve.server import build_parser

        args = build_parser().parse_args(
            ["--shared-cache", "127.0.0.1:9100"]
        )
        assert args.shared_cache == "127.0.0.1:9100"

    def test_parser_bare_flag_means_auto(self):
        from repro.serve.server import build_parser

        args = build_parser().parse_args(["--shared-cache"])
        assert args.shared_cache == "auto"
        assert build_parser().parse_args([]).shared_cache is None

    def test_single_process_auto_is_an_error(self):
        from repro.serve import server as serve_server

        with pytest.raises(SystemExit):
            serve_server.main(["--port", "0", "--shared-cache"])

    def test_server_wraps_cache_when_shared(self):
        from repro.serve.server import AttackServer, ServeConfig

        with CacheServiceHandle(maxsize=16) as handle:
            config = ServeConfig(
                port=0,
                shared_cache="%s:%d" % handle.address,
                height=4, width=4, num_classes=3,
            )
            server = AttackServer(config)
            try:
                assert isinstance(server.cache, TieredQueryCache)
            finally:
                server.stop()

    def test_server_without_flag_keeps_plain_cache(self):
        from repro.serve.server import AttackServer, ServeConfig

        server = AttackServer(
            ServeConfig(port=0, height=4, width=4, num_classes=3)
        )
        try:
            assert isinstance(server.cache, QueryCache)
        finally:
            server.stop()


class TestTieredCacheThreadSafety:
    def test_concurrent_fetch_and_store(self):
        shared = InMemorySharedCache()
        tiered = TieredQueryCache(QueryCache(128), shared)
        errors = []

        def worker(offset):
            try:
                for index in range(25):
                    key = bytes([offset, index]) * 10
                    tiered.store_remote(
                        {key: np.array([offset, index], dtype=np.float32)}
                    )
                    tiered.fetch_remote([key])
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert tiered.l2_hits == 100
        stats = tiered.stats()
        assert stats["l2"]["rtt_ms"]["count"] == 200  # 100 fetch + 100 store
