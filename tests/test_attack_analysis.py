"""Tests for the spatial / chromatic attack-profile analysis."""

import math

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.eval.attack_analysis import (
    ChromaticProfile,
    SpatialProfile,
    chromatic_profile,
    format_profiles,
    spatial_profile,
)

SHAPE = (9, 9)


def success_at(location, perturbation=(1.0, 1.0, 1.0), queries=5):
    return AttackResult(
        success=True,
        queries=queries,
        location=location,
        perturbation=np.array(perturbation),
    )


def failure():
    return AttackResult(success=False, queries=100)


class TestSpatialProfile:
    def test_center_success_has_zero_distance(self):
        profile = spatial_profile([success_at((4, 4))], SHAPE)
        assert profile.samples == 1
        assert profile.center_distances[0] == 0.0

    def test_corner_success_has_max_distance(self):
        profile = spatial_profile([success_at((0, 0))], SHAPE)
        assert profile.center_distances[0] == pytest.approx(1.0)

    def test_failures_excluded(self):
        profile = spatial_profile([failure(), success_at((4, 4))], SHAPE)
        assert profile.samples == 1

    def test_center_bias_below_one_for_central_successes(self):
        results = [success_at((4, 4)), success_at((3, 4)), success_at((5, 5))]
        profile = spatial_profile(results, SHAPE)
        assert profile.center_bias() < 1.0

    def test_empty_results(self):
        profile = spatial_profile([failure()], SHAPE)
        assert math.isnan(profile.mean_normalized_distance)
        assert math.isnan(profile.center_bias())


class TestChromaticProfile:
    def test_brightness_computed_from_clean_image(self):
        image = np.full((9, 9, 3), 0.2)
        image[4, 4] = [0.1, 0.1, 0.1]
        results = [success_at((4, 4), perturbation=(1.0, 1.0, 1.0))]
        profile = chromatic_profile(results, [image])
        assert profile.mean_original_brightness == pytest.approx(0.1)
        assert profile.dark_to_bright_fraction == 1.0

    def test_bright_to_dark_not_counted(self):
        image = np.full((9, 9, 3), 0.9)
        results = [success_at((4, 4), perturbation=(0.0, 0.0, 0.0))]
        profile = chromatic_profile(results, [image])
        assert profile.dark_to_bright_fraction == 0.0

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            chromatic_profile([failure()], [])

    def test_empty(self):
        profile = chromatic_profile([failure()], [np.zeros((9, 9, 3))])
        assert profile.samples == 0
        assert math.isnan(profile.mean_original_brightness)


class TestFormatting:
    def test_format_profiles(self):
        image = np.full((9, 9, 3), 0.3)
        results = [success_at((4, 4))]
        text = format_profiles(
            spatial_profile(results, SHAPE), chromatic_profile(results, [image])
        )
        assert "spatial" in text and "chromatic" in text
