"""Tests for the black-box query boundary."""

import numpy as np
import pytest

from repro.classifier.blackbox import (
    CountingClassifier,
    batch_scores,
    NetworkClassifier,
    QueryBudgetExceeded,
)
from repro.classifier.toy import LinearPixelClassifier
from repro.models.vgg import MiniVGG


@pytest.fixture
def toy():
    return LinearPixelClassifier((4, 4, 3), num_classes=3, seed=0)


class TestCountingClassifier:
    def test_counts_queries(self, toy):
        counting = CountingClassifier(toy)
        image = np.zeros((4, 4, 3))
        for expected in range(1, 6):
            counting(image)
            assert counting.count == expected

    def test_budget_enforced(self, toy):
        counting = CountingClassifier(toy, budget=3)
        image = np.zeros((4, 4, 3))
        for _ in range(3):
            counting(image)
        with pytest.raises(QueryBudgetExceeded) as info:
            counting(image)
        assert info.value.budget == 3
        assert counting.count == 3  # the refused query is not counted

    def test_remaining(self, toy):
        counting = CountingClassifier(toy, budget=2)
        assert counting.remaining == 2
        counting(np.zeros((4, 4, 3)))
        assert counting.remaining == 1
        unbudgeted = CountingClassifier(toy)
        assert unbudgeted.remaining is None

    def test_reset(self, toy):
        counting = CountingClassifier(toy, budget=5)
        counting(np.zeros((4, 4, 3)))
        counting.reset()
        assert counting.count == 0
        assert counting.budget == 5
        counting.reset(budget=None)
        assert counting.budget is None

    def test_reset_rejects_non_int_budget(self, toy):
        """The keep-budget default is a sentinel object, so a stray
        string (including the old ``"unchanged"`` magic value) is a type
        error rather than silently meaning "keep"."""
        counting = CountingClassifier(toy, budget=5)
        with pytest.raises(TypeError):
            counting.reset(budget="unchanged")
        with pytest.raises(TypeError):
            counting.reset(budget=2.5)
        assert counting.budget == 5

    def test_numpy_integer_budget_accepted(self, toy):
        counting = CountingClassifier(toy, budget=np.int64(3))
        assert counting.budget == 3
        counting.reset(budget=np.int32(7))
        assert counting.budget == 7

    def test_zero_budget_rejects_first_query(self, toy):
        counting = CountingClassifier(toy, budget=0)
        with pytest.raises(QueryBudgetExceeded):
            counting(np.zeros((4, 4, 3)))

    def test_negative_budget_rejected(self, toy):
        with pytest.raises(ValueError):
            CountingClassifier(toy, budget=-1)

    def test_classify_counts(self, toy):
        counting = CountingClassifier(toy)
        label = counting.classify(np.zeros((4, 4, 3)))
        assert isinstance(label, int)
        assert counting.count == 1

    def test_passthrough_scores(self, toy):
        counting = CountingClassifier(toy)
        image = np.random.default_rng(0).uniform(size=(4, 4, 3))
        assert np.array_equal(counting(image), toy(image))


class TestNetworkClassifier:
    def test_scores_are_probabilities(self):
        model = MiniVGG(num_classes=5, stage_channels=(4, 8), seed=0)
        classifier = NetworkClassifier(model)
        image = np.random.default_rng(1).uniform(size=(8, 8, 3))
        scores = classifier(image)
        assert scores.shape == (5,)
        assert scores.sum() == pytest.approx(1.0)
        assert (scores >= 0).all()

    def test_batch_matches_single(self):
        model = MiniVGG(num_classes=4, stage_channels=(4,), seed=1)
        classifier = NetworkClassifier(model)
        images = np.random.default_rng(2).uniform(size=(3, 8, 8, 3))
        batch = classifier.batch(images)
        for index in range(3):
            assert np.allclose(batch[index], classifier(images[index]))

    def test_eval_mode_is_set(self):
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=2)
        NetworkClassifier(model)
        assert all(not module.training for module in model.modules())

    def test_deterministic_queries(self):
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=3)
        classifier = NetworkClassifier(model)
        image = np.random.default_rng(3).uniform(size=(8, 8, 3))
        assert np.array_equal(classifier(image), classifier(image))

    def test_rejects_bad_shapes(self):
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=4)
        classifier = NetworkClassifier(model)
        with pytest.raises(ValueError):
            classifier(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            classifier.batch(np.zeros((2, 8, 8)))

    def test_empty_batch_no_model_call(self):
        """(0, H, W, 3) must short-circuit: zero-length batches can crash
        pooling layers, and there is nothing to compute anyway."""
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=5)
        classifier = NetworkClassifier(model)
        calls = []
        model.__call__ = lambda *a, **k: calls.append(1)  # would blow up

        empty = classifier.batch(np.zeros((0, 8, 8, 3)))
        assert empty.shape == (0, 0)  # class count unknown before any query
        assert calls == []

    def test_empty_batch_knows_width_after_first_query(self):
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=6)
        classifier = NetworkClassifier(model)
        classifier(np.random.default_rng(6).uniform(size=(8, 8, 3)))
        assert classifier.batch(np.zeros((0, 8, 8, 3))).shape == (0, 3)


class TestBatchScores:
    def test_fallback_is_bit_identical(self, toy):
        """Classifiers without .batch get the per-image loop, whose rows
        exactly equal sequential single-image calls."""
        assert not hasattr(toy, "batch")
        images = [np.random.default_rng(s).uniform(size=(4, 4, 3)) for s in range(4)]
        stacked = batch_scores(toy, images)
        for image, row in zip(images, stacked):
            assert np.array_equal(row, toy(image))

    def test_native_batch_preferred(self):
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=7)
        classifier = NetworkClassifier(model)
        images = np.random.default_rng(7).uniform(size=(2, 8, 8, 3))
        assert np.array_equal(
            batch_scores(classifier, images), classifier.batch(images)
        )

    def test_empty_input(self, toy):
        assert batch_scores(toy, []).shape == (0, 0)

    def test_single_image_batch_is_two_dimensional(self, toy):
        """The (1, C) contract: one image in still means a score matrix
        out, even from a native batch method that squeezes."""

        class Squeezing:
            def __call__(self, image):
                return toy(image)

            def batch(self, images):
                rows = np.stack([toy(image) for image in images])
                return rows[0] if len(rows) == 1 else rows

        image = np.random.default_rng(12).uniform(size=(4, 4, 3))
        scores = batch_scores(Squeezing(), [image])
        assert scores.shape == (1, 3)
        assert scores.dtype == np.float64
        assert np.array_equal(scores[0], toy(image))

    def test_fallback_single_image_and_list_scores(self, toy):
        """The per-image fallback normalizes list-returning classifiers
        to a float64 matrix, including for a batch of one."""
        image = np.random.default_rng(13).uniform(size=(4, 4, 3))
        scores = batch_scores(lambda x: [float(v) for v in toy(x)], [image])
        assert scores.shape == (1, 3)
        assert scores.dtype == np.float64
        assert np.array_equal(scores[0], toy(image))

    def test_row_count_mismatch_is_rejected(self, toy):
        """A native batch method returning the wrong number of rows is a
        contract violation, not silently mis-assembled scores."""

        class DroppingBatch:
            def __call__(self, image):
                return toy(image)

            def batch(self, images):
                return np.stack([toy(image) for image in list(images)[:-1]])

        images = np.random.default_rng(14).uniform(size=(3, 4, 4, 3))
        with pytest.raises(ValueError, match="score rows"):
            batch_scores(DroppingBatch(), images)


class TestCountingClassifierBatch:
    def test_counts_per_image(self, toy):
        counting = CountingClassifier(toy)
        images = np.random.default_rng(8).uniform(size=(3, 4, 4, 3))
        scores = counting.batch(images)
        assert counting.count == 3
        assert scores.shape == (3, 3)

    def test_budget_matches_sequential_semantics(self, toy):
        """A batch overshooting the budget is refused whole, with the
        count pinned at the budget -- the same observable state a
        sequential attacker reaches before its budget + 1-th query."""
        counting = CountingClassifier(toy, budget=5)
        counting.batch(np.random.default_rng(9).uniform(size=(4, 4, 4, 3)))
        with pytest.raises(QueryBudgetExceeded) as info:
            counting.batch(np.random.default_rng(10).uniform(size=(2, 4, 4, 3)))
        assert info.value.budget == 5
        assert counting.count == 5
        assert counting.remaining == 0

    def test_empty_batch_costs_nothing(self, toy):
        counting = CountingClassifier(toy, budget=1)
        counting.batch(np.zeros((0, 4, 4, 3)))
        assert counting.count == 0

    def test_batch_rows_match_single_calls(self, toy):
        counting = CountingClassifier(toy)
        images = np.random.default_rng(11).uniform(size=(3, 4, 4, 3))
        stacked = counting.batch(images)
        for image, row in zip(images, stacked):
            assert np.array_equal(row, toy(image))
