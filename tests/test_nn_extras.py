"""Tests for dropout, LR schedulers, and model summaries."""

import numpy as np
import pytest

from repro.models.vgg import MiniVGG
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.optim import SGD
from repro.nn.module import Parameter
from repro.nn.schedulers import CosineAnnealing, StepDecay, WarmupWrapper
from repro.nn.summary import describe, parameter_table


class TestDropout:
    def test_identity_in_eval(self):
        layer = Dropout(0.5)
        layer.training = False
        x = np.random.default_rng(0).normal(size=(4, 8))
        assert np.array_equal(layer(x), x)

    def test_zeroes_and_rescales_in_training(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((1000,))
        out = layer(x)
        zeros = (out == 0).mean()
        assert 0.35 < zeros < 0.65
        # survivors are scaled by 1/keep
        assert np.allclose(out[out != 0], 2.0)
        # expectation preserved
        assert abs(out.mean() - 1.0) < 0.15

    def test_backward_masks_gradient(self):
        layer = Dropout(0.5, seed=2)
        x = np.ones((100,))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad == 0, out == 0)

    def test_p_zero_is_identity(self):
        layer = Dropout(0.0)
        x = np.random.default_rng(3).normal(size=(5, 5))
        assert np.array_equal(layer(x), x)
        assert np.array_equal(layer.backward(x), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestSchedulers:
    def test_step_decay(self):
        optimizer = make_optimizer(0.1)
        scheduler = StepDecay(optimizer, period=2, factor=0.1)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([0.1, 0.01, 0.01, 0.001])

    def test_cosine_annealing_endpoints(self):
        optimizer = make_optimizer(1.0)
        scheduler = CosineAnnealing(optimizer, total_epochs=10, min_lr=0.1)
        rates = [scheduler.step() for _ in range(10)]
        assert rates[0] < 1.0
        assert rates[-1] == pytest.approx(0.1)
        assert rates == sorted(rates, reverse=True)

    def test_cosine_clamps_past_horizon(self):
        optimizer = make_optimizer(1.0)
        scheduler = CosineAnnealing(optimizer, total_epochs=2, min_lr=0.0)
        for _ in range(5):
            rate = scheduler.step()
        assert rate == pytest.approx(0.0)

    def test_warmup(self):
        optimizer = make_optimizer(1.0)
        inner = CosineAnnealing(optimizer, total_epochs=4)
        scheduler = WarmupWrapper(inner, warmup_epochs=2)
        first = scheduler.step()
        second = scheduler.step()
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)
        third = scheduler.step()
        assert third < 1.0  # cosine has taken over

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), period=0)
        with pytest.raises(ValueError):
            CosineAnnealing(make_optimizer(), total_epochs=0)
        with pytest.raises(ValueError):
            WarmupWrapper(CosineAnnealing(make_optimizer(), 2), warmup_epochs=-1)


class TestSummary:
    def test_describe_contains_tree(self):
        model = MiniVGG(num_classes=5, stage_channels=(4,), seed=0)
        text = describe(model)
        assert "MiniVGG" in text
        assert "features" in text
        assert "head" in text
        assert "params" in text

    def test_describe_respects_depth(self):
        model = MiniVGG(num_classes=5, stage_channels=(4,), seed=0)
        shallow = describe(model, max_depth=1)
        deep = describe(model, max_depth=4)
        assert len(deep.splitlines()) > len(shallow.splitlines())

    def test_parameter_table_totals(self):
        model = Linear(3, 4, rng=np.random.default_rng(0))
        table = parameter_table(model)
        assert "weight" in table and "bias" in table
        assert "16" in table  # 12 + 4 total
