"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

TINY = [
    "--image-size", "8",
    "--train-per-class", "10",
    "--epochs", "1",
]


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "cifar"
        assert args.arch == "vgg16bn"

    def test_rejects_unknown_arch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--arch", "alexnet"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])

    def test_attack_cache_size_zero_accepted(self):
        args = build_parser().parse_args(["attack", "--cache-size", "0"])
        assert args.cache_size == 0

    def test_attack_cache_size_negative_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--cache-size", "-5"])

    def test_attack_freeze_flag(self):
        assert build_parser().parse_args(["attack"]).freeze is False
        assert build_parser().parse_args(["attack", "--freeze"]).freeze is True


class TestCommands:
    def test_train_then_attack(self, cache_dir, capsys):
        assert main(["train", *TINY, "--cache-dir", cache_dir]) == 0
        output = capsys.readouterr().out
        assert "train accuracy" in output

        assert main(
            ["attack", *TINY, "--cache-dir", cache_dir,
             "--images", "3", "--budget", "50"]
        ) == 0
        output = capsys.readouterr().out
        assert "Sketch+False" in output

    def test_attack_with_cache_disabled_and_freeze(self, cache_dir, capsys):
        """Regression: ``--cache-size 0`` used to crash with ``ValueError:
        maxsize must be positive``; it now means "no cache", and composes
        with the frozen inference fast path."""
        main(["train", *TINY, "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(
            ["attack", *TINY, "--cache-dir", cache_dir,
             "--images", "2", "--budget", "40",
             "--cache-size", "0", "--freeze"]
        ) == 0
        assert "Sketch+False" in capsys.readouterr().out

    def test_synthesize_saves_program(self, cache_dir, tmp_path, capsys):
        out = str(tmp_path / "program.json")
        assert main(
            ["synthesize", *TINY, "--cache-dir", cache_dir,
             "--iterations", "1", "--train-images", "2",
             "--per-image-budget", "40", "--out", out]
        ) == 0
        with open(out) as handle:
            payload = json.load(handle)
        assert "best_program" in payload
        output = capsys.readouterr().out
        assert "[B1]" in output

    def test_attack_with_synthesized_program(self, cache_dir, tmp_path, capsys):
        out = str(tmp_path / "program.json")
        main(
            ["synthesize", *TINY, "--cache-dir", cache_dir,
             "--iterations", "1", "--train-images", "2",
             "--per-image-budget", "40", "--out", out]
        )
        capsys.readouterr()
        assert main(
            ["attack", *TINY, "--cache-dir", cache_dir,
             "--program", out, "--images", "2", "--budget", "40"]
        ) == 0
        assert "OPPSLA" in capsys.readouterr().out

    def test_attack_sparse_rs_baseline(self, cache_dir, capsys):
        main(["train", *TINY, "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(
            ["attack", *TINY, "--cache-dir", cache_dir,
             "--baseline", "sparse-rs", "--images", "2", "--budget", "30"]
        ) == 0
        assert "Sparse-RS" in capsys.readouterr().out

    def test_attack_parallel_with_run_log(self, cache_dir, tmp_path, capsys):
        """--workers N prints the same summary as a sequential run and
        --run-log captures the structured event stream."""
        main(["train", *TINY, "--cache-dir", cache_dir])
        capsys.readouterr()
        log_path = str(tmp_path / "run.jsonl")
        assert main(
            ["attack", *TINY, "--cache-dir", cache_dir,
             "--images", "3", "--budget", "50",
             "--workers", "2", "--run-log", log_path, "--cache-size", "64"]
        ) == 0
        parallel_output = capsys.readouterr().out
        assert main(
            ["attack", *TINY, "--cache-dir", cache_dir,
             "--images", "3", "--budget", "50"]
        ) == 0
        assert capsys.readouterr().out == parallel_output

        with open(log_path) as handle:
            events = [json.loads(line) for line in handle]
        names = {event["event"] for event in events}
        assert {"run_start", "run_end", "attack_summary"} <= names
        summary = next(e for e in events if e["event"] == "attack_summary")
        assert summary["total_images"] == 3

    def test_experiment_table2_with_tiny_profile(
        self, tmp_path, monkeypatch, capsys
    ):
        """The experiment subcommand end to end, on a tiny profile."""
        from repro.eval import experiments as exp

        tiny = exp.ExperimentProfile(
            name="tiny",
            cifar_size=8,
            imagenet_size=8,
            train_per_class=10,
            test_per_class=4,
            epochs=1,
            test_images=2,
            imagenet_test_images=2,
            cifar_thresholds=(20, 60),
            imagenet_thresholds=(20, 60),
            figure4_max_points=3,
            synthesis_train_images=2,
            synthesis_iterations=1,
            synthesis_per_image_budget=40,
            suopa_population=8,
        )
        monkeypatch.setitem(exp.PROFILES, "tiny", tiny)
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "tiny")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["experiment", "table2"]) == 0
        output = capsys.readouterr().out
        assert "OPPSLA" in output and "Sketch+False" in output


class TestCheckpointFlags:
    def test_parser_checkpoint_defaults(self):
        attack = build_parser().parse_args(["attack"])
        assert attack.checkpoint is None
        synthesize = build_parser().parse_args(["synthesize"])
        assert synthesize.checkpoint is None
        assert synthesize.resume is False
        assert synthesize.checkpoint_interval == 10

    def test_attack_checkpoint_resume_prints_progress(
        self, cache_dir, tmp_path, capsys
    ):
        """Re-running a checkpointed campaign resumes instead of redoing it,
        announces the resume, and reprints an identical summary."""
        main(["train", *TINY, "--cache-dir", cache_dir])
        capsys.readouterr()
        checkpoint = str(tmp_path / "campaign")
        argv = [
            "attack", *TINY, "--cache-dir", cache_dir,
            "--images", "3", "--budget", "50", "--checkpoint", checkpoint,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "resumed" not in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "# resumed 3/3 images, 0 queries replayed" in second
        assert first.strip() in second

    def test_synthesize_checkpoint_resume_prints_iteration(
        self, cache_dir, tmp_path, capsys
    ):
        main(["train", *TINY, "--cache-dir", cache_dir])
        capsys.readouterr()
        checkpoint = str(tmp_path / "chain")
        argv = [
            "synthesize", *TINY, "--cache-dir", cache_dir,
            "--iterations", "1", "--train-images", "2",
            "--per-image-budget", "40", "--checkpoint", checkpoint,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "# resuming MH chain from iteration 1/1" in second
        # the resumed chain reproduces the original program verbatim
        assert [line for line in first.splitlines() if "[" in line] == [
            line for line in second.splitlines() if "[" in line
        ]


class TestCampaignCommands:
    def spec_path(self, tmp_path):
        from repro.testkit.kill import toy_matrix_spec

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(toy_matrix_spec(images=2, budget=16, campaign_id="cli"))
        )
        return str(path)

    def test_run_report_list_round_trip(self, tmp_path, capsys):
        spec = self.spec_path(tmp_path)
        root = str(tmp_path / "camp")
        assert main(["campaign", "run", "--spec", spec, "--root", root]) == 0
        run_output = capsys.readouterr().out
        assert "[4/4]" in run_output

        assert main(["campaign", "report", "--root", root, "--no-timing"]) == 0
        report = capsys.readouterr().out
        assert "# campaign cli" in report
        assert "4/4 cells complete" in report

        assert main(["campaign", "list", "--root", root]) == 0
        listing = capsys.readouterr().out
        assert listing.count("done  toy.") == 4

    def test_rerun_replays_and_report_is_stable(self, tmp_path, capsys):
        spec = self.spec_path(tmp_path)
        root = str(tmp_path / "camp")
        main(["campaign", "run", "--spec", spec, "--root", root])
        capsys.readouterr()
        main(["campaign", "report", "--root", root, "--no-timing"])
        first = capsys.readouterr().out
        assert main(["campaign", "run", "--spec", spec, "--root", root]) == 0
        assert "replayed" in capsys.readouterr().out
        main(["campaign", "report", "--root", root, "--no-timing"])
        assert capsys.readouterr().out == first

    def test_report_writes_bench_and_csv(self, tmp_path, capsys):
        from repro.campaign.bench import read_bench

        spec = self.spec_path(tmp_path)
        root = str(tmp_path / "camp")
        main(["campaign", "run", "--spec", spec, "--root", root])
        out_path = str(tmp_path / "report.csv")
        assert main([
            "campaign", "report", "--root", root, "--format", "csv",
            "--out", out_path, "--bench-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert "cell,total_images" in open(out_path).read()
        payload = read_bench(str(tmp_path / "BENCH_campaign_cli.json"))
        assert payload["suite"] == "campaign_cli"

    def test_invalid_spec_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"campaign": {"id": "x"}}))
        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "--spec", str(bad),
                "--root", str(tmp_path / "camp"),
            ])
