"""Tests for the generator-based attack stepping protocol.

Every attack must behave identically whether it is driven by its own
``attack()`` method or stepped externally through ``steps()`` -- same
result, same query count, same perturbation.  That equivalence is what
lets the serving layer interleave attacks without changing what the
paper measures.
"""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.stepping import Query, StepCounter, drive_steps, threaded_steps


@pytest.fixture
def image(toy_shape):
    return np.linspace(0, 1, int(np.prod(toy_shape))).reshape(toy_shape)


def _attacks():
    return [
        FixedSketchAttack(),
        UniformRandomAttack(UniformRandomConfig(seed=3)),
        SuOPA(SuOPAConfig(population_size=6, max_generations=3, seed=3)),
        SparseRS(SparseRSConfig(max_steps=40, seed=3)),
    ]


class TestStepCounter:
    def test_counts_at_pose_time(self):
        counter = StepCounter(budget=3)
        first = counter.submit(np.zeros((2, 2, 3)))
        assert isinstance(first, Query)
        assert first.counted
        assert counter.count == 1

    def test_budget_refusal_matches_counting_classifier(self):
        counter = StepCounter(budget=2)
        counter.submit(np.zeros((2, 2, 3)))
        counter.submit(np.zeros((2, 2, 3)))
        with pytest.raises(QueryBudgetExceeded) as info:
            counter.submit(np.zeros((2, 2, 3)))
        assert info.value.budget == 2
        assert counter.count == 2  # refused query not counted

    def test_unbudgeted(self):
        counter = StepCounter(budget=None)
        for _ in range(10):
            counter.submit(np.zeros((2, 2, 3)))
        assert counter.count == 10


class TestDriveEquivalence:
    """steps() + drive_steps == attack(), bit for bit."""

    @pytest.mark.parametrize("attack", _attacks(), ids=lambda a: a.name)
    def test_same_result_as_attack(self, attack, linear_classifier, image):
        true_class = int(np.argmax(linear_classifier(image)))
        direct = attack.attack(linear_classifier, image, true_class, budget=300)
        stepped = drive_steps(
            attack.steps(image, true_class, budget=300), linear_classifier
        )
        assert stepped.success == direct.success
        assert stepped.queries == direct.queries
        assert stepped.location == direct.location
        if direct.perturbation is None:
            assert stepped.perturbation is None
        else:
            assert np.array_equal(stepped.perturbation, direct.perturbation)

    @pytest.mark.parametrize("attack", _attacks(), ids=lambda a: a.name)
    def test_counted_queries_match_result(self, attack, linear_classifier, image):
        """Externally observed counted queries == the attack's own tally."""
        true_class = int(np.argmax(linear_classifier(image)))
        steps = attack.steps(image, true_class, budget=300)
        counted = 0
        try:
            request = next(steps)
            while True:
                assert isinstance(request, Query)
                if request.counted:
                    counted += 1
                request = steps.send(linear_classifier(request.image))
        except StopIteration as stop:
            result = stop.value
        assert counted == result.queries

    def test_sketch_clean_probe_is_uncounted(self, linear_classifier, image):
        """The first yield of a sketch attack is the threat-model's clean
        score lookup, not an attack submission."""
        true_class = int(np.argmax(linear_classifier(image)))
        steps = FixedSketchAttack().steps(image, true_class, budget=50)
        first = next(steps)
        assert not first.counted
        assert np.array_equal(first.image, image)
        steps.close()

    def test_budget_zero_yields_no_counted_queries(self, linear_classifier, image):
        true_class = int(np.argmax(linear_classifier(image)))
        result = drive_steps(
            FixedSketchAttack().steps(image, true_class, budget=0),
            linear_classifier,
        )
        assert not result.success
        assert result.queries == 0


class TestThreadedFallback:
    """Attacks without a native steps() use the threaded channel."""

    def test_threaded_steps_equivalence(self, linear_classifier, image):
        attack = FixedSketchAttack()
        true_class = int(np.argmax(linear_classifier(image)))
        direct = attack.attack(linear_classifier, image, true_class, budget=200)
        stepped = drive_steps(
            threaded_steps(attack, image, true_class, budget=200),
            linear_classifier,
        )
        assert stepped.success == direct.success
        assert stepped.queries == direct.queries

    def test_early_close_does_not_hang(self, linear_classifier, image):
        true_class = int(np.argmax(linear_classifier(image)))
        steps = threaded_steps(
            UniformRandomAttack(), image, true_class, budget=10000
        )
        request = next(steps)
        steps.send(linear_classifier(request.image))
        steps.close()  # must terminate the backing thread, not deadlock
