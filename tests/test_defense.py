"""Tests for the pixel-healing defense."""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.blackbox import CountingClassifier
from repro.classifier.toy import SinglePixelBackdoorClassifier
from repro.defense.healing import (
    PixelHealingDetector,
    implausibility_map,
    neighborhood_median,
)

SHAPE = (6, 6, 3)


def gray_image():
    return np.full(SHAPE, 0.5)


def backdoor():
    return SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.ones(3))


class TestNeighborhoodMedian:
    def test_uniform_region(self):
        image = np.full((5, 5, 3), 0.4)
        assert np.allclose(neighborhood_median(image, 2, 2), 0.4)

    def test_excludes_center_pixel(self):
        image = np.full((5, 5, 3), 0.4)
        image[2, 2] = 1.0  # outlier center must not influence its own median
        assert np.allclose(neighborhood_median(image, 2, 2), 0.4)

    def test_corner_pixel_uses_available_neighbors(self):
        image = np.full((4, 4, 3), 0.7)
        assert np.allclose(neighborhood_median(image, 0, 0), 0.7)


class TestImplausibilityMap:
    def test_outlier_has_max_score(self):
        image = gray_image()
        image[3, 4] = [1.0, 0.0, 1.0]
        scores = implausibility_map(image)
        assert np.unravel_index(scores.argmax(), scores.shape) == (3, 4)

    def test_smooth_image_is_flat(self):
        scores = implausibility_map(gray_image())
        assert np.allclose(scores, 0.0)


class TestDetector:
    def test_detects_and_heals_an_attack(self):
        classifier = backdoor()
        image = gray_image()
        attack_result = FixedSketchAttack().attack(classifier, image, true_class=0)
        assert attack_result.success
        adversarial = image.copy()
        adversarial[attack_result.location[0], attack_result.location[1]] = (
            attack_result.perturbation
        )

        detector = PixelHealingDetector(classifier, top_k=4)
        verdict = detector.detect(adversarial)
        assert verdict.adversarial
        assert verdict.location == attack_result.location
        assert verdict.original_class == 1  # the attacked prediction
        assert verdict.restored_class == 0
        # the healed image classifies as the clean class
        assert int(np.argmax(classifier(verdict.healed_image))) == 0

    def test_clean_image_passes(self):
        detector = PixelHealingDetector(backdoor(), top_k=4)
        verdict = detector.detect(gray_image())
        assert not verdict.adversarial
        assert verdict.original_class == 0
        assert verdict.healed_image is None

    def test_query_cost_bounded(self):
        counting = CountingClassifier(backdoor())
        detector = PixelHealingDetector(counting, top_k=5)
        verdict = detector.detect(gray_image())
        assert verdict.queries == counting.count
        assert verdict.queries <= 5 + 1

    def test_top_k_too_small_misses(self):
        """With top_k=1 and two equally implausible pixels, the detector
        may test the wrong one -- detection quality degrades gracefully."""
        classifier = backdoor()
        adversarial = gray_image()
        adversarial[2, 3] = 1.0  # the real perturbation
        adversarial[4, 1] = 0.0  # an innocent but equally odd pixel
        verdict = PixelHealingDetector(classifier, top_k=2).detect(adversarial)
        assert verdict.adversarial  # within 2 suspects it is still found

    def test_validation(self):
        with pytest.raises(ValueError):
            PixelHealingDetector(backdoor(), top_k=0)
        detector = PixelHealingDetector(backdoor())
        with pytest.raises(ValueError):
            detector.detect(np.zeros((6, 6)))
