"""Tests for the execution engine: pool, faults, and determinism.

Task functions used under multiprocessing live at module level so they
pickle under both the ``fork`` and ``spawn`` start methods.
"""

import os
import time

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.base import AttackResult, OnePixelAttack
from repro.classifier.toy import LinearPixelClassifier, make_toy_images
from repro.core.dsl.printer import format_program
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig
from repro.core.synthesis.score import evaluate_program
from repro.core.dsl.grammar import Grammar
from repro.eval.runner import attack_dataset
from repro.runtime import (
    FaultPolicy,
    RunLog,
    WorkerPool,
    task_seed,
)


def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def _exit_on_two(x):
    if x == 2:
        os._exit(13)  # hard crash: no exception machinery, no report
    return x


def _hang_on_one(x):
    if x == 1:
        time.sleep(60)
    return x


class _SucceedOnRetry:
    """Fails until a marker file exists, then succeeds.

    The marker survives worker restarts, so with ``retries >= 1`` the
    second attempt (on any worker) goes through.
    """

    def __init__(self, marker_path):
        self.marker_path = marker_path

    def __call__(self, x):
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as handle:
                handle.write("attempted")
            raise RuntimeError("first attempt always fails")
        return x + 100


class _HangingAttack(OnePixelAttack):
    """Hangs forever on one designated class; trivial failure otherwise."""

    def __init__(self, hang_class):
        self.hang_class = hang_class

    def attack(self, classifier, image, true_class, budget=None, target_class=None):
        if true_class == self.hang_class:
            time.sleep(60)
        classifier(image)
        return AttackResult(success=False, queries=1)


def _results_signature(summary):
    """Comparable per-image tuples (arrays compared by value)."""
    return [
        (
            r.success,
            r.queries,
            r.location,
            None if r.perturbation is None else r.perturbation.tobytes(),
            r.adversarial_class,
            r.error,
        )
        for r in summary.results
    ]


@pytest.fixture
def toy_setup():
    shape = (6, 6, 3)
    classifier = LinearPixelClassifier(shape, 3, seed=1, temperature=0.05)
    images = make_toy_images(10, shape, seed=2)
    pairs = [(image, int(np.argmax(classifier(image)))) for image in images]
    return classifier, pairs


class TestWorkerPoolBasics:
    def test_preserves_order(self):
        pool = WorkerPool(workers=3)
        outcomes = pool.map(_square, list(range(20)))
        assert [o.index for o in outcomes] == list(range(20))
        assert [o.value for o in outcomes] == [x * x for x in range(20)]
        assert all(o.ok for o in outcomes)

    def test_inline_matches_processes(self):
        inline = WorkerPool(workers=0).map_values(_square, range(12))
        procs = WorkerPool(workers=2).map_values(_square, range(12))
        assert inline == procs

    def test_empty_payloads(self):
        assert WorkerPool(workers=2).map(_square, []) == []
        assert WorkerPool(workers=0).map(_square, []) == []

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1)

    def test_task_seed_deterministic_and_distinct(self):
        seeds = [task_seed(7, index) for index in range(100)]
        assert seeds == [task_seed(7, index) for index in range(100)]
        assert len(set(seeds)) == 100
        assert task_seed(8, 0) != task_seed(7, 0)


class TestFaultContainment:
    def test_exception_contained(self):
        log = RunLog()
        pool = WorkerPool(workers=2, run_log=log)
        outcomes = pool.map(_boom_on_three, range(6))
        bad = outcomes[3]
        assert not bad.ok
        assert bad.error.kind == "exception"
        assert bad.error.type == "ValueError"
        assert "boom" in bad.error.message
        assert [o.ok for o in outcomes] == [True, True, True, False, True, True]
        ends = log.of_type("task_end")
        assert sum(1 for e in ends if not e["ok"]) == 1

    def test_inline_exception_contained(self):
        outcomes = WorkerPool(workers=0).map(_boom_on_three, range(5))
        assert not outcomes[3].ok
        assert outcomes[3].error.type == "ValueError"
        with pytest.raises(RuntimeError, match="ValueError"):
            outcomes[3].unwrap()

    def test_worker_crash_contained_and_logged(self):
        log = RunLog()
        pool = WorkerPool(workers=2, run_log=log)
        outcomes = pool.map(_exit_on_two, range(6))
        assert not outcomes[2].ok
        assert outcomes[2].error.kind == "crash"
        assert [o.ok for o in outcomes if o.index != 2] == [True] * 5
        assert log.counts().get("worker_crash", 0) >= 1
        assert log.counts().get("worker_restart", 0) >= 1

    def test_timeout_kills_hung_worker(self):
        log = RunLog()
        pool = WorkerPool(
            workers=2, policy=FaultPolicy(timeout=0.5), run_log=log
        )
        started = time.monotonic()
        outcomes = pool.map(_hang_on_one, range(5))
        wall = time.monotonic() - started
        assert wall < 30  # far below the 60s sleep: the worker was killed
        assert not outcomes[1].ok
        assert outcomes[1].error.kind == "timeout"
        assert [o.ok for o in outcomes if o.index != 1] == [True] * 4
        assert log.counts().get("task_timeout", 0) == 1

    def test_retry_succeeds_on_second_attempt(self, tmp_path):
        marker = str(tmp_path / "marker")
        log = RunLog()
        pool = WorkerPool(
            workers=1,
            policy=FaultPolicy(retries=2, backoff=0.01),
            run_log=log,
        )
        outcomes = pool.map(_SucceedOnRetry(marker), [5])
        assert outcomes[0].ok
        assert outcomes[0].value == 105
        assert outcomes[0].attempts == 2
        assert log.counts().get("task_retry", 0) == 1

    def test_retries_exhausted(self):
        pool = WorkerPool(workers=1, policy=FaultPolicy(retries=1, backoff=0.01))
        outcomes = pool.map(_boom_on_three, [3])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2


class TestFaultPolicy:
    def test_backoff_schedule(self):
        policy = FaultPolicy(retries=3, backoff=0.1, backoff_factor=2.0)
        assert policy.max_attempts == 4
        assert policy.retry_delay(1) == pytest.approx(0.1)
        assert policy.retry_delay(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_factor=0.5)


class TestAttackDatasetDeterminism:
    def test_parallel_matches_sequential_fixed_sketch(self, toy_setup):
        classifier, pairs = toy_setup
        attack = FixedSketchAttack()
        sequential = attack_dataset(attack, classifier, pairs, budget=200)
        parallel = attack_dataset(
            attack,
            classifier,
            pairs,
            budget=200,
            executor=WorkerPool(workers=4),
        )
        assert _results_signature(sequential) == _results_signature(parallel)
        # wall-clock keys are measurements and legitimately differ
        assert sequential.to_dict(include_timing=False) == parallel.to_dict(
            include_timing=False
        )

    def test_parallel_matches_sequential_seeded_sparse_rs(self, toy_setup):
        classifier, pairs = toy_setup
        attack = SparseRS(SparseRSConfig(seed=11, max_steps=100))
        sequential = attack_dataset(attack, classifier, pairs, budget=80)
        parallel = attack_dataset(
            attack,
            classifier,
            pairs,
            budget=80,
            executor=WorkerPool(workers=4),
        )
        assert _results_signature(sequential) == _results_signature(parallel)

    def test_cache_does_not_change_results(self, toy_setup):
        classifier, pairs = toy_setup
        attack = FixedSketchAttack()
        plain = attack_dataset(attack, classifier, pairs, budget=200)
        cached = attack_dataset(
            attack, classifier, pairs, budget=200, cache_size=1024
        )
        assert _results_signature(plain) == _results_signature(cached)


class TestSynthesisDeterminism:
    def test_parallel_candidate_evaluation_matches_sequential(self, toy_setup):
        classifier, pairs = toy_setup
        grammar = Grammar((6, 6))
        program = grammar.random_program(np.random.default_rng(9))
        sequential = evaluate_program(
            program, classifier, pairs, per_image_budget=60
        )
        parallel = evaluate_program(
            program,
            classifier,
            pairs,
            per_image_budget=60,
            executor=WorkerPool(workers=4),
        )
        assert sequential.avg_queries == parallel.avg_queries
        assert sequential.successes == parallel.successes
        assert sequential.total_queries == parallel.total_queries
        assert [
            (r.success, r.queries) for r in sequential.results
        ] == [(r.success, r.queries) for r in parallel.results]

    def test_parallel_oppsla_matches_sequential(self, toy_setup):
        classifier, pairs = toy_setup
        config = OppslaConfig(max_iterations=4, per_image_budget=50, seed=3)
        sequential = Oppsla(config).synthesize(classifier, pairs[:5])
        parallel = Oppsla(config).synthesize(
            classifier, pairs[:5], executor=WorkerPool(workers=4)
        )
        assert format_program(sequential.best_program) == format_program(
            parallel.best_program
        )
        assert sequential.total_queries == parallel.total_queries
        assert (
            sequential.best_evaluation.avg_queries
            == parallel.best_evaluation.avg_queries
        )


class TestDegradedRuns:
    def test_hanging_attack_degrades_not_kills(self, toy_setup, tmp_path):
        classifier, pairs = toy_setup
        hang_class = pairs[2][1]
        attack = _HangingAttack(hang_class)
        log_path = str(tmp_path / "run.jsonl")
        log = RunLog(log_path)
        pool = WorkerPool(
            workers=2, policy=FaultPolicy(timeout=0.5), run_log=log
        )
        summary = attack_dataset(
            attack, classifier, pairs, budget=64, executor=pool
        )
        log.close()
        assert summary.total_images == len(pairs)
        degraded = [r for r in summary.results if r.error is not None]
        assert degraded, "expected at least one degraded result"
        assert all(r.queries == 64 and not r.success for r in degraded)
        assert all("timeout" in r.error for r in degraded)
        # the JSONL file records both the fault and the degraded result
        events = RunLog.read(log_path)
        types = {event["event"] for event in events}
        assert "task_timeout" in types
        assert "worker_restart" in types
        degraded_events = [
            e
            for e in events
            if e["event"] == "attack_result" and e.get("error") is not None
        ]
        assert degraded_events
        assert summary.error_counts()
        assert summary.to_dict()["errors"]
