"""Package-level health checks: imports, exports, versioning."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.dsl",
    "repro.core.synthesis",
    "repro.attacks",
    "repro.classifier",
    "repro.data",
    "repro.models",
    "repro.nn",
    "repro.nn.layers",
    "repro.eval",
    "repro.defense",
    "repro.runtime",
    "repro.serve",
]


def iter_all_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package_name
        for info in pkgutil.iter_modules(package.__path__):
            if not info.ispkg:
                yield f"{package_name}.{info.name}"


class TestImports:
    @pytest.mark.parametrize("module_name", sorted(set(iter_all_modules())))
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_api(self):
        # the names the README leads with
        assert callable(repro.OnePixelSketch)
        assert callable(repro.Oppsla)
        assert callable(repro.CountingClassifier)

    @pytest.mark.parametrize("module_name", sorted(set(iter_all_modules())))
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
