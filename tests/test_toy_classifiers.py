"""Tests for the toy classifiers (the test substrate itself)."""

import numpy as np
import pytest

from repro.classifier.toy import (
    LinearPixelClassifier,
    MarginRampClassifier,
    SinglePixelBackdoorClassifier,
    make_toy_images,
)


class TestLinearPixelClassifier:
    def test_scores_are_probabilities(self):
        classifier = LinearPixelClassifier((4, 4, 3), num_classes=4, seed=0)
        scores = classifier(np.zeros((4, 4, 3)))
        assert scores.shape == (4,)
        assert scores.sum() == pytest.approx(1.0)

    def test_linear_in_pixels(self):
        # two images differing in one pixel give different scores
        classifier = LinearPixelClassifier((4, 4, 3), num_classes=3, seed=0)
        a = np.full((4, 4, 3), 0.5)
        b = a.copy()
        b[1, 2] = [1.0, 0.0, 1.0]
        assert not np.allclose(classifier(a), classifier(b))

    def test_temperature_sharpens(self):
        image = np.random.default_rng(0).uniform(size=(4, 4, 3))
        soft = LinearPixelClassifier((4, 4, 3), 3, seed=1, temperature=1.0)(image)
        sharp = LinearPixelClassifier((4, 4, 3), 3, seed=1, temperature=0.01)(image)
        assert sharp.max() > soft.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearPixelClassifier((4, 4, 2), num_classes=3)
        with pytest.raises(ValueError):
            LinearPixelClassifier((4, 4, 3), num_classes=1)
        classifier = LinearPixelClassifier((4, 4, 3), num_classes=3)
        with pytest.raises(ValueError):
            classifier(np.zeros((5, 5, 3)))


class TestBackdoorClassifier:
    def test_trigger_flips(self):
        classifier = SinglePixelBackdoorClassifier(
            (4, 4, 3), (1, 1), np.ones(3)
        )
        clean = np.zeros((4, 4, 3))
        assert np.argmax(classifier(clean)) == 0
        triggered = clean.copy()
        triggered[1, 1] = 1.0
        assert np.argmax(classifier(triggered)) == 1

    def test_wrong_location_does_not_trigger(self):
        classifier = SinglePixelBackdoorClassifier((4, 4, 3), (1, 1), np.ones(3))
        image = np.zeros((4, 4, 3))
        image[2, 2] = 1.0
        assert np.argmax(classifier(image)) == 0

    def test_same_class_rejected(self):
        with pytest.raises(ValueError):
            SinglePixelBackdoorClassifier(
                (4, 4, 3), (0, 0), np.ones(3), default_class=1, backdoor_class=1
            )


class TestMarginRampClassifier:
    def test_flips_above_threshold(self):
        classifier = MarginRampClassifier((4, 4, 3), (1, 1), threshold=2.5)
        dark = np.zeros((4, 4, 3))
        assert np.argmax(classifier(dark)) == 0
        bright = dark.copy()
        bright[1, 1] = 1.0  # brightness 3.0 > 2.5
        assert np.argmax(classifier(bright)) == 1

    def test_confidence_decreases_with_brightness(self):
        classifier = MarginRampClassifier((4, 4, 3), (1, 1), threshold=2.5)
        image = np.zeros((4, 4, 3))
        confidences = []
        for value in (0.0, 0.4, 0.8):
            image[1, 1] = value
            confidences.append(classifier(image)[0])
        assert confidences == sorted(confidences, reverse=True)


class TestMakeToyImages:
    def test_shape_and_range(self):
        images = make_toy_images(5, (4, 6, 3), seed=0)
        assert images.shape == (5, 4, 6, 3)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(
            make_toy_images(3, seed=7), make_toy_images(3, seed=7)
        )

    def test_smooth_avoids_extremes(self):
        smooth = make_toy_images(50, seed=1, smooth=True)
        assert 0.2 < smooth.mean() < 0.8
