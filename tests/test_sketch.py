"""Tests for the one-pixel sketch (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier.toy import SinglePixelBackdoorClassifier, make_toy_images
from repro.core.dsl.ast import (
    Comparison,
    Condition,
    Constant,
    Center,
    Program,
    ScoreDiff,
)
from repro.core.dsl.grammar import Grammar
from repro.core.initorder import initial_order
from repro.core.pairs import Pair
from repro.core.sketch import OnePixelSketch, SketchResult

SHAPE = (6, 6, 3)
FULL_SPACE = 8 * 6 * 6


def backdoor(trigger=(2, 3), value=None):
    value = value if value is not None else np.ones(3)
    return SinglePixelBackdoorClassifier(SHAPE, trigger, value)


def gray_image():
    return np.full(SHAPE, 0.5)


class RecordingClassifier:
    """Wraps a classifier and records every queried image."""

    def __init__(self, inner):
        self.inner = inner
        self.queried = []

    def __call__(self, image):
        self.queried.append(image.copy())
        return self.inner(image)


class TestCompleteness:
    def test_false_program_finds_backdoor(self):
        sketch = OnePixelSketch(Program.constant(False))
        result = sketch.attack(backdoor(), gray_image(), true_class=0)
        assert result.success
        assert result.pair == Pair(2, 3, 7)
        assert result.queries <= FULL_SPACE

    def test_true_program_finds_backdoor(self):
        sketch = OnePixelSketch(Program.constant(True))
        result = sketch.attack(backdoor(), gray_image(), true_class=0)
        assert result.success
        assert result.pair == Pair(2, 3, 7)
        assert result.queries <= FULL_SPACE

    def test_no_adversarial_example_exhausts_space(self):
        # trigger value is NOT a corner (and not the gray background),
        # so the corner space has no success
        classifier = backdoor(value=np.array([0.5, 0.3, 0.7]))
        sketch = OnePixelSketch(Program.constant(False))
        result = sketch.attack(classifier, gray_image(), true_class=0)
        assert not result.success
        assert result.queries == FULL_SPACE

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_program_is_complete(self, seed):
        """Any instantiation finds the example iff one exists (Section 3)."""
        grammar = Grammar((6, 6))
        rng = np.random.default_rng(seed)
        program = grammar.random_program(rng)
        result = OnePixelSketch(program).attack(
            backdoor(), gray_image(), true_class=0
        )
        assert result.success
        assert result.pair == Pair(2, 3, 7)
        assert 1 <= result.queries <= FULL_SPACE


class TestQueryAccounting:
    def test_false_program_queries_match_initial_order(self):
        """With all conditions False the sketch checks the initial order."""
        image = gray_image()
        order = initial_order(image)
        target = Pair(2, 3, 7)
        expected = order.index(target) + 1
        result = OnePixelSketch(Program.constant(False)).attack(
            backdoor(), image, true_class=0
        )
        assert result.queries == expected

    def test_each_pair_queried_at_most_once(self):
        classifier = RecordingClassifier(backdoor(value=np.array([0.5, 0.3, 0.7])))
        OnePixelSketch(Program.constant(True)).attack(
            classifier, gray_image(), true_class=0
        )
        # first recorded call is the (uncounted) clean-image scoring
        assert len(classifier.queried) == FULL_SPACE + 1
        assert np.array_equal(classifier.queried[0], gray_image())
        seen = set()
        for image in classifier.queried[1:]:
            delta = np.argwhere(np.abs(image - gray_image()).sum(axis=2) > 0)
            assert len(delta) == 1, "every query differs in exactly one pixel"
            location = tuple(delta[0])
            key = (location, tuple(image[location]))
            assert key not in seen, "pair queried twice"
            seen.add(key)

    def test_clean_scores_not_counted(self):
        classifier = RecordingClassifier(backdoor())
        result = OnePixelSketch(Program.constant(False)).attack(
            classifier, gray_image(), true_class=0
        )
        # one uncounted clean query plus `queries` perturbed ones
        assert len(classifier.queried) == result.queries + 1

    def test_precomputed_clean_scores_skip_the_extra_call(self):
        inner = backdoor()
        classifier = RecordingClassifier(inner)
        clean = inner(gray_image())
        result = OnePixelSketch(Program.constant(False)).attack(
            classifier, gray_image(), true_class=0, clean_scores=clean
        )
        assert len(classifier.queried) == result.queries


class TestBudget:
    def test_budget_exhaustion_returns_failure(self):
        image = gray_image()
        order = initial_order(image)
        needed = order.index(Pair(2, 3, 7)) + 1
        result = OnePixelSketch(Program.constant(False)).attack(
            backdoor(), image, true_class=0, budget=needed - 1
        )
        assert not result.success
        assert result.queries == needed - 1

    def test_budget_exactly_sufficient(self):
        image = gray_image()
        needed = initial_order(image).index(Pair(2, 3, 7)) + 1
        result = OnePixelSketch(Program.constant(False)).attack(
            backdoor(), image, true_class=0, budget=needed
        )
        assert result.success
        assert result.queries == needed

    def test_zero_budget(self):
        result = OnePixelSketch(Program.constant(False)).attack(
            backdoor(), gray_image(), true_class=0, budget=0
        )
        assert not result.success
        assert result.queries == 0


class TestResult:
    def test_adversarial_image_is_one_pixel_off(self):
        result = OnePixelSketch(Program.constant(False)).attack(
            backdoor(), gray_image(), true_class=0
        )
        difference = np.abs(result.adversarial_image - gray_image()).sum(axis=2)
        assert (difference > 0).sum() == 1
        assert np.array_equal(result.adversarial_image[2, 3], np.ones(3))
        assert result.adversarial_class == 1

    def test_result_validation(self):
        with pytest.raises(ValueError):
            SketchResult(success=True, queries=5, pair=None)

    def test_rejects_bad_image_shape(self):
        with pytest.raises(ValueError):
            OnePixelSketch(Program.constant(False)).attack(
                backdoor(), np.zeros((6, 6)), true_class=0
            )


class TestEagerChecking:
    def test_b4_eagerly_checks_same_location(self):
        """B4 = center(l) < big means: after any failure, immediately try
        the remaining corners at that location, nearest first in queue
        order.  The backdoor sits at the *last-ranked* corner for a gray
        image's center pixel... so eager checking still must find it."""
        image = gray_image()
        always_b4 = Program.constant(False).replace(
            3, Condition(Comparison.LT, Center(), Constant(100.0))
        )
        result = OnePixelSketch(always_b4).attack(backdoor(), image, true_class=0)
        assert result.success
        assert result.pair == Pair(2, 3, 7)

    def test_eager_chain_reaches_neighbors(self):
        """B3 always true lets the eager BFS walk from the first failed
        pair through location neighbours.  On a gray 6x6 image the first
        popped pair sits at (2, 2); we plant the backdoor at (1, 3) --
        its 3rd neighbour in expansion order but 7th in the lazy initial
        order (behind the whole center ring) -- so eager checking must
        win."""
        image = gray_image()
        order = initial_order(image)
        first = order[0]
        assert first.location == (2, 2)
        classifier = backdoor(trigger=(1, 3), value=first.perturbation)
        always_b3 = Program.constant(False).replace(
            2, Condition(Comparison.LT, Center(), Constant(100.0))
        )
        eager = OnePixelSketch(always_b3).attack(classifier, image, true_class=0)
        lazy = OnePixelSketch(Program.constant(False)).attack(
            classifier, image, true_class=0
        )
        assert eager.success and lazy.success
        assert eager.queries == 4  # (2,2) fails, then (1,1), (1,2), (1,3)
        assert lazy.queries == 7  # the 0.5-ring then the 1.5-ring row-major
        assert eager.queries < lazy.queries
