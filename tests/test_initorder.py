"""Tests for the initial queue ordering (Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.geometry import center_distance, corner_ranking
from repro.core.initorder import initial_order


def rank_of(pair, image):
    """The descending-distance rank of the pair's corner at its location."""
    ranking = corner_ranking(image[pair.row, pair.col])
    return int(np.where(ranking == pair.corner)[0][0])


class TestInitialOrder:
    def test_complete_and_unique(self):
        image = np.random.default_rng(0).uniform(size=(4, 5, 3))
        order = initial_order(image)
        assert len(order) == 8 * 4 * 5
        assert len(set(order)) == len(order)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            initial_order(np.zeros((4, 4)))

    def test_primary_key_is_corner_rank(self):
        image = np.random.default_rng(1).uniform(size=(3, 3, 3))
        order = initial_order(image)
        ranks = [rank_of(pair, image) for pair in order]
        assert ranks == sorted(ranks)
        # each rank block contains exactly d1*d2 pairs
        for rank in range(8):
            assert ranks.count(rank) == 9

    def test_secondary_key_is_center_distance(self):
        image = np.random.default_rng(2).uniform(size=(5, 5, 3))
        order = initial_order(image)
        shape = (5, 5)
        for block_start in range(0, len(order), 25):
            block = order[block_start : block_start + 25]
            distances = [center_distance(pair.location, shape) for pair in block]
            assert distances == sorted(distances)

    def test_first_pair_is_farthest_corner_at_center(self):
        # on an odd grid the exact center comes first, with its farthest corner
        image = np.zeros((3, 3, 3))  # black image: farthest corner is white (7)
        order = initial_order(image)
        first = order[0]
        assert first.location == (1, 1)
        assert first.corner == 7

    def test_each_location_appears_once_per_block(self):
        image = np.random.default_rng(3).uniform(size=(4, 4, 3))
        order = initial_order(image)
        for block_start in range(0, len(order), 16):
            block = order[block_start : block_start + 16]
            locations = [pair.location for pair in block]
            assert len(set(locations)) == 16

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(
            np.float64,
            (3, 4, 3),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    def test_property_primary_then_secondary(self, image):
        order = initial_order(image)
        keys = [
            (rank_of(pair, image), center_distance(pair.location, (3, 4)))
            for pair in order
        ]
        assert keys == sorted(keys)
