"""Tests for the run-summary metrics, focusing on the penalized average."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import AttackResult
from repro.classifier.toy import SinglePixelBackdoorClassifier
from repro.core.dsl.ast import Program
from repro.core.dsl.grammar import Grammar
from repro.core.sketch import OnePixelSketch
from repro.eval.runner import AttackRunSummary


def ok(queries):
    return AttackResult(
        success=True, queries=queries, location=(0, 0), perturbation=np.ones(3)
    )


def fail(queries):
    return AttackResult(success=False, queries=queries)


class TestPenalizedAverage:
    def test_counts_failures_at_their_cost(self):
        summary = AttackRunSummary("t", [ok(10), fail(100)], budget=100)
        assert summary.penalized_avg_queries == pytest.approx(55.0)
        # the successes-only average hides the failure entirely
        assert summary.avg_queries == pytest.approx(10.0)

    def test_equals_plain_average_when_all_succeed(self):
        summary = AttackRunSummary("t", [ok(10), ok(30)], budget=100)
        assert summary.penalized_avg_queries == summary.avg_queries

    def test_comparable_across_different_success_sets(self):
        """The motivating case: attack A succeeds only on the easy image,
        attack B on both.  Per-success averages rank A first; penalized
        averages rank B first, which is the meaningful ordering."""
        a = AttackRunSummary("a", [ok(5), fail(1000)], budget=1000)
        b = AttackRunSummary("b", [ok(5), ok(400)], budget=1000)
        assert a.avg_queries < b.avg_queries  # misleading
        assert b.penalized_avg_queries < a.penalized_avg_queries  # honest

    def test_empty(self):
        summary = AttackRunSummary("t", [], budget=None)
        assert math.isinf(summary.penalized_avg_queries)

    def test_all_failures(self):
        summary = AttackRunSummary("t", [fail(50), fail(50)], budget=50)
        assert summary.penalized_avg_queries == 50.0
        assert math.isinf(summary.avg_queries)


class TestSummaryToDict:
    def test_json_safe_round_trip(self):
        import json

        summary = AttackRunSummary("t", [ok(10), fail(100)], budget=100)
        payload = summary.to_dict()
        assert payload["attack"] == "t"
        assert payload["successes"] == 1
        assert payload["avg_queries"] == pytest.approx(10.0)
        assert payload["total_queries"] == 110
        assert json.loads(json.dumps(payload)) == payload

    def test_infinite_averages_become_null(self):
        import json

        summary = AttackRunSummary("t", [fail(50)], budget=50)
        payload = summary.to_dict()
        assert payload["avg_queries"] is None
        assert payload["median_queries"] is None
        assert json.dumps(payload)  # inf would break strict JSON consumers

    def test_error_tags_are_counted(self):
        from repro.attacks.base import AttackResult

        degraded = AttackResult(
            success=False, queries=100, error="timeout:TaskTimeout"
        )
        summary = AttackRunSummary("t", [ok(5), degraded, degraded], budget=100)
        assert summary.error_counts() == {"timeout:TaskTimeout": 2}
        assert summary.to_dict()["errors"] == {"timeout:TaskTimeout": 2}

    def test_empty_run(self):
        payload = AttackRunSummary("t", [], budget=None).to_dict()
        assert payload["total_images"] == 0
        assert payload["avg_queries"] is None
        assert payload["errors"] == {}


class TestSummaryTiming:
    def test_timing_keys_round_trip_through_json(self):
        import json

        summary = AttackRunSummary(
            "t",
            [ok(10), fail(100)],
            budget=100,
            image_seconds={0: 0.25, 1: 0.75},
            total_seconds=1.5,
        )
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["attack_seconds"] == pytest.approx(1.0)
        assert payload["total_seconds"] == pytest.approx(1.5)
        assert payload["avg_seconds_per_image"] == pytest.approx(0.5)

    def test_include_timing_false_strips_every_timing_key(self):
        from repro.eval.runner import TIMING_KEYS

        summary = AttackRunSummary(
            "t",
            [ok(10)],
            budget=100,
            image_seconds={0: 0.25},
            total_seconds=0.5,
        )
        deterministic = summary.to_dict(include_timing=False)
        for key in TIMING_KEYS:
            assert key not in deterministic
        full = summary.to_dict()
        assert {
            key: value for key, value in full.items() if key not in TIMING_KEYS
        } == deterministic

    def test_missing_timing_serializes_as_null(self):
        import json

        summary = AttackRunSummary("t", [ok(10)], budget=100)
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["attack_seconds"] is None
        assert payload["total_seconds"] is None
        assert payload["avg_seconds_per_image"] is None

    def test_partial_image_timing_sums_what_exists(self):
        summary = AttackRunSummary(
            "t",
            [ok(10), ok(20)],
            budget=100,
            image_seconds={1: 0.5},  # e.g. index 0 replayed from checkpoint
        )
        assert summary.attack_seconds == pytest.approx(0.5)
        assert summary.avg_seconds_per_image == pytest.approx(0.5)


class TestSketchDeterminismProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_same_program_same_result(self, seed):
        """The sketch is fully deterministic: identical runs agree."""
        grammar = Grammar((5, 5))
        program = grammar.random_program(np.random.default_rng(seed))
        classifier = SinglePixelBackdoorClassifier(
            (5, 5, 3), (1, 2), np.ones(3)
        )
        image = np.full((5, 5, 3), 0.4)
        sketch = OnePixelSketch(program)
        first = sketch.attack(classifier, image, true_class=0)
        second = sketch.attack(classifier, image, true_class=0)
        assert first.queries == second.queries
        assert first.pair == second.pair

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 50))
    def test_budget_prefix_property(self, seed, budget):
        """A budgeted run behaves like a prefix of the unbudgeted run:
        if it succeeds within the budget, the unbudgeted run succeeds
        with the identical query count."""
        grammar = Grammar((5, 5))
        program = grammar.random_program(np.random.default_rng(seed))
        classifier = SinglePixelBackdoorClassifier(
            (5, 5, 3), (1, 2), np.ones(3)
        )
        image = np.full((5, 5, 3), 0.4)
        sketch = OnePixelSketch(program)
        capped = sketch.attack(classifier, image, true_class=0, budget=budget)
        free = sketch.attack(classifier, image, true_class=0)
        if capped.success:
            assert free.queries == capped.queries
            assert free.pair == capped.pair
        else:
            assert free.queries >= capped.queries


class TestTransferOverheadEdge:
    def test_zero_diagonal_gives_inf(self):
        from repro.eval.transfer import TransferMatrix

        matrix = TransferMatrix(
            names=["a"],
            avg_queries={"a": {"a": 0.0}},
            summaries={"a": {"a": None}},
        )
        assert matrix.transfer_overhead("a", "a") == float("inf")
