"""Tests for the program type-checker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl.ast import (
    Center,
    Comparison,
    Condition,
    Constant,
    Max,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.library import (
    eager_locality_program,
    fixed_program,
    paper_example_program,
)
from repro.core.dsl.typecheck import check_condition, check_program

GRAMMAR_32 = Grammar((32, 32))
GRAMMAR_8 = Grammar((8, 8))


class TestCheckProgram:
    def test_paper_example_is_valid_at_32(self):
        result = check_program(paper_example_program(), GRAMMAR_32)
        assert result.ok
        assert not result.errors

    def test_paper_example_fails_at_8(self):
        # center(l) < 8 is out of range on an 8x8 image (max distance 3.5)
        result = check_program(paper_example_program(), GRAMMAR_8)
        assert not result.ok
        assert any("center" in str(d) for d in result.errors)
        assert any(d.slot == "b4" for d in result.errors)

    def test_fixed_program_warns_but_passes(self):
        result = check_program(fixed_program(), GRAMMAR_32)
        assert result.ok
        assert len(result.warnings) == 4

    def test_locality_program_is_valid(self):
        result = check_program(eager_locality_program(), GRAMMAR_32)
        assert result.ok

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_programs_always_check(self, seed):
        grammar = Grammar((12, 20))
        program = grammar.random_program(np.random.default_rng(seed))
        assert check_program(program, grammar).ok


class TestCheckCondition:
    def test_out_of_range_pixel_constant(self):
        condition = Condition(
            Comparison.GT, Max(PixelRef.ORIGINAL), Constant(1.5)
        )
        diagnostics = check_condition(condition, GRAMMAR_32, "b1")
        assert any("outside the typed range" in d.message for d in diagnostics)

    def test_out_of_range_score_diff(self):
        condition = Condition(Comparison.LT, ScoreDiff(), Constant(0.9))
        diagnostics = check_condition(condition, GRAMMAR_32, "b2")
        assert diagnostics and diagnostics[0].severity == "error"

    def test_valid_center_at_boundary(self):
        condition = Condition(Comparison.LT, Center(), Constant(15.5))
        assert not check_condition(condition, GRAMMAR_32, "b4")

    def test_non_condition_rejected(self):
        diagnostics = check_condition("not a condition", GRAMMAR_32, "b3")
        assert diagnostics[0].severity == "error"

    def test_diagnostic_str(self):
        condition = Condition(Comparison.LT, ScoreDiff(), Constant(0.9))
        diagnostic = check_condition(condition, GRAMMAR_32, "b2")[0]
        text = str(diagnostic)
        assert "b2" in text and "error" in text


class TestLibraryPrograms:
    def test_paper_example_matches_paper_text(self):
        program = paper_example_program()
        from repro.core.dsl.printer import format_program

        text = format_program(program)
        assert "score_diff(N(x), N(x[l<-p]), c_x) < 0.21" in text
        assert "max(x[l]) > 0.19" in text
        assert "center(l) < 8" in text

    def test_locality_program_thresholds(self):
        program = eager_locality_program(push_back_below=0.05, eager_above=0.2)
        assert program.b1.constant.value == 0.05
        assert program.b3.constant.value == 0.2
