"""Smoke tests for the runnable examples.

Only the fast, CPU-light examples run here (the CNN-backed ones train
models and belong to manual runs); the goal is to catch API drift that
would break the documented entry points.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, timeout: int = 300) -> str:
    return run_example_with_args(name, [], timeout=timeout)


def run_example_with_args(name: str, args, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)] + list(args),
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_condition_language_tour(self):
        output = run_example("condition_language_tour.py")
        assert "Parsed program" in output
        assert "[B1]" in output
        assert "mutations" in output

    def test_serve_clients(self):
        output = run_example_with_args("serve_clients.py", ["6"])
        assert "6 concurrent clients" in output
        assert "batch-size distribution" in output
        assert "failed" not in output

    def test_run_campaign(self):
        output = run_example("run_campaign.py")
        assert "rerun replayed 4/4 cells" in output
        assert "# campaign toy-2x2" in output
        assert "BENCH trajectory written" in output

    def test_all_examples_exist_and_are_documented(self):
        expected = {
            "quickstart.py",
            "condition_language_tour.py",
            "transfer_programs.py",
            "attack_trained_cnn.py",
            "analyze_attacks.py",
            "detect_and_heal.py",
            "serve_clients.py",
            "run_campaign.py",
        }
        present = {
            name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
        }
        assert expected <= present
        for name in sorted(expected):
            with open(os.path.join(EXAMPLES_DIR, name)) as handle:
                source = handle.read()
            assert '"""' in source.split("\n", 2)[2 if source.startswith("#!") else 0], (
                f"{name} lacks a module docstring"
            )
            assert "def main()" in source, f"{name} lacks a main()"
