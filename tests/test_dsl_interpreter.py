"""Tests for condition evaluation semantics."""

import numpy as np
import pytest

from repro.core.context import EvalContext
from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    Constant,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    ScoreDiff,
)
from repro.core.dsl.interpreter import evaluate_condition, evaluate_function
from repro.core.pairs import Pair


@pytest.fixture
def context():
    image = np.zeros((5, 5, 3))
    image[2, 3] = [0.2, 0.6, 0.4]
    return EvalContext(
        image=image,
        pair=Pair(2, 3, 7),  # writes white
        # 0.75 and 0.5 are exact in binary, so score_diff is exactly 0.25
        clean_scores=np.array([0.75, 0.15, 0.1]),
        perturbed_scores=np.array([0.5, 0.3, 0.2]),
        true_class=0,
    )


class TestFunctions:
    def test_pixel_functions_on_original(self, context):
        assert evaluate_function(Max(PixelRef.ORIGINAL), context) == pytest.approx(0.6)
        assert evaluate_function(Min(PixelRef.ORIGINAL), context) == pytest.approx(0.2)
        assert evaluate_function(Avg(PixelRef.ORIGINAL), context) == pytest.approx(0.4)

    def test_pixel_functions_on_perturbation(self, context):
        # corner 7 is white
        assert evaluate_function(Max(PixelRef.PERTURBATION), context) == 1.0
        assert evaluate_function(Min(PixelRef.PERTURBATION), context) == 1.0
        assert evaluate_function(Avg(PixelRef.PERTURBATION), context) == 1.0

    def test_score_diff(self, context):
        assert evaluate_function(ScoreDiff(), context) == pytest.approx(0.25)

    def test_center(self, context):
        # center of a 5x5 grid is (2, 2); location (2, 3) is Linf distance 1
        assert evaluate_function(Center(), context) == pytest.approx(1.0)


class TestConditions:
    def test_gt_and_lt(self, context):
        assert evaluate_condition(
            Condition(Comparison.GT, ScoreDiff(), Constant(0.2)), context
        )
        assert not evaluate_condition(
            Condition(Comparison.GT, ScoreDiff(), Constant(0.3)), context
        )
        assert evaluate_condition(
            Condition(Comparison.LT, Center(), Constant(1.5)), context
        )
        assert not evaluate_condition(
            Condition(Comparison.LT, Center(), Constant(0.5)), context
        )

    def test_strict_inequalities(self, context):
        # score_diff is exactly 0.25: both strict comparisons are false
        exact = Constant(0.25)
        assert not evaluate_condition(
            Condition(Comparison.GT, ScoreDiff(), exact), context
        )
        assert not evaluate_condition(
            Condition(Comparison.LT, ScoreDiff(), exact), context
        )

    def test_literals(self, context):
        assert evaluate_condition(ConstantCondition(True), context)
        assert not evaluate_condition(ConstantCondition(False), context)

    def test_paper_example_conditions(self, context):
        # the worked example of Section 3.2 on this context
        b1 = Condition(Comparison.LT, ScoreDiff(), Constant(0.21))
        b2 = Condition(Comparison.GT, Max(PixelRef.ORIGINAL), Constant(0.19))
        b3 = Condition(Comparison.GT, ScoreDiff(), Constant(0.25))
        b4 = Condition(Comparison.LT, Center(), Constant(8.0))
        assert not evaluate_condition(b1, context)  # 0.25 < 0.21 is false
        assert evaluate_condition(b2, context)  # 0.6 > 0.19
        assert not evaluate_condition(b3, context)  # 0.25 > 0.25 is false
        assert evaluate_condition(b4, context)  # 1 < 8


class TestContext:
    def test_original_pixel_and_perturbation(self, context):
        assert np.allclose(context.original_pixel, [0.2, 0.6, 0.4])
        assert np.allclose(context.perturbation, [1.0, 1.0, 1.0])

    def test_image_shape(self, context):
        assert context.image_shape == (5, 5)

    def test_score_diff_sign(self):
        # perturbation that *increases* confidence gives a negative diff
        image = np.zeros((3, 3, 3))
        context = EvalContext(
            image=image,
            pair=Pair(0, 0, 0),
            clean_scores=np.array([0.5, 0.5]),
            perturbed_scores=np.array([0.8, 0.2]),
            true_class=0,
        )
        assert context.score_diff() == pytest.approx(-0.3)
