"""Session lifecycle: cancellation, deadlines, TTL reaping, shedding.

The core fidelity claim (DESIGN §16): a session cancelled or expired
after ``k`` charged queries reports exactly ``k`` and carries a result
bit-identical to a budget-``k`` scalar run.  The exhaustive differential
sweep lives in :mod:`repro.testkit.lifecycle` (and its pytest wrapper in
``tests/testkit/test_lifecycle.py``); here we pin the mechanism piece by
piece plus the HTTP surface (DELETE, 410 Gone, Retry-After).
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import SmoothLinearClassifier
from repro.core.stepping import QueryBatch
from repro.runtime.events import RunLog
from repro.serve.admission import OverloadPolicy
from repro.serve.broker import MicroBatchBroker
from repro.serve.protocol import ProtocolError, decode_attack_request
from repro.serve.server import AttackServer, ServeConfig, ServerHandle
from repro.serve.sessions import (
    CANCELLED,
    DEFAULT_TOMBSTONES,
    DONE,
    EXPIRED,
    AttackSession,
    SessionManager,
)
from repro.testkit.differential import result_fingerprint
from repro.testkit.kill import HARD_IMAGE_SEEDS


@pytest.fixture
def hard_classifier():
    """The seed-1 toy model the HARD_IMAGE_SEEDS cases never crack."""
    return SmoothLinearClassifier(image_shape=(6, 6, 3), num_classes=3, seed=1)


def _hard_job(classifier, image_seed=HARD_IMAGE_SEEDS[0]):
    image = np.random.default_rng(image_seed).random((6, 6, 3))
    return image, int(np.argmax(classifier(image)))


def _drive_scalar(session, classifier):
    request = session.start()
    while request is not None:
        request = session.advance(classifier(request.image))
    return session


def _golden_budget_run(classifier, image, label, budget):
    session = AttackSession(
        "golden", FixedSketchAttack(), image, label, budget=budget, batch_size=0
    )
    return _drive_scalar(session, classifier)


class TestParkFidelity:
    """park() == budget-k, the invariant everything else builds on."""

    def test_cancel_parks_with_exact_budget_k_result(self, hard_classifier):
        image, label = _hard_job(hard_classifier)
        session = AttackSession(
            "s1", FixedSketchAttack(), image, label, budget=100000, batch_size=0
        )
        request = session.start()
        while request is not None and session.queries < 11:
            request = session.advance(hard_classifier(request.image))
        session.request_cancel()
        assert session.lifecycle_verdict() == CANCELLED
        session.park(CANCELLED)
        k = session.queries
        assert session.state == CANCELLED
        assert session.result is not None and session.result.queries == k
        golden = _golden_budget_run(hard_classifier, image, label, k)
        assert result_fingerprint(session.result) == result_fingerprint(
            golden.result
        )
        assert golden.queries == k

    def test_expiry_between_batch_charges_defers_to_boundary(
        self, hard_classifier
    ):
        """A deadline landing mid-batch parks at the *boundary*, exactly.

        The observer fires per charged member; blowing the deadline
        after the first charge of a speculative QueryBatch must not
        truncate the batch -- every member the attack consumes is still
        charged, and the park happens at the next query boundary with
        the full count (which the budget-k differential then matches).
        """
        image, label = _hard_job(hard_classifier)
        state = {"armed": False}

        session = AttackSession(
            "s1", FixedSketchAttack(), image, label, budget=100000, batch_size=8
        )

        def blow_deadline_once(query, scores):
            if not state["armed"] and session.queries >= 3:
                session.deadline_at = time.monotonic() - 1.0
                state["armed"] = True

        session.observer = blow_deadline_once
        saw_batch = False
        request = session.start()
        while request is not None:
            verdict = session.lifecycle_verdict()
            if verdict is not None:
                session.park(verdict)
                break
            if isinstance(request, QueryBatch):
                saw_batch = True
                scores = [hard_classifier(im) for im in request.images()]
            else:
                scores = hard_classifier(request.image)
            request = session.advance(scores)
        assert saw_batch, "test needs batched stepping to mean anything"
        assert state["armed"]
        assert session.state == EXPIRED
        k = session.queries
        assert k >= 3
        assert session.result is not None and session.result.queries == k
        golden = _golden_budget_run(hard_classifier, image, label, k)
        assert result_fingerprint(session.result) == result_fingerprint(
            golden.result
        )

    def test_park_before_start_yields_zero_queries(self, hard_classifier):
        image, label = _hard_job(hard_classifier)
        session = AttackSession("s1", FixedSketchAttack(), image, label)
        assert session.request_cancel()
        session.park(CANCELLED)
        assert session.state == CANCELLED
        assert session.queries == 0

    def test_park_is_noop_on_terminal_sessions(self, hard_classifier):
        image, label = _hard_job(hard_classifier)
        session = AttackSession(
            "s1", FixedSketchAttack(), image, label, budget=5, batch_size=0
        )
        _drive_scalar(session, hard_classifier)
        assert session.state == DONE
        done_result = session.result
        session.park(CANCELLED)
        assert session.state == DONE
        assert session.result is done_result
        assert not session.request_cancel()


class TestVerdicts:
    def test_cancel_wins_over_expiry(self, hard_classifier):
        image, label = _hard_job(hard_classifier)
        session = AttackSession(
            "s1", FixedSketchAttack(), image, label, deadline_seconds=0.5
        )
        session.start()
        session.request_cancel()
        assert session.lifecycle_verdict(now=session.deadline_at + 9) == CANCELLED

    def test_deadline_armed_at_start_not_creation(self, hard_classifier):
        image, label = _hard_job(hard_classifier)
        session = AttackSession(
            "s1", FixedSketchAttack(), image, label, deadline_seconds=30.0
        )
        assert session.deadline_at is None  # queue wait is free
        session.start()
        assert session.deadline_at is not None
        assert session.lifecycle_verdict(now=session.deadline_at - 1) is None
        assert session.lifecycle_verdict(now=session.deadline_at + 1) == EXPIRED

    def test_to_dict_exposes_deadline_and_cancel_flag(self, hard_classifier):
        image, label = _hard_job(hard_classifier)
        session = AttackSession(
            "s1", FixedSketchAttack(), image, label, deadline_seconds=9.0
        )
        session.request_cancel()
        payload = session.to_dict()
        assert payload["deadline_seconds"] == 9.0
        assert payload["cancel_requested"] is True
        json.dumps(payload)  # must stay JSON-safe


class TestManagerLifecycle:
    def test_drive_parks_cancelled_and_emits_event(self, hard_classifier):
        log = RunLog()
        broker = MicroBatchBroker(hard_classifier)
        manager = SessionManager(broker, max_workers=2, run_log=log)
        broker.start()
        try:
            image, label = _hard_job(hard_classifier)
            session = manager.create(
                FixedSketchAttack(), image, label, budget=100000
            )
            future = manager.start(session)
            deadline = time.monotonic() + 30
            while session.queries < 5 and time.monotonic() < deadline:
                time.sleep(0.002)
            session.request_cancel()
            future.result(timeout=30)
        finally:
            manager.shutdown()
            broker.stop()
        assert session.state == CANCELLED
        assert session.result is not None
        assert session.result.queries == session.queries
        events = [e for e in log.events if e["event"] == "session_cancelled"]
        assert len(events) == 1
        # mirrors the attack_summary shape: identity + final counts
        assert events[0]["queries"] == session.queries
        assert events[0]["budget"] == 100000
        assert events[0]["success"] is False
        assert manager.lifecycle_stats()["cancelled"] == 1

    def test_expired_session_emits_session_expired(self, hard_classifier):
        log = RunLog()
        broker = MicroBatchBroker(hard_classifier)
        manager = SessionManager(broker, max_workers=1, run_log=log)
        image, label = _hard_job(hard_classifier)
        session = manager.create(
            FixedSketchAttack(), image, label, budget=100000,
            deadline_seconds=30.0,
        )
        session.start()
        session.deadline_at = time.monotonic() - 1.0
        verdict = session.lifecycle_verdict()
        assert verdict == EXPIRED
        session.park(verdict)
        manager._retire(session)
        events = [e for e in log.events if e["event"] == "session_expired"]
        assert len(events) == 1
        assert events[0]["deadline_seconds"] == 30.0
        assert events[0]["queries"] == session.queries
        assert manager.lifecycle_stats()["expired"] == 1

    def test_cooperative_run_parks_verdict_sessions(self, hard_classifier):
        broker = MicroBatchBroker(hard_classifier)
        manager = SessionManager(broker, max_workers=1)
        image, label = _hard_job(hard_classifier)
        doomed = manager.create(FixedSketchAttack(), image, label, budget=100000)
        doomed.request_cancel()
        healthy = manager.create(FixedSketchAttack(), image, label, budget=100000)
        manager.run_cooperative([doomed, healthy])
        assert doomed.state == CANCELLED and doomed.queries == 0
        assert healthy.state == DONE
        assert healthy.queries == healthy.result.queries


class TestReaper:
    def _finished_manager(self, classifier, session_ttl=10.0, idle_ttl=None):
        broker = MicroBatchBroker(classifier)
        manager = SessionManager(
            broker, max_workers=1, session_ttl=session_ttl, idle_ttl=idle_ttl
        )
        image, label = _hard_job(classifier)
        session = manager.create(
            FixedSketchAttack(), image, label, budget=4, batch_size=0
        )
        _drive_scalar(session, classifier)
        manager._retire(session)
        return manager, session

    def test_reap_removes_stale_terminal_sessions(self, hard_classifier):
        manager, session = self._finished_manager(hard_classifier)
        # fresh: inside TTL, untouched
        assert manager.reap(now=time.time()) == {"reaped": 0, "abandoned": 0}
        assert manager.get(session.session_id) is session
        # stale: swept into a tombstone
        swept = manager.reap(now=time.time() + 100.0)
        assert swept == {"reaped": 1, "abandoned": 0}
        assert manager.get(session.session_id) is None
        assert manager.was_reaped(session.session_id)
        assert manager.lifecycle_stats()["reaped"] == 1

    def test_poll_defers_the_reaper(self, hard_classifier):
        manager, session = self._finished_manager(hard_classifier)
        session.touch()
        baseline = session.last_polled_at
        assert manager.reap(now=baseline + 5.0) == {"reaped": 0, "abandoned": 0}
        assert manager.get(session.session_id) is session

    def test_idle_ttl_flags_abandoned_live_sessions(self, hard_classifier):
        broker = MicroBatchBroker(hard_classifier)
        manager = SessionManager(broker, max_workers=1, idle_ttl=10.0)
        image, label = _hard_job(hard_classifier)
        session = manager.create(FixedSketchAttack(), image, label, budget=100000)
        swept = manager.reap(now=time.time() + 100.0)
        assert swept == {"reaped": 0, "abandoned": 1}
        assert session.cancel_requested
        # the driver then parks it at its (first) boundary
        manager.drive(session)
        assert session.state == CANCELLED

    def test_tombstone_set_is_bounded(self, hard_classifier):
        manager, _ = self._finished_manager(hard_classifier)
        with manager._lock:
            manager._reaped_ids.extend(
                f"ghost-{i}" for i in range(DEFAULT_TOMBSTONES + 50)
            )
        manager.reap(now=time.time())
        with manager._lock:
            assert len(manager._reaped_ids) == DEFAULT_TOMBSTONES
        assert not manager.was_reaped("ghost-0")  # oldest aged out first

    def test_ttl_validation(self, hard_classifier):
        broker = MicroBatchBroker(hard_classifier)
        with pytest.raises(ValueError):
            SessionManager(broker, session_ttl=0)
        with pytest.raises(ValueError):
            SessionManager(broker, idle_ttl=-1)
        manager = SessionManager(broker)
        with pytest.raises(ValueError):
            manager.start_reaper(interval=0)


class TestOverloadPolicy:
    def test_disabled_policy_never_sheds(self):
        policy = OverloadPolicy()
        assert policy.should_shed(10**6, 10**6) is None
        assert policy.stats()["shed"] == 0

    def test_queue_depth_watermark(self):
        policy = OverloadPolicy(max_queue_depth=8, retry_after=2.5)
        assert policy.should_shed(7, 0) is None
        reason = policy.should_shed(8, 0)
        assert reason is not None and "queue depth" in reason
        assert policy.stats() == {
            "max_queue_depth": 8,
            "max_active": None,
            "retry_after": 2.5,
            "shed": 1,
        }

    def test_active_sessions_watermark(self):
        policy = OverloadPolicy(max_active=3)
        assert policy.should_shed(0, 2) is None
        assert policy.should_shed(0, 3) is not None
        assert policy.shed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            OverloadPolicy(max_active=0)
        with pytest.raises(ValueError):
            OverloadPolicy(retry_after=0)


class TestProtocolDeadline:
    def _payload(self, **extra):
        image = np.random.default_rng(0).random((4, 4, 3))
        return {
            "attack": "fixed",
            "image": image.tolist(),
            "true_class": 0,
            **extra,
        }

    def test_deadline_decoded(self):
        request = decode_attack_request(self._payload(deadline_seconds=2.5))
        assert request.deadline_seconds == 2.5

    def test_deadline_optional(self):
        request = decode_attack_request(self._payload())
        assert request.deadline_seconds is None

    @pytest.mark.parametrize(
        "bad", [0, -1, True, "soon", float("nan"), float("inf"), [1]]
    )
    def test_bad_deadlines_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode_attack_request(self._payload(deadline_seconds=bad))


class TestServerLifecycle:
    """handle_* level checks; no sockets needed."""

    def _server(self, **overrides):
        settings = dict(
            port=0, height=6, width=6, num_classes=3, seed=1,
            rate=10000.0, burst=1000.0,
        )
        settings.update(overrides)
        server = AttackServer(ServeConfig(**settings))
        server.broker.start()
        return server

    def _submit_body(self, server, image_seed=HARD_IMAGE_SEEDS[0], **extra):
        image = np.random.default_rng(image_seed).random((6, 6, 3))
        return json.dumps(
            {
                "attack": "fixed",
                "image": image.tolist(),
                "true_class": int(np.argmax(server.classifier(image))),
                "budget": 100000,
                **extra,
            }
        ).encode()

    def test_delete_cancels_then_is_idempotent(self):
        server = self._server(latency=0.002)
        try:
            status, accepted = server.handle_submit(
                self._submit_body(server), client="t"
            )
            assert status == 202
            session = server.sessions.get(accepted["id"])
            deadline = time.monotonic() + 30
            while session.queries < 3 and time.monotonic() < deadline:
                time.sleep(0.002)
            status, payload = server.handle_cancel(accepted["id"])
            assert status == 202 and payload["cancel_requested"] is True
            deadline = time.monotonic() + 30
            while session.state not in (CANCELLED,) and time.monotonic() < deadline:
                time.sleep(0.002)
            assert session.state == CANCELLED
            # terminal now: DELETE converges to 200 with the final status
            status, payload = server.handle_cancel(accepted["id"])
            assert status == 200 and payload["state"] == CANCELLED
            assert payload["result"]["queries"] == payload["queries"]
            assert server.handle_cancel("s404")[0] == 404
        finally:
            server.stop()

    def test_deadline_over_max_is_400_and_default_applies(self):
        server = self._server(default_deadline=15.0, max_deadline=20.0)
        try:
            status, payload = server.handle_submit(
                self._submit_body(server, deadline_seconds=21.0), client="t"
            )
            assert status == 400 and "maximum" in payload["error"]
            # the rejected request must not leak its admission slot
            assert server.admission.active == 0
            status, accepted = server.handle_submit(
                self._submit_body(server), client="t"
            )
            assert status == 202
            session = server.sessions.get(accepted["id"])
            assert session.deadline_seconds == 15.0
        finally:
            server.stop()

    def test_duplicate_session_id_releases_admission_slot(self):
        server = self._server()
        try:
            status, _ = server.handle_submit(
                self._submit_body(server, budget=4), client="t", session_id="dup"
            )
            assert status == 202
            status, payload = server.handle_submit(
                self._submit_body(server, budget=4), client="t", session_id="dup"
            )
            assert status == 409
            deadline = time.monotonic() + 30
            while server.admission.active and time.monotonic() < deadline:
                time.sleep(0.002)
            # one slot from the 202 (released when its driver finished),
            # zero leaked by the 409
            assert server.admission.active == 0
        finally:
            server.stop()

    def test_overload_shed_is_503_with_retry_after(self):
        server = self._server(
            latency=0.005, shed_sessions=1, shed_retry_after=3.0
        )
        try:
            status, accepted = server.handle_submit(
                self._submit_body(server), client="t"
            )
            assert status == 202
            status, payload = server.handle_submit(
                self._submit_body(server, image_seed=HARD_IMAGE_SEEDS[1]),
                client="t",
            )
            assert status == 503
            assert payload["retry_after"] == 3.0
            assert "overloaded" in payload["error"]
            metrics = server.handle_metrics()[1]
            assert metrics["lifecycle"]["shed"] == 1
            assert metrics["overload"]["max_active"] == 1
            server.handle_cancel(accepted["id"])
        finally:
            server.stop()

    def test_reaped_session_polls_410(self):
        server = self._server(session_ttl=5.0)
        try:
            status, accepted = server.handle_submit(
                self._submit_body(server, budget=4), client="t"
            )
            assert status == 202
            session = server.sessions.get(accepted["id"])
            deadline = time.monotonic() + 30
            while session.state != DONE and time.monotonic() < deadline:
                time.sleep(0.002)
            server.sessions.reap(now=time.time() + 100.0)
            status, payload = server.handle_get_session(accepted["id"])
            assert status == 410 and "reaped" in payload["error"]
            status, payload = server.handle_cancel(accepted["id"])
            assert status == 410
            assert server.handle_metrics()[1]["lifecycle"]["reaped"] == 1
        finally:
            server.stop()


@pytest.mark.slow
class TestLifecycleOverHTTP:
    """The real socket path: DELETE verb routing and Retry-After headers."""

    def test_delete_and_retry_after_header(self):
        config = ServeConfig(
            port=0, height=6, width=6, num_classes=3, seed=1,
            latency=0.002, rate=10000.0, burst=1000.0,
            shed_sessions=1, shed_retry_after=2.0,
        )
        with ServerHandle(config) as handle:
            host, port = handle.address
            base = f"http://{host}:{port}"
            image = np.random.default_rng(HARD_IMAGE_SEEDS[0]).random((6, 6, 3))
            body = json.dumps(
                {
                    "attack": "fixed",
                    "image": image.tolist(),
                    "true_class": int(
                        np.argmax(handle.server.classifier(image))
                    ),
                    "budget": 100000,
                }
            ).encode()
            request = urllib.request.Request(
                base + "/attacks", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                accepted = json.load(response)
            # a second submission crosses the active-session watermark
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    urllib.request.Request(
                        base + "/attacks", data=body,
                        headers={"Content-Type": "application/json"},
                    ),
                    timeout=10,
                )
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "2.0"
            excinfo.value.close()
            delete = urllib.request.Request(
                f"{base}/attacks/{accepted['id']}", method="DELETE"
            )
            with urllib.request.urlopen(delete, timeout=10) as response:
                assert response.status in (200, 202)
            deadline = time.monotonic() + 30
            final = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{base}/attacks/{accepted['id']}", timeout=10
                ) as response:
                    final = json.load(response)
                if final["state"] == "cancelled":
                    break
                time.sleep(0.02)
            assert final is not None and final["state"] == "cancelled"
            assert final["result"]["queries"] == final["queries"]
