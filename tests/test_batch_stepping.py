"""Tests for batch-native attack stepping (DESIGN §14).

Batched stepping is a pure execution optimization: an attack may pose a
speculative :class:`~repro.core.stepping.QueryBatch` answered by one
vectorized forward pass, but answers are consumed in scalar order and
every consumption is charged against the budget exactly as a scalar
submit would be.  Everything observable -- the result, the query count,
the consumption-order trace, the budget-exhaustion point -- must be
bit-identical to the scalar protocol.  The exhaustive grid lives in
``tests/testkit/test_batch_equivalence.py``; this file covers the
protocol primitives and each generator's truncation behaviour directly.
"""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.dsl.parser import parse_program
from repro.core.stepping import (
    Query,
    QueryBatch,
    StepCounter,
    drive_steps,
    resolve_batch_window,
    scalar_steps_forced,
    set_scalar_steps,
)
from repro.serve.broker import BrokerStopped, MicroBatchBroker
from repro.serve.sessions import SessionManager
from repro.testkit.differential import result_fingerprint
from repro.testkit.trace import TraceRecorder

REORDERING_PROGRAM = parse_program(
    """
    [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.05
    [B2] max(x[l]) > 0.5
    [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.1
    [B4] center(l) < 2
    """
)


def _attacks():
    return [
        SketchAttack(REORDERING_PROGRAM),
        FixedSketchAttack(),
        UniformRandomAttack(UniformRandomConfig(seed=3)),
        SuOPA(SuOPAConfig(population_size=6, max_generations=3, seed=3)),
    ]


@pytest.fixture
def image(toy_shape):
    return np.linspace(0, 1, int(np.prod(toy_shape))).reshape(toy_shape)


def _run(attack, classifier, image, true_class, budget, batch_size):
    recorder = TraceRecorder(clean_image=image)
    result = drive_steps(
        attack.steps(image, true_class, budget=budget, batch_size=batch_size),
        classifier,
        observer=recorder,
    )
    return result, recorder.events


class TestProtocolPrimitives:
    def test_resolve_batch_window(self):
        assert resolve_batch_window(None) == 0
        assert resolve_batch_window(0) == 0
        assert resolve_batch_window(7) == 7
        with pytest.raises(ValueError):
            resolve_batch_window(-1)

    def test_scalar_override_forces_zero_window(self):
        previous = set_scalar_steps(True)
        try:
            assert scalar_steps_forced()
            assert resolve_batch_window(8) == 0
        finally:
            set_scalar_steps(previous)
        assert not scalar_steps_forced()

    def test_scalar_override_returns_previous(self):
        assert set_scalar_steps(True) is False
        try:
            assert set_scalar_steps(True) is True
        finally:
            set_scalar_steps(False)

    def test_query_batch_note_drives_observer(self):
        queries = tuple(Query(np.full((2, 2, 3), v)) for v in (0.1, 0.2))
        batch = QueryBatch(queries)
        assert len(batch) == 2
        seen = []
        batch.observer = lambda query, scores: seen.append(
            (query, float(scores[0]))
        )
        batch.note(queries[0], np.array([1.0]))
        batch.note(queries[1], np.array([2.0]))
        assert batch.consumed == 2
        assert seen == [(queries[0], 1.0), (queries[1], 2.0)]

    def test_charge_counts_like_submit(self):
        counter = StepCounter(budget=2)
        counter.charge()
        counter.charge()
        assert counter.count == 2
        assert counter.allowance == 0
        with pytest.raises(QueryBudgetExceeded) as info:
            counter.charge()
        assert info.value.budget == 2
        assert counter.count == 2  # refused charge not counted

    def test_allowance(self):
        assert StepCounter(budget=None).allowance is None
        counter = StepCounter(budget=3)
        assert counter.allowance == 3
        counter.submit(np.zeros((2, 2, 3)))
        assert counter.allowance == 2


class TestBatchedEquivalence:
    """Batched stepping == scalar stepping, bit for bit."""

    @pytest.mark.parametrize("attack", _attacks(), ids=lambda a: a.name)
    @pytest.mark.parametrize("window", [1, 3, 8])
    def test_same_result_and_trace(
        self, attack, window, linear_classifier, image
    ):
        true_class = int(np.argmax(linear_classifier(image)))
        scalar, scalar_trace = _run(
            attack, linear_classifier, image, true_class, 300, 0
        )
        batched, batched_trace = _run(
            attack, linear_classifier, image, true_class, 300, window
        )
        assert result_fingerprint(batched) == result_fingerprint(scalar)
        assert [e.to_dict() for e in batched_trace] == [
            e.to_dict() for e in scalar_trace
        ]

    @pytest.mark.parametrize("attack", _attacks(), ids=lambda a: a.name)
    @pytest.mark.parametrize("budget", [0, 1, 2, 5, 7, 16])
    def test_budget_truncation_matches_scalar(
        self, attack, budget, linear_classifier, image
    ):
        """A batch must stop charging at the exact query where the
        scalar path raises, never counting speculative tails."""
        true_class = int(np.argmax(linear_classifier(image)))
        scalar, scalar_trace = _run(
            attack, linear_classifier, image, true_class, budget, 0
        )
        batched, batched_trace = _run(
            attack, linear_classifier, image, true_class, budget, 5
        )
        assert result_fingerprint(batched) == result_fingerprint(scalar)
        assert batched.queries <= budget
        assert [e.to_dict() for e in batched_trace] == [
            e.to_dict() for e in scalar_trace
        ]

    def test_attack_entrypoint_honours_batch_size_attr(
        self, linear_classifier, image
    ):
        """Setting ``attack.batch_size`` (what the engine's
        ``step_batch`` plumbing does) batches the plain attack() call
        without changing its result."""
        true_class = int(np.argmax(linear_classifier(image)))
        scalar = FixedSketchAttack().attack(
            linear_classifier, image, true_class, budget=100
        )
        batched_attack = FixedSketchAttack()
        batched_attack.batch_size = 6
        batched = batched_attack.attack(
            linear_classifier, image, true_class, budget=100
        )
        assert result_fingerprint(batched) == result_fingerprint(scalar)

    def test_scalar_override_suppresses_batches(self, linear_classifier, image):
        true_class = int(np.argmax(linear_classifier(image)))
        previous = set_scalar_steps(True)
        try:
            steps = FixedSketchAttack().steps(
                image, true_class, budget=50, batch_size=8
            )
            request = next(steps)
            try:
                while True:
                    assert isinstance(request, Query)  # never a QueryBatch
                    request = steps.send(linear_classifier(request.image))
            except StopIteration:
                pass
        finally:
            set_scalar_steps(previous)


class TestSketchSpeculation:
    def test_no_pair_posed_twice(self, linear_classifier, image):
        """Speculative prefetching must never re-pose a pair: every
        counted image in the posed stream is unique."""
        attack = SketchAttack(REORDERING_PROGRAM)
        true_class = int(np.argmax(linear_classifier(image)))
        steps = attack.steps(image, true_class, budget=200, batch_size=4)
        posed = []
        try:
            request = next(steps)
            while True:
                if isinstance(request, QueryBatch):
                    posed.extend(
                        q.image.tobytes() for q in request.queries if q.counted
                    )
                    answers = np.stack(
                        [linear_classifier(q.image) for q in request.queries]
                    )
                    request = steps.send(answers)
                else:
                    if request.counted:
                        posed.append(request.image.tobytes())
                    request = steps.send(linear_classifier(request.image))
        except StopIteration:
            pass
        assert len(posed) == len(set(posed))

    def test_batches_actually_form(self, linear_classifier, image):
        attack = SketchAttack(REORDERING_PROGRAM)
        true_class = int(np.argmax(linear_classifier(image)))
        steps = attack.steps(image, true_class, budget=200, batch_size=4)
        multi = 0
        try:
            request = next(steps)
            while True:
                if isinstance(request, QueryBatch):
                    if len(request) > 1:
                        multi += 1
                    answers = np.stack(
                        [linear_classifier(q.image) for q in request.queries]
                    )
                    request = steps.send(answers)
                else:
                    request = steps.send(linear_classifier(request.image))
        except StopIteration:
            pass
        assert multi > 0  # the window is not silently degenerating to 1


class TestSessionAccounting:
    """Batched sessions count queries at consumption time and still
    satisfy ``session.queries == result.queries``."""

    @pytest.mark.parametrize("driver", ["cooperative", "threaded"])
    def test_batched_session_matches_scalar(
        self, driver, linear_classifier, image
    ):
        true_class = int(np.argmax(linear_classifier(image)))
        attack = UniformRandomAttack(UniformRandomConfig(seed=5))
        scalar, _ = _run(attack, linear_classifier, image, true_class, 60, 0)

        broker = MicroBatchBroker(linear_classifier)
        manager = SessionManager(broker, max_workers=1)
        try:
            session = manager.create(
                UniformRandomAttack(UniformRandomConfig(seed=5)),
                image,
                true_class,
                budget=60,
                batch_size=7,
            )
            if driver == "cooperative":
                manager.run_cooperative([session])
            else:
                broker.start()
                manager.drive(session)
        finally:
            manager.shutdown()
            broker.stop()
        assert session.result is not None
        assert result_fingerprint(session.result) == result_fingerprint(scalar)
        assert session.queries == session.result.queries


class TestSubmitMany:
    def test_dedups_and_counts_each_member(self, linear_classifier, toy_shape):
        calls = []

        def spy(image):
            calls.append(1)
            return linear_classifier(image)

        broker = MicroBatchBroker(spy).start()
        try:
            image = np.linspace(0, 1, int(np.prod(toy_shape))).reshape(toy_shape)
            rows = broker.submit_many([image, image, image])
            assert len(rows) == 3
            assert len(calls) == 1  # three logical queries, one forward
            stats = broker.stats()
            assert stats["submitted"] == 3
            assert stats["coalesced_duplicates"] == 2
        finally:
            broker.stop()

    def test_requires_running(self, linear_classifier, toy_shape):
        broker = MicroBatchBroker(linear_classifier)
        image = np.zeros(toy_shape)
        with pytest.raises(BrokerStopped):
            broker.submit_many([image])

    def test_empty_batch(self, linear_classifier):
        assert MicroBatchBroker(linear_classifier).submit_many([]) == []
