"""Tests for location-perturbation pairs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import RGB_CORNERS, location_distance
from repro.core.pairs import Pair, all_pairs, location_neighbors


class TestPair:
    def test_perturbation_matches_corner(self):
        pair = Pair(1, 2, 5)
        assert np.array_equal(pair.perturbation, RGB_CORNERS[5])

    def test_location_property(self):
        assert Pair(3, 4, 0).location == (3, 4)

    def test_rejects_bad_corner(self):
        with pytest.raises(ValueError):
            Pair(0, 0, 8)
        with pytest.raises(ValueError):
            Pair(0, 0, -1)

    def test_rejects_negative_location(self):
        with pytest.raises(ValueError):
            Pair(-1, 0, 0)

    def test_hashable_and_equal(self):
        assert Pair(1, 2, 3) == Pair(1, 2, 3)
        assert len({Pair(1, 2, 3), Pair(1, 2, 3), Pair(1, 2, 4)}) == 2

    def test_apply_writes_one_pixel(self):
        image = np.full((4, 4, 3), 0.5)
        pair = Pair(2, 1, 7)
        perturbed = pair.apply(image)
        assert np.array_equal(perturbed[2, 1], np.ones(3))
        # everything else untouched, original unmodified
        mask = np.ones((4, 4), dtype=bool)
        mask[2, 1] = False
        assert np.array_equal(perturbed[mask], image[mask])
        assert np.array_equal(image[2, 1], np.full(3, 0.5))

    def test_apply_out_of_bounds(self):
        image = np.zeros((3, 3, 3))
        with pytest.raises(ValueError):
            Pair(3, 0, 0).apply(image)


class TestAllPairs:
    def test_count(self):
        pairs = list(all_pairs((3, 5)))
        assert len(pairs) == 8 * 3 * 5
        assert len(set(pairs)) == len(pairs)

    def test_covers_every_location_and_corner(self):
        pairs = set(all_pairs((2, 2)))
        for row in range(2):
            for col in range(2):
                for corner in range(8):
                    assert Pair(row, col, corner) in pairs


class TestLocationNeighbors:
    def test_interior_has_eight(self):
        neighbors = location_neighbors(Pair(2, 2, 3), (5, 5))
        assert len(neighbors) == 8
        for neighbor in neighbors:
            assert location_distance(neighbor.location, (2, 2)) == 1
            assert neighbor.corner == 3

    def test_corner_has_three(self):
        neighbors = location_neighbors(Pair(0, 0, 1), (5, 5))
        assert len(neighbors) == 3
        assert {n.location for n in neighbors} == {(0, 1), (1, 0), (1, 1)}

    def test_edge_has_five(self):
        neighbors = location_neighbors(Pair(0, 2, 0), (5, 5))
        assert len(neighbors) == 5

    @given(
        st.integers(2, 10),
        st.integers(2, 10),
        st.data(),
    )
    def test_neighbors_within_image_same_corner(self, d1, d2, data):
        row = data.draw(st.integers(0, d1 - 1))
        col = data.draw(st.integers(0, d2 - 1))
        corner = data.draw(st.integers(0, 7))
        pair = Pair(row, col, corner)
        neighbors = location_neighbors(pair, (d1, d2))
        assert neighbors, "every pixel has at least one neighbor on a 2x2+ grid"
        for neighbor in neighbors:
            assert 0 <= neighbor.row < d1
            assert 0 <= neighbor.col < d2
            assert neighbor.corner == corner
            assert location_distance(neighbor.location, pair.location) == 1
        assert pair not in neighbors
