"""Tests for the CornerSearch baseline."""

import numpy as np
import pytest

from repro.attacks.corner_search import CornerSearch, CornerSearchConfig
from repro.classifier.blackbox import CountingClassifier
from repro.classifier.toy import (
    MarginRampClassifier,
    SinglePixelBackdoorClassifier,
)

SHAPE = (6, 6, 3)
FULL_SPACE = 8 * 6 * 6


def gray_image():
    return np.full(SHAPE, 0.5)


class TestCornerSearch:
    def test_finds_backdoor(self):
        classifier = SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.ones(3))
        attack = CornerSearch(CornerSearchConfig(seed=0))
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert result.success
        assert result.location == (2, 3)

    def test_probe_phase_guides_exploitation(self):
        """A classifier with a graded weak spot: probing reveals the spot,
        so CornerSearch reaches it faster than unlucky random order."""
        classifier = MarginRampClassifier(SHAPE, (1, 1), threshold=2.5)
        attack = CornerSearch(CornerSearchConfig(probe_fraction=1.0, seed=0))
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert result.success
        assert result.location == (1, 1)
        # full probe = 36 queries; exploitation should then find the
        # weak pixel almost immediately
        assert result.queries <= 36 + 8

    def test_exhaustive_when_no_example(self):
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])
        )
        attack = CornerSearch(CornerSearchConfig(seed=1))
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert not result.success
        # every pair queried exactly once (probes are skipped in phase 2)
        assert result.queries == FULL_SPACE

    def test_budget_respected(self):
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])
        )
        counting = CountingClassifier(classifier)
        attack = CornerSearch(CornerSearchConfig(seed=2))
        result = attack.attack(counting, gray_image(), true_class=0, budget=20)
        assert not result.success
        assert result.queries == 20
        assert counting.count == 20

    def test_deterministic(self):
        classifier = SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.ones(3))
        config = CornerSearchConfig(seed=3)
        a = CornerSearch(config).attack(classifier, gray_image(), true_class=0)
        b = CornerSearch(config).attack(classifier, gray_image(), true_class=0)
        assert a.queries == b.queries

    def test_validation(self):
        with pytest.raises(ValueError):
            CornerSearchConfig(probe_fraction=0.0)
        with pytest.raises(ValueError):
            CornerSearchConfig(probe_fraction=1.5)

    def test_name(self):
        assert CornerSearch().name == "CornerSearch"
