"""Tests for the micro-batching query broker."""

import threading
import time

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.classifier.toy import LinearPixelClassifier, make_toy_images
from repro.core.stepping import drive_steps
from repro.runtime.cache import QueryCache
from repro.runtime.events import RunLog
from repro.serve.broker import BatchPolicy, BrokerStopped, MicroBatchBroker
from repro.serve.sessions import SessionManager


@pytest.fixture
def classifier(toy_shape):
    return LinearPixelClassifier(toy_shape, num_classes=3, seed=1, temperature=0.05)


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch_size == 32
        assert policy.max_wait > 0

    @pytest.mark.parametrize("kwargs", [{"max_batch_size": 0}, {"max_wait": -1}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestEvaluate:
    def test_matches_direct_calls(self, classifier, toy_shape):
        broker = MicroBatchBroker(classifier)
        images = make_toy_images(5, toy_shape, seed=4)
        scores = broker.evaluate(images)
        for image, row in zip(images, scores):
            assert np.array_equal(row, classifier(image))

    def test_empty_batch(self, classifier):
        assert MicroBatchBroker(classifier).evaluate([]) == []

    def test_intra_batch_dedup(self, classifier, toy_shape):
        calls = []

        def spy(image):
            calls.append(1)
            return classifier(image)

        broker = MicroBatchBroker(spy)
        image = make_toy_images(1, toy_shape, seed=5)[0]
        scores = broker.evaluate([image, image, image])
        assert len(calls) == 1  # three queries, one forward pass
        assert all(np.array_equal(row, scores[0]) for row in scores)
        snapshot = broker.stats()
        assert snapshot["coalesced_duplicates"] == 2

    def test_cache_across_flushes(self, classifier, toy_shape):
        broker = MicroBatchBroker(classifier, cache=QueryCache(64))
        image = make_toy_images(1, toy_shape, seed=6)[0]
        broker.evaluate([image])
        broker.evaluate([image])
        stats = broker.stats()["cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_returned_scores_are_isolated(self, classifier, toy_shape):
        """Mutating a returned vector must not corrupt later answers."""
        broker = MicroBatchBroker(classifier, cache=QueryCache(64))
        image = make_toy_images(1, toy_shape, seed=7)[0]
        first = broker.evaluate([image])[0]
        expected = first.copy()
        first[:] = -1.0
        again = broker.evaluate([image])[0]
        assert np.array_equal(again, expected)

    def test_flush_telemetry(self, classifier, toy_shape):
        log = RunLog()
        broker = MicroBatchBroker(classifier, run_log=log)
        broker.evaluate(make_toy_images(3, toy_shape, seed=8))
        events = [e for e in log.events if e["event"] == "broker_flush"]
        assert len(events) == 1
        assert events[0]["batch"] == 3


class TestSubmit:
    def test_submit_requires_running(self, classifier, toy_shape):
        broker = MicroBatchBroker(classifier)
        with pytest.raises(BrokerStopped):
            broker.submit(make_toy_images(1, toy_shape, seed=9)[0])
        assert broker.stats()["rejected"] == 1

    def test_concurrent_submits_coalesce(self, classifier, toy_shape):
        images = make_toy_images(8, toy_shape, seed=10)
        expected = [classifier(image) for image in images]
        results = [None] * len(images)
        barrier = threading.Barrier(len(images))

        policy = BatchPolicy(max_batch_size=8, max_wait=0.5)
        with MicroBatchBroker(classifier, policy=policy) as broker:

            def worker(position):
                barrier.wait()
                results[position] = broker.submit(images[position])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(images))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            snapshot = broker.stats()
        for row, want in zip(results, expected):
            assert np.array_equal(row, want)
        assert snapshot["submitted"] == 8
        # all 8 queued behind the barrier: at most a couple of flushes
        assert snapshot["flushes"] <= 3
        assert snapshot["batch_sizes"]["max"] >= 2

    def test_stop_fails_pending(self, classifier, toy_shape):
        image = make_toy_images(1, toy_shape, seed=11)[0]
        # max_wait so long the only way out is stop()
        policy = BatchPolicy(max_batch_size=64, max_wait=30.0)
        broker = MicroBatchBroker(classifier, policy=policy).start()
        errors = []

        def submitter():
            try:
                broker.submit(image)
            except BrokerStopped as exc:
                errors.append(exc)

        thread = threading.Thread(target=submitter)
        thread.start()
        while broker.queue_depth == 0:
            pass
        broker.stop()
        thread.join(timeout=10)
        assert len(errors) == 1

    def test_stop_emits_summary(self, classifier):
        log = RunLog()
        broker = MicroBatchBroker(classifier, run_log=log).start()
        broker.stop()
        assert any(e["event"] == "broker_summary" for e in log.events)

    def test_start_is_idempotent(self, classifier):
        broker = MicroBatchBroker(classifier).start()
        assert broker.start() is broker
        broker.stop()


class TestBrokerDeterminism:
    """The broker-determinism satellite: an attack driven through the
    broker must produce a bit-identical AttackResult to a direct run."""

    @pytest.mark.parametrize(
        "attack_factory",
        [FixedSketchAttack, lambda: UniformRandomAttack(UniformRandomConfig(seed=2))],
        ids=["fixed-sketch", "uniform-random"],
    )
    def test_bit_identical_to_direct_run(
        self, attack_factory, classifier, toy_shape
    ):
        image = make_toy_images(1, toy_shape, seed=12)[0]
        true_class = int(np.argmax(classifier(image)))
        direct = drive_steps(
            attack_factory().steps(image, true_class, budget=400), classifier
        )

        broker = MicroBatchBroker(classifier, cache=QueryCache(256))
        manager = SessionManager(broker)
        session = manager.create(attack_factory(), image, true_class, budget=400)
        manager.run_cooperative([session])
        manager.shutdown()

        served = session.result
        assert served.success == direct.success
        assert served.queries == direct.queries
        assert served.location == direct.location
        assert served.adversarial_class == direct.adversarial_class
        if direct.perturbation is None:
            assert served.perturbation is None
        else:
            assert np.array_equal(served.perturbation, direct.perturbation)

    def test_bit_identical_under_threaded_driving(self, classifier, toy_shape):
        """Even with threads and micro-batching, per-session results
        match the direct run: batching changes scheduling, not scores."""
        images = make_toy_images(6, toy_shape, seed=13)
        jobs = [(image, int(np.argmax(classifier(image)))) for image in images]
        direct = [
            drive_steps(
                FixedSketchAttack().steps(image, label, budget=400), classifier
            )
            for image, label in jobs
        ]

        policy = BatchPolicy(max_batch_size=6, max_wait=0.002)
        with MicroBatchBroker(
            classifier, policy=policy, cache=QueryCache(1024)
        ) as broker:
            manager = SessionManager(broker, max_workers=6)
            sessions = [
                manager.create(FixedSketchAttack(), image, label, budget=400)
                for image, label in jobs
            ]
            futures = [manager.start(session) for session in sessions]
            for future in futures:
                future.result(timeout=60)
            manager.shutdown()

        for session, want in zip(sessions, direct):
            assert session.result.success == want.success
            assert session.result.queries == want.queries
            assert session.result.location == want.location


class TestSingleFlight:
    """The in-flight-miss table: concurrent calls never double-score."""

    def _counting_classifier(self, classifier, delay=0.005):
        forwards = {}
        lock = threading.Lock()

        def spy(image):
            key = image.tobytes()
            with lock:
                forwards[key] = forwards.get(key, 0) + 1
            time.sleep(delay)  # widen the old miss-decide/put race window
            return classifier(image)

        return spy, forwards

    def test_one_forward_per_distinct_image_under_concurrency(
        self, classifier, toy_shape
    ):
        """Stress evaluate/submit/submit_many concurrently over an
        overlapping image set: every distinct image must cost exactly
        one model forward (the single-flight guarantee the broker
        docstring promises)."""
        spy, forwards = self._counting_classifier(classifier)
        images = make_toy_images(6, toy_shape, seed=21)
        broker = MicroBatchBroker(
            spy,
            policy=BatchPolicy(max_batch_size=4, max_wait=0.001),
            cache=QueryCache(256),
        )
        broker.start()
        errors = []
        barrier = threading.Barrier(13)

        def run(call):
            try:
                barrier.wait(timeout=10)
                call()
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        workers = []
        for start in range(4):  # overlapping evaluate() windows
            subset = [images[(start + i) % len(images)] for i in range(4)]
            workers.append(
                threading.Thread(target=run, args=(lambda s=subset: broker.evaluate(s),))
            )
        for i in range(6):  # scalar submits through the flusher
            workers.append(
                threading.Thread(
                    target=run, args=(lambda i=i: broker.submit(images[i]),)
                )
            )
        for start in (0, 3, 1):  # batch-native submit_many
            subset = [images[(start + i) % len(images)] for i in range(3)]
            workers.append(
                threading.Thread(
                    target=run, args=(lambda s=subset: broker.submit_many(s),)
                )
            )
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30)
        broker.stop()

        assert not errors
        assert len(forwards) == len(images)
        assert all(count == 1 for count in forwards.values())
        assert broker._in_flight == {}

    def test_joined_callers_get_correct_scores(self, classifier, toy_shape):
        spy, _forwards = self._counting_classifier(classifier, delay=0.02)
        image = make_toy_images(1, toy_shape, seed=22)[0]
        broker = MicroBatchBroker(spy, cache=QueryCache(16))
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(broker.evaluate([image])[0])
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        expected = classifier(image)
        assert len(results) == 4
        for row in results:
            assert np.array_equal(row, expected)

    def test_leader_failure_releases_joiners(self, classifier, toy_shape):
        """A model error must resolve the flight with that error --
        joiners re-raise instead of hanging, and the table drains."""

        class Boom(RuntimeError):
            pass

        def failing(image):
            time.sleep(0.02)
            raise Boom("model exploded")

        image = make_toy_images(1, toy_shape, seed=23)[0]
        broker = MicroBatchBroker(failing, cache=QueryCache(16))
        outcomes = []

        def call():
            try:
                broker.evaluate([image])
                outcomes.append("ok")
            except Boom:
                outcomes.append("boom")

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes == ["boom", "boom", "boom"]
        assert broker._in_flight == {}
