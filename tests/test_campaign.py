"""Tests for the campaign subsystem: spec, runner, store, report, bench.

The golden files under ``tests/data/`` pin the deterministic report of
the canonical 2x2 toy matrix (``repro.testkit.kill.toy_matrix_spec``);
regenerating them is only legitimate when the attack/classifier
semantics intentionally change.
"""

import json
import os

import pytest

from repro.campaign.bench import (
    BENCH_SCHEMA,
    BenchSchemaError,
    bench_metric,
    bench_payload,
    read_bench,
    validate_bench,
    write_bench,
)
from repro.campaign.report import (
    ReportError,
    campaign_csv,
    campaign_markdown,
    write_campaign_bench,
)
from repro.campaign.runner import (
    build_cell_inputs,
    campaign_status,
    loaded_spec,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, SpecError, cell_id, cell_seeds
from repro.campaign.store import ResultsStore, StoreError, make_record
from repro.runtime.checkpoint import RECORDS_NAME
from repro.testkit.kill import (
    kill_and_resume_matrix,
    matrix_fingerprint,
    toy_matrix_spec,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def small_spec(**campaign_overrides):
    """A fast 2x2 toy spec (tiny images, tiny budget) for runner tests."""
    payload = {
        "campaign": {"id": "unit", "seed": 3, "images": 2, "budget": 32},
        "matrix": {
            "models": ["toy-smooth", "toy-linear"],
            "attacks": ["fixed", "random"],
            "datasets": ["toy"],
        },
        "model": {
            "toy-smooth": {"height": 5, "width": 5, "classes": 3},
            "toy-linear": {"height": 5, "width": 5, "classes": 3},
        },
    }
    payload["campaign"].update(campaign_overrides)
    return CampaignSpec.from_dict(payload)


class TestSpecValidation:
    def base(self):
        return {
            "campaign": {"id": "c", "seed": 0, "images": 1, "budget": 8},
            "matrix": {"models": ["toy-smooth"], "attacks": ["fixed"]},
        }

    def test_minimal_spec_validates(self):
        spec = CampaignSpec.from_dict(self.base())
        assert spec.campaign_id == "c"
        assert spec.datasets == ("toy",)  # defaulted
        assert spec.budgets == (8,)  # defaults to campaign.budget

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.pop("campaign"), "campaign"),
            (lambda p: p["campaign"].pop("id"), "campaign.id"),
            (lambda p: p["campaign"].update(id="bad id!"), "campaign.id"),
            (lambda p: p["campaign"].update(images=0), "campaign.images"),
            (lambda p: p["campaign"].update(images=True), "campaign.images"),
            (lambda p: p["campaign"].update(budget=-1), "campaign.budget"),
            (lambda p: p["campaign"].update(seed=-5), "campaign.seed"),
            (lambda p: p.pop("matrix"), "matrix"),
            (lambda p: p["matrix"].update(models=[]), "matrix.models"),
            (
                lambda p: p["matrix"].update(models=["toy-smooth", "toy-smooth"]),
                "unique",
            ),
            (lambda p: p["matrix"].update(models=["no-such"]), "unknown model"),
            (lambda p: p["matrix"].update(attacks=["no-such"]), "unknown attack"),
            (lambda p: p["matrix"].update(attacks=["program:"]), "unknown attack"),
            (lambda p: p["matrix"].update(datasets=["mnist"]), "unknown dataset"),
            (lambda p: p["matrix"].update(budgets=[0]), "budgets"),
            (lambda p: p["matrix"].update(budgets=[8, 8]), "unique"),
            (lambda p: p.update(bogus={}), "unknown top-level"),
            (lambda p: p.update(model={"toy-linear": {}}), "absent from"),
            (lambda p: p.update(attack={"random": {}}), "absent from"),
            (lambda p: p.update(overrides={"threads": 4}), "unknown overrides"),
            (
                lambda p: p.update(overrides={"cache_size": -1}),
                "cache_size",
            ),
            (lambda p: p.update(overrides={"freeze": "yes"}), "freeze"),
        ],
    )
    def test_rejects_and_names_the_field(self, mutate, fragment):
        payload = self.base()
        mutate(payload)
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.from_dict(payload)
        assert fragment in str(excinfo.value)

    def test_toy_model_requires_toy_dataset(self):
        payload = self.base()
        payload["matrix"]["datasets"] = ["cifar"]
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.from_dict(payload)
        assert "toy" in str(excinfo.value)

    def test_load_toml_and_json_agree(self, tmp_path):
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            "[campaign]\n"
            'id = "c"\n'
            "seed = 0\n"
            "images = 1\n"
            "budget = 8\n"
            "[matrix]\n"
            'models = ["toy-smooth"]\n'
            'attacks = ["fixed"]\n'
        )
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(self.base()))
        assert (
            CampaignSpec.load(str(toml_path)).fingerprint()
            == CampaignSpec.load(str(json_path)).fingerprint()
        )

    def test_load_rejects_unknown_extension_and_bad_syntax(self, tmp_path):
        with pytest.raises(SpecError):
            CampaignSpec.load(str(tmp_path / "spec.yaml"))
        bad = tmp_path / "spec.json"
        bad.write_text("{not json")
        with pytest.raises(SpecError):
            CampaignSpec.load(str(bad))


class TestExpansion:
    def test_cell_ids_are_stable_and_unique(self):
        spec = CampaignSpec.from_dict(toy_matrix_spec())
        cells = spec.expand()
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids) == 4
        assert ids[0] == cell_id("toy", "toy-smooth", "fixed", 64)

    def test_expansion_order_follows_listed_axes(self):
        spec = CampaignSpec.from_dict(toy_matrix_spec())
        models = [cell.model for cell in spec.expand()]
        assert models == ["toy-smooth", "toy-smooth", "toy-linear", "toy-linear"]

    def test_seeds_depend_only_on_campaign_seed_and_identity(self):
        """Adding a matrix row must not change any existing cell's seeds."""
        small = CampaignSpec.from_dict(toy_matrix_spec())
        payload = toy_matrix_spec()
        payload["matrix"]["attacks"] = ["fixed", "random", "su-opa"]
        large = CampaignSpec.from_dict(payload)
        small_seeds = {c.cell_id: (c.base_seed, c.data_seed) for c in small.expand()}
        large_seeds = {c.cell_id: (c.base_seed, c.data_seed) for c in large.expand()}
        for identity, seeds in small_seeds.items():
            assert large_seeds[identity] == seeds

    def test_seeds_change_with_campaign_seed(self):
        assert cell_seeds(0, "a.b.c.b8") != cell_seeds(1, "a.b.c.b8")
        assert cell_seeds(0, "a.b.c.b8") != cell_seeds(0, "a.b.c.b16")

    def test_to_dict_round_trips_with_identical_fingerprint(self):
        spec = CampaignSpec.from_dict(toy_matrix_spec())
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.fingerprint() == spec.fingerprint()

    def test_fingerprint_changes_when_the_matrix_changes(self):
        base = CampaignSpec.from_dict(toy_matrix_spec())
        payload = toy_matrix_spec()
        payload["campaign"]["images"] = 99
        assert CampaignSpec.from_dict(payload).fingerprint() != base.fingerprint()


class TestResultsStore:
    def record(self, cell="a", value=1.0, timestamp=1.0):
        return make_record(
            "camp",
            cell,
            {"success_rate": value},
            git_rev="abc1234",
            timestamp=timestamp,
        )

    def test_append_and_index_round_trip(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        assert store.append(self.record("a")) == 0
        assert store.append(self.record("b")) == 1
        assert store.append(self.record("a", value=0.5, timestamp=2.0)) == 2
        assert store.index() == {"camp::a": [0, 2], "camp::b": [1]}
        reopened = ResultsStore(str(tmp_path))
        assert reopened.index() == {"camp::a": [0, 2], "camp::b": [1]}
        assert len(reopened.query("camp", "a")) == 2
        assert reopened.campaigns() == ["camp"]

    def test_missing_or_stale_index_is_rebuilt(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        store.append(self.record("a"))
        os.remove(store.index_path)
        assert store.index() == {"camp::a": [0]}
        with open(store.index_path, "w") as handle:
            handle.write('{"camp::zzz": [9]}')
        assert store.index() == {"camp::a": [0]}

    def test_torn_tail_is_skipped(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        store.append(self.record("a"))
        with open(store.results_path, "a") as handle:
            handle.write('{"campaign": "camp", "cell": "b"')  # crash mid-write
        assert len(store.records()) == 1
        assert store.index() == {"camp::a": [0]}

    def test_corruption_before_the_tail_raises(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        with open(store.results_path, "w") as handle:
            handle.write("not json\n")
        store.append(self.record("a"))
        with pytest.raises(StoreError):
            store.records()

    def test_append_requires_identity_fields(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        with pytest.raises(StoreError):
            store.append({"cell": "a"})

    def test_trendline_sorts_by_timestamp_and_keeps_gaps(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        store.append(self.record("a", value=0.5, timestamp=2.0))
        store.append(self.record("a", value=0.75, timestamp=1.0))
        record = self.record("a", timestamp=3.0)
        record["summary"] = {}  # a run that never produced the metric
        store.append(record)
        points = store.trendline("camp", "a", "success_rate")
        assert [p[0] for p in points] == [1.0, 2.0, 3.0]
        assert [p[2] for p in points] == [0.75, 0.5, None]


class TestBench:
    def test_payload_validates_and_round_trips(self, tmp_path):
        path = write_bench(
            str(tmp_path),
            "unit",
            [bench_metric("speedup", 2.5, "x")],
            git_rev="abc1234",
            timestamp=1.0,
        )
        assert os.path.basename(path) == "BENCH_unit.json"
        payload = read_bench(path)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["metrics"][0]["value"] == 2.5

    def test_non_finite_values_become_null(self):
        assert bench_metric("m", float("inf"), "x")["value"] is None
        assert bench_metric("m", float("nan"), "x")["value"] is None

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p: p.update(schema="other/9"),
            lambda p: p.pop("git_rev"),
            lambda p: p.update(metrics=[{"name": "m"}]),
            lambda p: p.update(
                metrics=[
                    {"name": "m", "value": 1, "unit": "x"},
                    {"name": "m", "value": 2, "unit": "x"},
                ]
            ),
            lambda p: p.update(metrics=[{"name": "", "value": 1, "unit": "x"}]),
        ],
    )
    def test_validate_rejects_malformed_payloads(self, corrupt):
        payload = bench_payload(
            "unit", [bench_metric("ok", 1.0, "x")], git_rev="r", timestamp=1.0
        )
        corrupt(payload)
        with pytest.raises(BenchSchemaError):
            validate_bench(payload)


class TestRunner:
    def test_run_produces_a_record_per_cell(self, tmp_path):
        spec = small_spec()
        run = run_campaign(spec, str(tmp_path / "camp"))
        assert len(run.outcomes) == 4
        assert all(not outcome.replayed for outcome in run.outcomes)
        for outcome in run.outcomes:
            assert outcome.summary["total_images"] == 2
            assert len(outcome.record["per_image"]) == 2

    def test_rerun_replays_every_cell_identically(self, tmp_path):
        spec = small_spec()
        root = str(tmp_path / "camp")
        first = run_campaign(spec, root)
        second = run_campaign(spec, root)
        assert all(outcome.replayed for outcome in second.outcomes)
        assert [o.record["per_image"] for o in first.outcomes] == [
            o.record["per_image"] for o in second.outcomes
        ]

    def test_cell_granular_resume_after_simulated_kill(self, tmp_path):
        """Dropping the root log's tail simulates a kill between cells:
        the resumed run replays the surviving cells, re-runs the rest,
        and the deterministic fingerprint matches the uninterrupted one."""
        spec = small_spec()
        root = str(tmp_path / "camp")
        run_campaign(spec, root)
        golden = matrix_fingerprint(root)

        records_path = os.path.join(root, RECORDS_NAME)
        with open(records_path) as handle:
            lines = handle.readlines()
        with open(records_path, "w") as handle:
            handle.writelines(lines[:2])

        states = dict(
            (cell.cell_id, state) for cell, state in campaign_status(spec, root)
        )
        assert sorted(states.values()) == ["done", "done", "partial", "partial"]

        resumed = run_campaign(spec, root)
        flags = [outcome.replayed for outcome in resumed.outcomes]
        assert flags == [True, True, False, False]
        assert matrix_fingerprint(root) == golden

    def test_mid_cell_checkpoint_survives_root_log_truncation(self, tmp_path):
        """The re-run of a cell whose root record was lost is itself a
        replay: its per-image checkpoint still holds the results."""
        spec = small_spec()
        root = str(tmp_path / "camp")
        run_campaign(spec, root)
        golden = matrix_fingerprint(root)
        with open(os.path.join(root, RECORDS_NAME), "w"):
            pass  # every cell record lost; per-cell checkpoints intact
        resumed = run_campaign(spec, root)
        assert all(not outcome.replayed for outcome in resumed.outcomes)
        assert matrix_fingerprint(root) == golden

    def test_edited_spec_refuses_to_resume(self, tmp_path):
        from repro.runtime.checkpoint import CheckpointMismatch

        root = str(tmp_path / "camp")
        run_campaign(small_spec(), root)
        with pytest.raises(CheckpointMismatch):
            run_campaign(small_spec(images=3), root)

    def test_results_store_receives_fresh_cells_only(self, tmp_path):
        spec = small_spec()
        root = str(tmp_path / "camp")
        store = ResultsStore(str(tmp_path / "store"))
        run_campaign(spec, root, results_store=store)
        assert len(store.records()) == 4
        run_campaign(spec, root, results_store=store)  # full replay
        assert len(store.records()) == 4
        for identity in (cell.cell_id for cell in spec.expand()):
            points = store.trendline("unit", identity, "success_rate")
            assert len(points) == 1

    def test_loaded_spec_round_trips_from_the_manifest(self, tmp_path):
        spec = small_spec()
        root = str(tmp_path / "camp")
        run_campaign(spec, root)
        assert loaded_spec(root).fingerprint() == spec.fingerprint()

    def test_latency_config_changes_nothing_but_wall_time(self, tmp_path):
        fast = CampaignSpec.from_dict(toy_matrix_spec(images=2, budget=16))
        slow = CampaignSpec.from_dict(
            toy_matrix_spec(images=2, budget=16, latency=0.001)
        )
        run_campaign(fast, str(tmp_path / "fast"))
        run_campaign(slow, str(tmp_path / "slow"))
        fast_print = matrix_fingerprint(str(tmp_path / "fast"))
        slow_print = matrix_fingerprint(str(tmp_path / "slow"))
        # reports embed the spec fingerprint, which legitimately differs
        assert fast_print["cells"] == slow_print["cells"]

    def test_unknown_attack_config_key_is_a_spec_error(self, tmp_path):
        payload = {
            "campaign": {"id": "c", "seed": 0, "images": 1, "budget": 8},
            "matrix": {"models": ["toy-smooth"], "attacks": ["random"]},
            "attack": {"random": {"bogus_knob": 1}},
        }
        spec = CampaignSpec.from_dict(payload)
        with pytest.raises(SpecError):
            run_campaign(spec, str(tmp_path / "camp"))

    def test_fixed_attack_rejects_configuration(self, tmp_path):
        payload = {
            "campaign": {"id": "c", "seed": 0, "images": 1, "budget": 8},
            "matrix": {"models": ["toy-smooth"], "attacks": ["fixed"]},
            "attack": {"fixed": {"seed": 1}},
        }
        spec = CampaignSpec.from_dict(payload)
        with pytest.raises(SpecError):
            run_campaign(spec, str(tmp_path / "camp"))

    def test_toy_inputs_are_deterministic(self):
        spec = small_spec()
        cell = spec.expand()[0]
        _, first = build_cell_inputs(cell)
        _, second = build_cell_inputs(cell)
        assert len(first) == cell.images
        for (image_a, label_a), (image_b, label_b) in zip(first, second):
            assert label_a == label_b
            assert (image_a == image_b).all()


class TestReport:
    def completed_root(self, tmp_path):
        spec = CampaignSpec.from_dict(toy_matrix_spec())
        root = str(tmp_path / "camp")
        run_campaign(spec, root)
        return root

    def test_deterministic_markdown_matches_golden(self, tmp_path):
        root = self.completed_root(tmp_path)
        golden = open(os.path.join(DATA_DIR, "campaign_toy_2x2.md")).read()
        assert campaign_markdown(root, include_timing=False) == golden

    def test_deterministic_csv_matches_golden(self, tmp_path):
        root = self.completed_root(tmp_path)
        golden = open(os.path.join(DATA_DIR, "campaign_toy_2x2.csv")).read()
        assert campaign_csv(root, include_timing=False) == golden

    def test_full_report_adds_timing_columns_and_rev(self, tmp_path):
        root = self.completed_root(tmp_path)
        full = campaign_markdown(root)
        assert "attack s" in full and "wall s" in full
        assert "git rev(s):" in full
        assert "attack s" not in campaign_markdown(root, include_timing=False)

    def test_bench_file_is_valid_and_covers_every_cell(self, tmp_path):
        root = self.completed_root(tmp_path)
        path = write_campaign_bench(root, str(tmp_path))
        payload = read_bench(path)  # read_bench validates
        names = {metric["name"] for metric in payload["metrics"]}
        for cell in CampaignSpec.from_dict(toy_matrix_spec()).expand():
            assert f"{cell.cell_id}/success_rate" in names

    def test_empty_root_raises_report_error(self, tmp_path):
        with pytest.raises(ReportError):
            campaign_markdown(str(tmp_path / "nothing"))


@pytest.mark.slow
class TestKillAndResumeMatrix:
    def test_sigkilled_matrix_resumes_bit_identical(self, tmp_path):
        """The acceptance bar: SIGKILL a real `repro campaign run`
        subprocess mid-matrix, resume, and the deterministic report is
        byte-identical to an uninterrupted golden run."""
        outcome = kill_and_resume_matrix(str(tmp_path), kill_after=5)
        assert outcome["records_at_kill"] >= 5
        assert outcome["identical"], (
            "resumed campaign diverged from golden run:\n"
            f"golden:\n{outcome['golden']['report']}\n"
            f"resumed:\n{outcome['resumed']['report']}"
        )
