"""Tests for the model zoo (training, caching, filtering)."""

import numpy as np
import pytest

from repro.models.zoo import ModelZoo, ZooConfig


@pytest.fixture
def tiny_config(tmp_path):
    """A config small enough to train inside a unit test."""
    return ZooConfig(
        dataset="cifar",
        image_size=8,
        train_per_class=12,
        test_per_class=6,
        epochs=2,
        batch_size=32,
        cache_dir=str(tmp_path),
    )


class TestZooDatasets:
    def test_splits_are_disjoint_and_deterministic(self, tiny_config):
        zoo = ModelZoo(tiny_config)
        train = zoo.dataset("train")
        test = zoo.dataset("test")
        assert len(train) == 120
        assert len(test) == 60
        assert not np.array_equal(train.images[:6], test.images[:6])
        again = ModelZoo(tiny_config)
        assert np.array_equal(again.dataset("train").images, train.images)

    def test_invalid_split(self, tiny_config):
        with pytest.raises(ValueError):
            ModelZoo(tiny_config).dataset("validation")

    def test_imagenet_variant(self, tmp_path):
        config = ZooConfig(
            dataset="imagenet",
            image_size=8,
            train_per_class=4,
            test_per_class=2,
            epochs=1,
            cache_dir=str(tmp_path),
        )
        zoo = ModelZoo(config)
        assert zoo.dataset("train").num_classes == 11
        assert config.num_classes == 11

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ZooConfig(dataset="mnist")


class TestZooTrainingAndCaching:
    def test_train_and_cache_round_trip(self, tiny_config):
        zoo = ModelZoo(tiny_config)
        trained = zoo.get("vgg16bn")
        assert 0.0 <= trained.test_accuracy <= 1.0
        assert trained.train_accuracy > 0.2  # learned something

        # a fresh zoo loads from cache and serves identical weights
        reloaded = ModelZoo(tiny_config).get("vgg16bn")
        image = zoo.dataset("test").images[0]
        assert np.allclose(
            trained.classifier(image), reloaded.classifier(image)
        )
        assert reloaded.test_accuracy == trained.test_accuracy

    def test_in_memory_caching(self, tiny_config):
        zoo = ModelZoo(tiny_config)
        first = zoo.get("vgg16bn")
        assert zoo.get("vgg16bn") is first

    def test_force_retrain(self, tiny_config):
        zoo = ModelZoo(tiny_config)
        first = zoo.get("vgg16bn")
        again = zoo.get("vgg16bn", force_retrain=True)
        image = zoo.dataset("test").images[0]
        # deterministic training: same weights even when retrained
        assert np.allclose(first.classifier(image), again.classifier(image))

    def test_cache_key_distinguishes_configs(self, tiny_config):
        other = ZooConfig(
            dataset=tiny_config.dataset,
            image_size=tiny_config.image_size,
            train_per_class=tiny_config.train_per_class,
            epochs=3,  # differs
            cache_dir=tiny_config.cache_dir,
        )
        assert tiny_config.cache_key("vgg16bn") != other.cache_key("vgg16bn")
        assert tiny_config.cache_key("vgg16bn") != tiny_config.cache_key("resnet18")

    def test_correctly_classified_filtering(self, tiny_config):
        zoo = ModelZoo(tiny_config)
        trained = zoo.get("vgg16bn")
        correct = zoo.correctly_classified("vgg16bn", split="test")
        scores = trained.classifier.batch(correct.images)
        assert (scores.argmax(axis=1) == correct.labels).all()

    def test_correctly_classified_with_label_and_limit(self, tiny_config):
        zoo = ModelZoo(tiny_config)
        zoo.get("vgg16bn")
        subset = zoo.correctly_classified("vgg16bn", label=3, limit=2)
        assert len(subset) <= 2
        assert (subset.labels == 3).all()

    def test_frozen_classifier_leaves_shared_model_untouched(self, tiny_config):
        """``frozen_classifier()`` must freeze a *copy*: the shared
        ``trained.classifier`` stays on the bit-exact eval path while the
        frozen one is decision-identical and tolerance-close to it."""
        zoo = ModelZoo(tiny_config)
        trained = zoo.get("vgg16bn")
        images = zoo.dataset("test").images[:6]
        reference = trained.classifier.batch(images)
        fast = trained.frozen_classifier()
        assert fast.frozen
        assert not trained.model.frozen
        assert not trained.classifier.frozen
        frozen_scores = fast.batch(images)
        assert np.allclose(frozen_scores, reference, rtol=1e-8, atol=1e-10)
        assert np.array_equal(
            frozen_scores.argmax(axis=1), reference.argmax(axis=1)
        )
        # the shared classifier still reproduces its original scores bit
        # for bit -- proof the deep copy really isolated the fast path
        assert np.array_equal(trained.classifier.batch(images), reference)
