"""Tests for the score function, the MH search, and the OPPSLA facade."""

import math

import numpy as np
import pytest

from repro.core.dsl.ast import Program
from repro.core.dsl.grammar import Grammar
from repro.core.synthesis.mh import MetropolisHastings
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.core.synthesis.score import (
    ProgramEvaluation,
    evaluate_program,
    score,
)
from repro.core.synthesis.trace import SynthesisTrace


def make_eval(avg, successes=1, total_images=2, total_queries=10):
    return ProgramEvaluation(
        avg_queries=avg,
        successes=successes,
        total_images=total_images,
        total_queries=total_queries,
        results=(),
    )


class TestScore:
    def test_monotonically_decreasing(self):
        beta = 0.05
        scores = [score(make_eval(q), beta) for q in (0, 10, 100, 1000)]
        assert scores == sorted(scores, reverse=True)

    def test_zero_queries_gives_max_score(self):
        assert score(make_eval(0.0), beta=0.1) == 1.0

    def test_no_success_gives_zero(self):
        assert score(make_eval(math.inf, successes=0), beta=0.1) == 0.0

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            score(make_eval(5.0), beta=0.0)

    def test_exact_form(self):
        assert score(make_eval(50.0), beta=0.02) == pytest.approx(math.exp(-1.0))


class TestEvaluateProgram:
    def test_counts_only_successes_in_average(self, linear_classifier, toy_pairs):
        evaluation = evaluate_program(
            Program.constant(False),
            linear_classifier,
            toy_pairs,
            per_image_budget=50,
        )
        successes = [r for r in evaluation.results if r.success]
        failures = [r for r in evaluation.results if not r.success]
        if successes:
            expected = sum(r.queries for r in successes) / len(successes)
            assert evaluation.avg_queries == pytest.approx(expected)
        # failures hit the budget exactly
        for failure in failures:
            assert failure.queries == 50
        assert evaluation.total_queries == sum(
            r.queries for r in evaluation.results
        )
        assert evaluation.total_images == len(toy_pairs)

    def test_success_rate(self, linear_classifier, toy_pairs):
        evaluation = evaluate_program(
            Program.constant(False), linear_classifier, toy_pairs
        )
        assert evaluation.success_rate == evaluation.successes / len(toy_pairs)

    def test_all_sketch_programs_same_success_set(
        self, linear_classifier, toy_pairs
    ):
        """Completeness: success does not depend on the conditions."""
        grammar = Grammar((6, 6))
        rng = np.random.default_rng(0)
        reference = evaluate_program(
            Program.constant(False), linear_classifier, toy_pairs
        )
        for _ in range(3):
            program = grammar.random_program(rng)
            evaluation = evaluate_program(program, linear_classifier, toy_pairs)
            assert [r.success for r in evaluation.results] == [
                r.success for r in reference.results
            ]


class TestMetropolisHastings:
    def test_accept_probability(self):
        grammar = Grammar((6, 6))
        chain = MetropolisHastings(
            grammar, lambda p: make_eval(1.0), beta=0.1,
            rng=np.random.default_rng(0),
        )
        assert chain.accept_probability(0.5, 1.0) == 1.0
        assert chain.accept_probability(1.0, 0.5) == 0.5
        assert chain.accept_probability(0.0, 0.3) == 1.0
        assert chain.accept_probability(0.0, 0.0) == 1.0

    def test_greedy_improvement_always_accepted(self):
        """With strictly improving proposals the chain accepts everything."""
        grammar = Grammar((6, 6))
        counter = {"n": 200}

        def improving(_program):
            counter["n"] -= 1
            return make_eval(float(counter["n"]), total_queries=1)

        chain = MetropolisHastings(
            grammar, improving, beta=0.5, rng=np.random.default_rng(1)
        )
        state, trace = chain.run(10)
        assert trace.proposals_accepted == 10
        assert trace.proposals_rejected == 0
        assert len(trace.accepted) == 11  # initial + 10

    def test_query_budget_stops_early(self):
        grammar = Grammar((6, 6))
        chain = MetropolisHastings(
            grammar,
            lambda p: make_eval(5.0, total_queries=100),
            beta=0.1,
            rng=np.random.default_rng(2),
        )
        _, trace = chain.run(50, query_budget=350)
        # initial (100) + proposals until >= 350
        assert trace.total_queries <= 450
        assert trace.iterations < 50

    def test_trace_accounting(self):
        grammar = Grammar((6, 6))
        chain = MetropolisHastings(
            grammar,
            lambda p: make_eval(5.0, total_queries=7),
            beta=0.1,
            rng=np.random.default_rng(3),
        )
        _, trace = chain.run(20)
        assert trace.total_queries == 7 * 21
        assert trace.proposals_accepted + trace.proposals_rejected == 20
        assert 0.0 <= trace.acceptance_rate <= 1.0

    def test_validation(self):
        grammar = Grammar((6, 6))
        with pytest.raises(ValueError):
            MetropolisHastings(
                grammar, lambda p: make_eval(1.0), beta=0.0,
                rng=np.random.default_rng(0),
            )


class TestOppsla:
    def test_synthesis_improves_over_time(self, linear_classifier, toy_pairs):
        config = OppslaConfig(
            max_iterations=15, beta=0.05, per_image_budget=100, seed=5
        )
        result = Oppsla(config).synthesize(linear_classifier, toy_pairs)
        assert isinstance(result, SynthesisResult)
        assert result.best_evaluation.successes >= 1
        # the best program is at least as good as the initial one
        initial = result.trace.accepted[0]
        assert (
            result.best_evaluation.successes,
            -result.best_evaluation.avg_queries,
        ) >= (initial.evaluation.successes, -initial.evaluation.avg_queries)

    def test_deterministic_given_seed(self, linear_classifier, toy_pairs):
        config = OppslaConfig(max_iterations=5, per_image_budget=60, seed=11)
        a = Oppsla(config).synthesize(linear_classifier, toy_pairs)
        b = Oppsla(config).synthesize(linear_classifier, toy_pairs)
        assert a.best_program == b.best_program
        assert a.total_queries == b.total_queries

    def test_rejects_empty_training_set(self, linear_classifier):
        with pytest.raises(ValueError):
            Oppsla().synthesize(linear_classifier, [])

    def test_rejects_mixed_shapes(self, linear_classifier):
        pairs = [
            (np.zeros((6, 6, 3)), 0),
            (np.zeros((5, 5, 3)), 0),
        ]
        with pytest.raises(ValueError):
            Oppsla().synthesize(linear_classifier, pairs)

    def test_attacker_uses_best_program(self, linear_classifier, toy_pairs):
        config = OppslaConfig(max_iterations=5, per_image_budget=60, seed=1)
        result = Oppsla(config).synthesize(linear_classifier, toy_pairs)
        attacker = result.attacker()
        assert attacker.program == result.best_program

    def test_save_and_load(self, tmp_path, linear_classifier, toy_pairs):
        config = OppslaConfig(max_iterations=3, per_image_budget=60, seed=2)
        result = Oppsla(config).synthesize(linear_classifier, toy_pairs)
        path = str(tmp_path / "program.json")
        result.save(path)
        loaded = SynthesisResult.load_program(path)
        assert loaded == result.best_program


class TestSynthesisTrace:
    def test_record_accept_carries_cumulative_queries(self):
        trace = SynthesisTrace()
        trace.total_queries = 123
        trace.record_accept(4, Program.constant(False), make_eval(9.0))
        assert trace.accepted[0].cumulative_queries == 123
        assert trace.accepted[0].iteration == 4
