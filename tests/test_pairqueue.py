"""Tests for the priority pair queue, including a property-based model check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairqueue import PairQueue
from repro.core.pairs import Pair, all_pairs


def small_queue():
    return PairQueue(
        [Pair(0, 0, 0), Pair(0, 1, 0), Pair(1, 0, 2), Pair(0, 0, 5), Pair(1, 1, 7)]
    )


class TestBasics:
    def test_pop_order_is_insertion_order(self):
        queue = small_queue()
        popped = [queue.pop() for _ in range(5)]
        assert popped == [
            Pair(0, 0, 0),
            Pair(0, 1, 0),
            Pair(1, 0, 2),
            Pair(0, 0, 5),
            Pair(1, 1, 7),
        ]

    def test_len_and_contains(self):
        queue = small_queue()
        assert len(queue) == 5
        assert Pair(1, 0, 2) in queue
        assert Pair(4, 4, 0) not in queue
        queue.pop()
        assert len(queue) == 4
        assert Pair(0, 0, 0) not in queue

    def test_pop_empty_raises(self):
        queue = PairQueue([])
        assert not queue
        with pytest.raises(IndexError):
            queue.pop()

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            PairQueue([Pair(0, 0, 0), Pair(0, 0, 0)])


class TestRemove:
    def test_remove_middle(self):
        queue = small_queue()
        queue.remove(Pair(1, 0, 2))
        assert Pair(1, 0, 2) not in queue
        popped = [queue.pop() for _ in range(4)]
        assert Pair(1, 0, 2) not in popped

    def test_remove_absent_raises(self):
        queue = small_queue()
        with pytest.raises(KeyError):
            queue.remove(Pair(4, 4, 4))

    def test_remove_then_pop_skips_lazily_deleted(self):
        queue = small_queue()
        queue.remove(Pair(0, 0, 0))  # the front element
        assert queue.pop() == Pair(0, 1, 0)


class TestPushBack:
    def test_push_back_moves_to_end(self):
        queue = small_queue()
        queue.push_back(Pair(0, 0, 0))
        popped = [queue.pop() for _ in range(5)]
        assert popped[-1] == Pair(0, 0, 0)
        assert popped[0] == Pair(0, 1, 0)

    def test_push_back_twice_keeps_single_copy(self):
        queue = small_queue()
        queue.push_back(Pair(0, 1, 0))
        queue.push_back(Pair(0, 1, 0))
        assert len(queue) == 5
        popped = [queue.pop() for _ in range(5)]
        assert popped.count(Pair(0, 1, 0)) == 1
        assert popped[-1] == Pair(0, 1, 0)

    def test_push_back_absent_raises(self):
        queue = small_queue()
        with pytest.raises(KeyError):
            queue.push_back(Pair(4, 4, 4))

    def test_relative_order_of_two_push_backs(self):
        queue = small_queue()
        queue.push_back(Pair(1, 0, 2))
        queue.push_back(Pair(0, 0, 0))
        popped = [queue.pop() for _ in range(5)]
        assert popped[-2:] == [Pair(1, 0, 2), Pair(0, 0, 0)]


class TestFirstAtLocation:
    def test_returns_earliest_at_location(self):
        queue = small_queue()
        assert queue.first_at_location((0, 0)) == Pair(0, 0, 0)

    def test_respects_push_back(self):
        queue = small_queue()
        queue.push_back(Pair(0, 0, 0))
        assert queue.first_at_location((0, 0)) == Pair(0, 0, 5)

    def test_empty_location(self):
        queue = small_queue()
        assert queue.first_at_location((3, 3)) is None
        queue.remove(Pair(1, 1, 7))
        assert queue.first_at_location((1, 1)) is None

    def test_corners_at(self):
        queue = small_queue()
        assert queue.corners_at((0, 0)) == {0, 5}
        queue.pop()
        assert queue.corners_at((0, 0)) == {5}


class TestModelCheck:
    """Compare the heap implementation against a naive list model."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_against_list_model(self, data):
        pairs = list(all_pairs((2, 3)))
        queue = PairQueue(pairs)
        model = list(pairs)
        for _ in range(data.draw(st.integers(0, 60))):
            if not model:
                break
            op = data.draw(st.sampled_from(["pop", "remove", "push_back", "first"]))
            if op == "pop":
                assert queue.pop() == model.pop(0)
            elif op == "remove":
                victim = data.draw(st.sampled_from(model))
                queue.remove(victim)
                model.remove(victim)
            elif op == "push_back":
                chosen = data.draw(st.sampled_from(model))
                queue.push_back(chosen)
                model.remove(chosen)
                model.append(chosen)
            else:
                location = data.draw(
                    st.tuples(st.integers(0, 1), st.integers(0, 2))
                )
                expected = next(
                    (pair for pair in model if pair.location == location), None
                )
                assert queue.first_at_location(location) == expected
            assert len(queue) == len(model)
        assert queue.to_list() == model
