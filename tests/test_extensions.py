"""Tests for the extension features: targeted attacks and few-pixel attacks."""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.multi_pixel import GreedyMultiPixel, MultiPixelResult
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig, margin
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.classifier.blackbox import CountingClassifier
from repro.core.dsl.ast import Program
from repro.core.sketch import OnePixelSketch
from repro.nn.functional import softmax

SHAPE = (6, 6, 3)


def gray_image():
    return np.full(SHAPE, 0.5)


class ThreeClassPixelClassifier:
    """Class 0 by default; pixel (1, 1) white -> class 1; black -> class 2."""

    def __init__(self):
        self.num_classes = 3

    def __call__(self, image):
        scores = np.array([0.8, 0.1, 0.1])
        if np.array_equal(image[1, 1], np.ones(3)):
            scores = np.array([0.1, 0.8, 0.1])
        elif np.array_equal(image[1, 1], np.zeros(3)):
            scores = np.array([0.1, 0.1, 0.8])
        return scores


class TestTargetedSketch:
    def test_targeted_hits_the_requested_class(self):
        classifier = ThreeClassPixelClassifier()
        sketch = OnePixelSketch(Program.constant(False))
        for target in (1, 2):
            result = sketch.attack(
                classifier, gray_image(), true_class=0, target_class=target
            )
            assert result.success
            assert result.adversarial_class == target

    def test_targeted_costs_at_least_untargeted(self):
        classifier = ThreeClassPixelClassifier()
        sketch = OnePixelSketch(Program.constant(False))
        untargeted = sketch.attack(classifier, gray_image(), true_class=0)
        targeted = sketch.attack(
            classifier, gray_image(), true_class=0, target_class=2
        )
        assert targeted.queries >= untargeted.queries

    def test_target_equal_true_class_rejected(self):
        sketch = OnePixelSketch(Program.constant(False))
        with pytest.raises(ValueError):
            sketch.attack(
                ThreeClassPixelClassifier(), gray_image(),
                true_class=0, target_class=0,
            )

    def test_targeted_failure_when_target_unreachable(self):
        """Only classes 1 and 2 are reachable; target class 0 from class 1."""
        classifier = ThreeClassPixelClassifier()
        image = gray_image()
        image[1, 1] = 1.0  # classified as 1
        sketch = OnePixelSketch(Program.constant(False))
        # perturbing (1,1) away from white restores class 0: reachable
        result = sketch.attack(classifier, image, true_class=1, target_class=0)
        assert result.success
        # but class 2 needs the same pixel black: also reachable
        result2 = sketch.attack(classifier, image, true_class=1, target_class=2)
        assert result2.success


class TestTargetedBaselines:
    def test_targeted_margin_sign(self):
        scores = np.array([0.6, 0.3, 0.1])
        assert margin(scores, 0, target_class=1) > 0  # not yet class 1
        assert margin(np.array([0.2, 0.7, 0.1]), 0, target_class=1) < 0

    def test_sparse_rs_targeted(self):
        classifier = ThreeClassPixelClassifier()
        attack = SparseRS(SparseRSConfig(seed=0, max_steps=5000))
        result = attack.attack(
            classifier, gray_image(), true_class=0, target_class=2
        )
        assert result.success
        assert result.adversarial_class == 2

    def test_suopa_targeted(self):
        # continuous colors need a tolerant trigger; use a soft classifier
        class SoftClassifier:
            def __call__(self, image):
                brightness = image[1, 1].sum()
                return softmax(
                    np.array([1.0, brightness - 1.0, 2.0 - brightness]) * 4
                )

        classifier = SoftClassifier()
        attack = SuOPA(SuOPAConfig(population_size=20, max_generations=50, seed=0))
        result = attack.attack(
            classifier, gray_image(), true_class=0, target_class=1
        )
        assert result.success
        assert result.adversarial_class == 1


class TwoPixelBackdoorClassifier:
    """Needs BOTH (1, 1) and (2, 2) white to flip -- one pixel cannot win."""

    def __call__(self, image):
        first = np.array_equal(image[1, 1], np.ones(3))
        second = np.array_equal(image[2, 2], np.ones(3))
        if first and second:
            return np.array([0.1, 0.9])
        # partial trigger: confidence dips, which guides the greedy probe
        if first or second:
            return np.array([0.6, 0.4])
        return np.array([0.9, 0.1])


class TestGreedyMultiPixel:
    def test_one_pixel_insufficient(self):
        classifier = TwoPixelBackdoorClassifier()
        result = FixedSketchAttack().attack(classifier, gray_image(), true_class=0)
        assert not result.success

    def test_two_pixels_succeed(self):
        classifier = TwoPixelBackdoorClassifier()
        attack = GreedyMultiPixel(FixedSketchAttack(), max_pixels=2, round_budget=288)
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert isinstance(result, MultiPixelResult)
        assert result.success
        assert result.num_pixels == 2
        locations = {pixel[0] for pixel in result.pixels}
        assert locations == {(1, 1), (2, 2)}

    def test_max_pixels_one_equals_base_attack(self):
        classifier = TwoPixelBackdoorClassifier()
        attack = GreedyMultiPixel(FixedSketchAttack(), max_pixels=1, round_budget=288)
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert not result.success

    def test_budget_respected(self):
        classifier = TwoPixelBackdoorClassifier()
        counting = CountingClassifier(classifier)
        attack = GreedyMultiPixel(FixedSketchAttack(), max_pixels=3, round_budget=288)
        result = attack.attack(counting, gray_image(), true_class=0, budget=50)
        assert result.queries <= 50
        assert not result.success

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedyMultiPixel(FixedSketchAttack(), max_pixels=0)
        with pytest.raises(ValueError):
            GreedyMultiPixel(FixedSketchAttack(), round_budget=0)

    def test_name(self):
        attack = GreedyMultiPixel(FixedSketchAttack(), max_pixels=2)
        assert attack.name == "Greedy-2px[Sketch+False]"
