"""Tests for multi-restart synthesis."""

import pytest

from repro.core.synthesis.oppsla import OppslaConfig
from repro.core.synthesis.restarts import RestartSummary, synthesize_with_restarts


class TestRestarts:
    def test_returns_best_of_chains(self, linear_classifier, toy_pairs):
        config = OppslaConfig(max_iterations=3, per_image_budget=60, seed=10)
        summary = synthesize_with_restarts(
            linear_classifier, toy_pairs, config=config, restarts=3
        )
        assert isinstance(summary, RestartSummary)
        assert len(summary.all_results) == 3
        assert summary.best in summary.all_results
        # best is at least as good as every chain by the declared ordering
        best_eval = summary.best.best_evaluation
        for result in summary.all_results:
            other = result.best_evaluation
            assert (best_eval.successes, -best_eval.penalized_avg_queries) >= (
                other.successes,
                -other.penalized_avg_queries,
            )

    def test_chains_use_distinct_seeds(self, linear_classifier, toy_pairs):
        config = OppslaConfig(max_iterations=2, per_image_budget=60, seed=0)
        summary = synthesize_with_restarts(
            linear_classifier, toy_pairs, config=config, restarts=2
        )
        seeds = {result.config.seed for result in summary.all_results}
        assert seeds == {0, 1}

    def test_total_queries_accumulates(self, linear_classifier, toy_pairs):
        config = OppslaConfig(max_iterations=2, per_image_budget=60, seed=0)
        summary = synthesize_with_restarts(
            linear_classifier, toy_pairs, config=config, restarts=2
        )
        assert summary.total_queries == sum(
            result.total_queries for result in summary.all_results
        )

    def test_single_restart_equals_oppsla(self, linear_classifier, toy_pairs):
        from repro.core.synthesis.oppsla import Oppsla

        config = OppslaConfig(max_iterations=3, per_image_budget=60, seed=4)
        summary = synthesize_with_restarts(
            linear_classifier, toy_pairs, config=config, restarts=1
        )
        direct = Oppsla(config).synthesize(linear_classifier, toy_pairs)
        assert summary.best.best_program == direct.best_program

    def test_validation(self, linear_classifier, toy_pairs):
        with pytest.raises(ValueError):
            synthesize_with_restarts(
                linear_classifier, toy_pairs, restarts=0
            )
