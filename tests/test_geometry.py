"""Tests for the distance metrics and RGB-corner machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import (
    NUM_CORNERS,
    RGB_CORNERS,
    center_distance,
    corner_distances,
    corner_ranking,
    image_center,
    location_distance,
    max_center_distance,
    pixel_distance,
)


class TestRGBCorners:
    def test_eight_corners(self):
        assert RGB_CORNERS.shape == (8, 3)
        assert NUM_CORNERS == 8

    def test_corners_are_cube_vertices(self):
        as_tuples = {tuple(corner) for corner in RGB_CORNERS}
        expected = {(r, g, b) for r in (0.0, 1.0) for g in (0.0, 1.0) for b in (0.0, 1.0)}
        assert as_tuples == expected

    def test_corner_bit_encoding(self):
        # corner k has channel c equal to bit c of k
        for k in range(8):
            assert RGB_CORNERS[k][0] == (k >> 0) & 1
            assert RGB_CORNERS[k][1] == (k >> 1) & 1
            assert RGB_CORNERS[k][2] == (k >> 2) & 1


class TestPixelDistance:
    def test_l1(self):
        assert pixel_distance([0, 0, 0], [1, 1, 1]) == pytest.approx(3.0)
        assert pixel_distance([0.5, 0.5, 0.5], [0.5, 0.5, 0.5]) == 0.0
        assert pixel_distance([0.2, 0.0, 0.9], [0.5, 0.1, 0.4]) == pytest.approx(0.9)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pixel_distance([0, 0], [1, 1, 1])

    @given(
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
    )
    def test_symmetry(self, p1, p2):
        assert pixel_distance(p1, p2) == pytest.approx(pixel_distance(p2, p1))

    @given(
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
    )
    def test_triangle_inequality(self, p1, p2, p3):
        direct = pixel_distance(p1, p3)
        detour = pixel_distance(p1, p2) + pixel_distance(p2, p3)
        assert direct <= detour + 1e-12


class TestLocationDistance:
    def test_linf(self):
        assert location_distance((0, 0), (3, 1)) == 3
        assert location_distance((2, 2), (2, 2)) == 0
        assert location_distance((5, 0), (4, 7)) == 7

    @given(
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
    )
    def test_symmetry_and_nonnegativity(self, l1, l2):
        assert location_distance(l1, l2) == location_distance(l2, l1)
        assert location_distance(l1, l2) >= 0
        assert (location_distance(l1, l2) == 0) == (l1 == l2)


class TestCornerRanking:
    def test_black_pixel_farthest_is_white(self):
        ranking = corner_ranking(np.zeros(3))
        # white = corner 7 (all bits set)
        assert ranking[0] == 7
        # black = corner 0 is closest, so ranked last
        assert ranking[-1] == 0

    def test_ranking_is_permutation(self):
        ranking = corner_ranking(np.array([0.3, 0.7, 0.2]))
        assert sorted(ranking) == list(range(8))

    def test_descending_distances(self):
        pixel = np.array([0.1, 0.8, 0.45])
        ranking = corner_ranking(pixel)
        distances = corner_distances(pixel)[ranking]
        assert all(distances[i] >= distances[i + 1] for i in range(7))

    def test_tie_break_deterministic(self):
        # a gray pixel is equidistant from every corner
        ranking = corner_ranking(np.full(3, 0.5))
        assert list(ranking) == list(range(8))

    @given(st.lists(st.floats(0, 1), min_size=3, max_size=3))
    def test_always_a_permutation(self, pixel):
        ranking = corner_ranking(np.array(pixel))
        assert sorted(ranking) == list(range(8))


class TestCenterDistance:
    def test_odd_grid_center_is_zero(self):
        assert center_distance((1, 1), (3, 3)) == 0.0

    def test_even_grid_fractional_center(self):
        assert image_center((4, 4)) == (1.5, 1.5)
        assert center_distance((0, 0), (4, 4)) == pytest.approx(1.5)
        assert center_distance((2, 2), (4, 4)) == pytest.approx(0.5)

    def test_corner_attains_max(self):
        shape = (7, 5)
        assert center_distance((0, 0), shape) == pytest.approx(
            max_center_distance(shape)
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            image_center((0, 4))

    @given(
        st.integers(1, 30),
        st.integers(1, 30),
        st.data(),
    )
    def test_bounded_by_max(self, d1, d2, data):
        i = data.draw(st.integers(0, d1 - 1))
        j = data.draw(st.integers(0, d2 - 1))
        assert 0 <= center_distance((i, j), (d1, d2)) <= max_center_distance((d1, d2))
