"""Tests for losses, optimizers, the trainer, and serialization."""

import numpy as np
import pytest

from repro.nn.functional import log_softmax, one_hot, softmax
from repro.nn.layers.activation import ReLU
from repro.nn.layers.container import Sequential
from repro.nn.layers.linear import Linear
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.serialization import load_state, save_state
from repro.nn.trainer import TrainConfig, Trainer


class TestFunctional:
    def test_softmax_sums_to_one(self):
        logits = np.random.default_rng(0).normal(size=(4, 7))
        probs = softmax(logits, axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_softmax_stability(self):
        probs = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).normal(size=(3, 5))
        assert np.allclose(log_softmax(logits, axis=1), np.log(softmax(logits, axis=1)))

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_validation(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([[0, 1]]), 3)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        assert loss_fn(logits, labels) < 1e-6

    def test_uniform_prediction_log_c(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((5, 4))
        labels = np.zeros(5, dtype=int)
        assert loss_fn(logits, labels) == pytest.approx(np.log(4))

    def test_gradient_matches_numeric(self):
        loss_fn = CrossEntropyLoss(label_smoothing=0.1)
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 3, 1])
        loss_fn(logits, labels)
        analytic = loss_fn.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(3):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric[i, j] = (
                    loss_fn(plus, labels) - loss_fn(minus, labels)
                ) / (2 * eps)
        loss_fn(logits, labels)  # restore cache
        assert np.allclose(analytic, numeric, atol=1e-7)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_shape_validation(self):
        loss_fn = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn(np.zeros((3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss_fn(np.zeros(4), np.zeros(1, dtype=int))


def quadratic_parameter():
    """A parameter minimizing ``sum(x^2)`` -- gradient is ``2x``."""
    return Parameter(np.array([3.0, -4.0]))


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        param = quadratic_parameter()
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            param.grad += 2 * param.data
            optimizer.step()
        assert np.allclose(param.data, 0.0, atol=1e-6)

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            param = quadratic_parameter()
            optimizer = SGD([param], lr=0.02, momentum=momentum)
            for _ in range(40):
                optimizer.zero_grad()
                param.grad += 2 * param.data
                optimizer.step()
            return np.abs(param.data).sum()

        assert run(0.9) < run(0.0)

    def test_adam_converges_on_quadratic(self):
        param = quadratic_parameter()
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            param.grad += 2 * param.data
            optimizer.step()
        assert np.allclose(param.data, 0.0, atol=1e-3)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()  # zero task gradient: only decay acts
        optimizer.step()
        assert param.data[0] < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([quadratic_parameter()], lr=0.0)
        with pytest.raises(ValueError):
            Adam([quadratic_parameter()], betas=(1.0, 0.9))


class TestTrainer:
    def make_blobs(self, n=120, seed=0):
        """Two Gaussian blobs, linearly separable."""
        rng = np.random.default_rng(seed)
        x0 = rng.normal(-1.0, 0.4, size=(n // 2, 4))
        x1 = rng.normal(1.0, 0.4, size=(n // 2, 4))
        x = np.vstack([x0, x1])
        y = np.array([0] * (n // 2) + [1] * (n // 2))
        return x, y

    def make_model(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))

    def test_fit_reaches_high_accuracy(self):
        x, y = self.make_blobs()
        model = self.make_model()
        trainer = Trainer(model, TrainConfig(epochs=20, batch_size=16, lr=0.01))
        history = trainer.fit(x, y)
        assert history[-1].accuracy > 0.95
        assert history[-1].loss < history[0].loss

    def test_evaluate(self):
        x, y = self.make_blobs()
        model = self.make_model()
        trainer = Trainer(model, TrainConfig(epochs=15, batch_size=16, lr=0.01))
        trainer.fit(x, y)
        assert trainer.evaluate(x, y) > 0.95

    def test_deterministic(self):
        x, y = self.make_blobs()
        accs = []
        for _ in range(2):
            model = self.make_model(seed=3)
            trainer = Trainer(model, TrainConfig(epochs=3, seed=5))
            trainer.fit(x, y)
            accs.append(trainer.evaluate(x, y))
        assert accs[0] == accs[1]

    def test_lr_decay_applied(self):
        x, y = self.make_blobs(n=32)
        model = self.make_model()
        config = TrainConfig(epochs=4, lr=0.01, lr_decay_epochs=[2], lr_decay_factor=0.1)
        trainer = Trainer(model, config)
        trainer.fit(x, y)
        assert trainer.optimizer.lr == pytest.approx(0.001)

    def test_length_mismatch(self):
        model = self.make_model()
        trainer = Trainer(model, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((5, 4)), np.zeros(4, dtype=int))

    def test_augmented_training_runs(self):
        """Augmentation requires image-shaped inputs; check the plumbing."""
        from repro.models.vgg import MiniVGG

        rng = np.random.default_rng(10)
        images = rng.uniform(size=(24, 3, 8, 8))
        labels = rng.integers(0, 3, size=24)
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=0)
        trainer = Trainer(model, TrainConfig(epochs=2, batch_size=8, augment=True))
        history = trainer.fit(images, labels)
        assert len(history) == 2
        assert np.isfinite(history[-1].loss)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(4)
        model = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        path = tmp_path / "weights.npz"
        save_state(model, path)
        clone = Sequential(
            Linear(3, 5, rng=np.random.default_rng(99)),
            ReLU(),
            Linear(5, 2, rng=np.random.default_rng(98)),
        )
        load_state(clone, path)
        x = rng.normal(size=(2, 3))
        assert np.allclose(model.forward(x), clone.forward(x))

    def test_missing_key_rejected(self, tmp_path):
        rng = np.random.default_rng(5)
        model = Sequential(Linear(3, 2, rng=rng))
        path = tmp_path / "weights.npz"
        save_state(model, path)
        bigger = Sequential(Linear(3, 2, rng=rng), Linear(2, 2, rng=rng))
        with pytest.raises(KeyError):
            load_state(bigger, path)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(6)
        model = Sequential(Linear(3, 2, rng=rng))
        state = model.state_dict()
        state["layer0.weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestModule:
    def test_named_parameters_prefixes(self):
        rng = np.random.default_rng(7)
        model = Sequential(Linear(2, 3, rng=rng))
        names = dict(model.named_parameters())
        assert set(names) == {"layer0.weight", "layer0.bias"}

    def test_train_eval_propagate(self):
        rng = np.random.default_rng(8)
        model = Sequential(Sequential(Linear(2, 2, rng=rng)))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad(self):
        param = Parameter(np.ones(3))
        param.grad += 5.0
        param.zero_grad()
        assert np.array_equal(param.grad, np.zeros(3))

    def test_num_parameters(self):
        rng = np.random.default_rng(9)
        model = Linear(3, 4, rng=rng)
        assert model.num_parameters() == 3 * 4 + 4
