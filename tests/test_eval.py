"""Tests for the evaluation harness (runner, curves, transfer, ablation)."""

import math

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.core.dsl.ast import Program
from repro.eval.ablation import ablation_table
from repro.eval.reporting import (
    format_ablation,
    format_success_curves,
    format_synthesis_study,
    format_table,
    format_transfer,
)
from repro.eval.runner import AttackRunSummary, attack_dataset
from repro.eval.success_curves import success_curves
from repro.eval.synthesis_study import synthesis_study
from repro.eval.transfer import transfer_matrix
from repro.core.synthesis.oppsla import OppslaConfig


def ok(queries):
    return AttackResult(
        success=True, queries=queries, location=(0, 0), perturbation=np.ones(3)
    )


def fail(queries):
    return AttackResult(success=False, queries=queries)


class TestAttackRunSummary:
    def make(self):
        results = [ok(5), ok(50), fail(100), ok(500)]
        return AttackRunSummary("test", results, budget=1000)

    def test_success_rate(self):
        summary = self.make()
        assert summary.success_rate == pytest.approx(0.75)
        assert summary.successes == 3
        assert summary.total_images == 4

    def test_success_rate_at(self):
        summary = self.make()
        assert summary.success_rate_at(4) == 0.0
        assert summary.success_rate_at(5) == pytest.approx(0.25)
        assert summary.success_rate_at(50) == pytest.approx(0.5)
        assert summary.success_rate_at(10_000) == pytest.approx(0.75)

    def test_avg_and_median(self):
        summary = self.make()
        assert summary.avg_queries == pytest.approx((5 + 50 + 500) / 3)
        assert summary.median_queries == 50.0

    def test_empty_results(self):
        summary = AttackRunSummary("none", [], budget=None)
        assert summary.success_rate == 0.0
        assert math.isinf(summary.avg_queries)
        assert math.isinf(summary.median_queries)

    def test_curve_monotone(self):
        summary = self.make()
        curve = summary.curve([1, 10, 100, 1000])
        assert curve == sorted(curve)

    def test_attack_dataset_runs_each_pair(self, linear_classifier, toy_pairs):
        summary = attack_dataset(
            FixedSketchAttack(), linear_classifier, toy_pairs, budget=60
        )
        assert summary.total_images == len(toy_pairs)
        for result in summary.results:
            assert result.queries <= 60


class _BudgetLeakingAttack:
    """A non-compliant attack that lets QueryBudgetExceeded escape.

    Compliant attacks wrap the classifier in their own
    ``CountingClassifier`` and catch the exhaustion signal; this one
    hammers the classifier raw until the caller-supplied cap trips, the
    failure mode the dataset runner must degrade gracefully around.
    """

    name = "BudgetLeaker"

    def attack(self, classifier, image, true_class, budget=None, target_class=None):
        from repro.classifier.blackbox import CountingClassifier

        counting = CountingClassifier(classifier, budget=budget)
        while True:  # no exception handling on purpose
            counting(image)


class TestBudgetExhaustionGracefulness:
    def test_escaping_budget_exception_degrades_one_image(
        self, linear_classifier, toy_pairs
    ):
        """A QueryBudgetExceeded escaping one attack must not kill the
        dataset run: the image is recorded as a failure at full budget
        with an error tag and the remaining images still run."""
        summary = attack_dataset(
            _BudgetLeakingAttack(), linear_classifier, toy_pairs, budget=25
        )
        assert summary.total_images == len(toy_pairs)
        assert summary.successes == 0
        for result in summary.results:
            assert not result.success
            assert result.queries == 25
            assert result.error == "QueryBudgetExceeded"
        assert summary.to_dict()["errors"] == {
            "QueryBudgetExceeded": len(toy_pairs)
        }

    def test_unbudgeted_escape_uses_exception_budget(self, linear_classifier):
        """Without a caller budget the degraded result reports the
        budget the exception itself carried."""
        from repro.attacks.base import AttackResult
        from repro.classifier.blackbox import QueryBudgetExceeded
        from repro.runtime.tasks import run_single_attack

        class _Raises:
            name = "Raises"

            def attack(self, classifier, image, true_class, budget=None,
                       target_class=None):
                raise QueryBudgetExceeded(17)

        result = run_single_attack(
            _Raises(), linear_classifier, np.zeros((6, 6, 3)), 0, None
        )
        assert isinstance(result, AttackResult)
        assert not result.success
        assert result.queries == 17
        assert result.error == "QueryBudgetExceeded"


class TestSuccessCurves:
    def test_runs_all_attacks(self, linear_classifier, toy_pairs):
        attacks = [
            FixedSketchAttack(),
            SparseRS(SparseRSConfig(seed=0)),
        ]
        curves = success_curves(
            attacks, linear_classifier, toy_pairs, thresholds=(10, 60), budget=60
        )
        assert set(curves) == {"Sketch+False", "Sparse-RS"}
        for curve in curves.values():
            assert len(curve.rates) == 2
            assert curve.rates == sorted(curve.rates)

    def test_requires_thresholds(self, linear_classifier, toy_pairs):
        with pytest.raises(ValueError):
            success_curves([FixedSketchAttack()], linear_classifier, toy_pairs, ())


class TestTransfer:
    def test_matrix_structure(self, linear_classifier, toy_pairs):
        programs = {"a": Program.constant(False), "b": Program.constant(True)}
        classifiers = {"a": linear_classifier, "b": linear_classifier}
        pairs = {"a": toy_pairs[:4], "b": toy_pairs[4:8]}
        matrix = transfer_matrix(programs, classifiers, pairs, budget=60)
        assert matrix.names == ["a", "b"]
        for target in "ab":
            for source in "ab":
                assert matrix.entry(target, source) > 0
        assert matrix.diagonal("a") == matrix.entry("a", "a")

    def test_transfer_overhead(self, linear_classifier, toy_pairs):
        programs = {"a": Program.constant(False), "b": Program.constant(False)}
        classifiers = {"a": linear_classifier, "b": linear_classifier}
        pairs = {"a": toy_pairs[:4], "b": toy_pairs[:4]}
        matrix = transfer_matrix(programs, classifiers, pairs, budget=60)
        # identical programs: overhead is exactly 1
        assert matrix.transfer_overhead("a", "b") == pytest.approx(1.0)

    def test_key_mismatch_rejected(self, linear_classifier, toy_pairs):
        with pytest.raises(ValueError):
            transfer_matrix(
                {"a": Program.constant(False)},
                {"b": linear_classifier},
                {"a": toy_pairs},
            )


class TestAblation:
    def test_rows(self, linear_classifier, toy_pairs):
        rows = ablation_table(
            "toy",
            linear_classifier,
            [FixedSketchAttack(), SparseRS(SparseRSConfig(seed=0))],
            toy_pairs,
            budget=60,
        )
        assert [row.approach for row in rows] == ["Sketch+False", "Sparse-RS"]
        for row in rows:
            assert row.classifier == "toy"
            assert 0.0 <= row.success_rate <= 1.0


class TestSynthesisStudy:
    def test_study_points(self, linear_classifier, toy_pairs):
        study = synthesis_study(
            linear_classifier,
            toy_pairs[:6],
            toy_pairs[6:],
            config=OppslaConfig(max_iterations=4, per_image_budget=60, seed=0),
            replay_budget=60,
        )
        assert study.points, "at least the initial program is accepted"
        assert study.points[0].iteration == 0
        queries = [point.synthesis_queries for point in study.points]
        assert queries == sorted(queries)
        assert study.fixed_avg_queries > 0
        assert study.improvement_over_fixed > 0


class TestAsciiChart:
    def test_renders_all_series(self):
        from repro.eval.reporting import render_ascii_chart

        text = render_ascii_chart(
            {"alpha": [(1, 0.1), (10, 0.5)], "beta": [(1, 0.2), (10, 0.3)]},
            width=30,
            height=6,
            log_x=True,
        )
        assert "A" in text and "B" in text
        assert "log10(x)" in text
        assert "alpha" in text and "beta" in text

    def test_handles_empty_and_degenerate(self):
        from repro.eval.reporting import render_ascii_chart

        assert render_ascii_chart({}) == "(no data)"
        assert render_ascii_chart({"a": []}) == "(no data)"
        # a single point must not divide by zero
        text = render_ascii_chart({"a": [(5.0, 1.0)]})
        assert "A" in text

    def test_ignores_non_finite_points(self):
        from repro.eval.reporting import render_ascii_chart

        text = render_ascii_chart(
            {"a": [(1.0, 1.0), (2.0, float("inf")), (3.0, 2.0)]}
        )
        assert "A" in text


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_success_curves(self, linear_classifier, toy_pairs):
        curves = success_curves(
            [FixedSketchAttack()], linear_classifier, toy_pairs,
            thresholds=(10, 60), budget=60,
        )
        text = format_success_curves("toy", curves)
        assert "Figure 3" in text and "Sketch+False" in text and "q<=10" in text

    def test_format_transfer(self, linear_classifier, toy_pairs):
        matrix = transfer_matrix(
            {"a": Program.constant(False)},
            {"a": linear_classifier},
            {"a": toy_pairs[:3]},
            budget=60,
        )
        text = format_transfer(matrix)
        assert "Table 1" in text

    def test_format_ablation_handles_inf(self):
        from repro.eval.ablation import AblationRow

        rows = [
            AblationRow("c", "never-succeeds", math.inf, math.inf, 2048.0, 0.0),
        ]
        text = format_ablation(rows)
        assert "-" in text

    def test_format_synthesis_study(self, linear_classifier, toy_pairs):
        study = synthesis_study(
            linear_classifier,
            toy_pairs[:4],
            toy_pairs[4:6],
            config=OppslaConfig(max_iterations=2, per_image_budget=60, seed=0),
            replay_budget=60,
        )
        text = format_synthesis_study(study)
        assert "Figure 4" in text and "fixed-prioritization" in text
