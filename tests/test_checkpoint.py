"""Checkpoint/resume: the store, campaign resume, MH resume, torn tails.

The central claims under test (ISSUE 5 acceptance criteria):

- a killed-and-resumed attack campaign produces an
  :class:`~repro.eval.runner.AttackRunSummary` bit-identical to an
  uninterrupted run;
- a resumed MH synthesis chain reproduces the exact accepted-program
  sequence of an uninterrupted chain;
- crash residue (a torn final JSONL line) degrades to re-executing one
  unit, never to an error or to corrupted state.
"""

import json
import os

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import SmoothLinearClassifier
from repro.core.synthesis.mh import latest_chain_snapshot
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig
from repro.eval.runner import attack_dataset, resume_campaign
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    campaign_manifest,
    campaign_record,
    decode_attack_result,
    encode_attack_result,
    encode_rng_state,
    load_campaign,
    restore_rng_state,
)
from repro.runtime.events import RunLog
from repro.runtime.faults import FaultPolicy
from repro.runtime.pool import WorkerPool, task_seed
from repro.testkit.faults import FaultSchedule, FlakyClassifier, InjectedFault
from repro.testkit.kill import summary_fingerprint, toy_campaign


# ----------------------------------------------------------------------
# the store itself
# ----------------------------------------------------------------------


class TestCheckpointStore:
    def test_append_and_read_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append({"kind": "a", "n": 1})
        store.append({"kind": "b", "n": 2})
        records, truncated = store.records()
        assert records == [{"kind": "a", "n": 1}, {"kind": "b", "n": 2}]
        assert truncated is False

    def test_fresh_store_is_empty(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.records() == ([], False)
        assert store.manifest() is None

    def test_torn_tail_is_dropped_and_flagged(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append({"n": 1})
        store.append({"n": 2})
        store.close()
        with open(store.records_path, "a") as handle:
            handle.write('{"n": 3, "tru')  # crash mid-append
        records, truncated = store.records()
        assert records == [{"n": 1}, {"n": 2}]
        assert truncated is True

    def test_append_repairs_torn_tail(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append({"n": 1})
        store.close()
        with open(store.records_path, "a") as handle:
            handle.write('{"n": 2, "tru')
        store = CheckpointStore(str(tmp_path))
        store.append({"n": 3})
        records, truncated = store.records()
        assert records == [{"n": 1}, {"n": 3}]
        assert truncated is False

    def test_mid_file_corruption_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.records_path, "w") as handle:
            handle.write('{"n": 1}\nnot json at all\n{"n": 3}\n')
        with pytest.raises(CheckpointError, match="corrupt record"):
            store.records()

    def test_manifest_reconcile_fresh_then_match(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        manifest = {"kind": "test", "seed": 7}
        assert store.reconcile_manifest(manifest) == manifest
        assert store.reconcile_manifest(manifest) == manifest

    def test_manifest_mismatch_names_differing_fields(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.reconcile_manifest({"kind": "test", "seed": 7, "budget": 10})
        with pytest.raises(CheckpointMismatch, match="budget, seed"):
            store.reconcile_manifest({"kind": "test", "seed": 8, "budget": 11})

    def test_clear_records(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append({"n": 1})
        store.clear_records()
        assert store.records() == ([], False)
        store.append({"n": 2})
        assert store.records() == ([{"n": 2}], False)

    def test_context_manager_closes_handle(self, tmp_path):
        with CheckpointStore(str(tmp_path)) as store:
            store.append({"n": 1})
        assert store._handle is None


class TestCodecs:
    def test_attack_result_roundtrip_is_lossless(self):
        result = AttackResult(
            success=True,
            queries=37,
            location=(2, 3),
            perturbation=np.array([1.0, 0.0, 1.0]),
            adversarial_class=2,
        )
        decoded = decode_attack_result(
            json.loads(json.dumps(encode_attack_result(result)))
        )
        assert decoded.success == result.success
        assert decoded.queries == result.queries
        assert decoded.location == result.location
        assert np.array_equal(decoded.perturbation, result.perturbation)
        assert decoded.adversarial_class == result.adversarial_class
        assert decoded.error is None

    def test_failed_result_roundtrip(self):
        result = AttackResult(success=False, queries=64, error="timeout:Injected")
        decoded = decode_attack_result(encode_attack_result(result))
        assert decoded.success is False
        assert decoded.perturbation is None
        assert decoded.error == "timeout:Injected"

    def test_rng_state_roundtrip_continues_stream_bit_identically(self):
        rng = np.random.default_rng(5)
        rng.uniform(size=100)
        state = json.loads(json.dumps(encode_rng_state(rng)))
        expected = rng.uniform(size=50).tolist()
        fresh = np.random.default_rng(0)
        restore_rng_state(fresh, state)
        assert fresh.uniform(size=50).tolist() == expected

    def test_restore_refuses_wrong_bit_generator(self):
        rng = np.random.default_rng(0)
        state = encode_rng_state(rng)
        state["bit_generator"] = "MT19937"
        with pytest.raises(CheckpointMismatch, match="MT19937"):
            restore_rng_state(np.random.default_rng(0), state)


# ----------------------------------------------------------------------
# campaign resume: bit-identical summaries across cut points
# ----------------------------------------------------------------------


def _truncate_records(directory: str, keep_lines: int, torn_tail: str = ""):
    """Simulate a crash by keeping only the first ``keep_lines`` records."""
    path = os.path.join(directory, "records.jsonl")
    with open(path) as handle:
        lines = handle.readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[:keep_lines])
        handle.write(torn_tail)


class TestCampaignResume:
    @pytest.fixture(scope="class")
    def golden(self):
        return summary_fingerprint(toy_campaign())

    @pytest.mark.parametrize("cut", [0, 1, 5, 11])
    def test_resume_is_bit_identical_at_every_cut_point(
        self, tmp_path, golden, cut
    ):
        toy_campaign(checkpoint=str(tmp_path))
        _truncate_records(str(tmp_path), cut)
        resumed = toy_campaign(checkpoint=str(tmp_path))
        assert summary_fingerprint(resumed) == golden

    def test_resume_after_torn_tail_is_bit_identical(self, tmp_path, golden):
        toy_campaign(checkpoint=str(tmp_path))
        _truncate_records(str(tmp_path), 4, torn_tail='{"kind": "attack_res')
        resumed = toy_campaign(checkpoint=str(tmp_path))
        assert summary_fingerprint(resumed) == golden

    def test_completed_campaign_reruns_for_free(self, tmp_path, golden):
        first = toy_campaign(checkpoint=str(tmp_path))

        def exploding(image):  # no queries may be re-posed
            raise AssertionError("resume of a complete campaign queried")

        from repro.eval.runner import attack_dataset as run

        classifier = SmoothLinearClassifier(
            image_shape=(8, 8, 3), num_classes=4, seed=0
        )
        rng = np.random.default_rng(0)
        pairs = []
        while len(pairs) < 12:
            image = rng.uniform(0.0, 1.0, size=(8, 8, 3))
            pairs.append((image, int(np.argmax(classifier(image)))))
        resumed = run(
            FixedSketchAttack(),
            exploding,
            pairs,
            budget=64,
            checkpoint=str(tmp_path),
            base_seed=0,
        )
        assert summary_fingerprint(resumed) == summary_fingerprint(first)

    @pytest.mark.parametrize("die_at_query", [60, 150, 400])
    def test_crash_mid_campaign_then_resume(self, tmp_path, golden, die_at_query):
        """A backend that dies partway through leaves a usable store."""
        classifier = SmoothLinearClassifier(
            image_shape=(8, 8, 3), num_classes=4, seed=0
        )
        rng = np.random.default_rng(0)
        pairs = []
        while len(pairs) < 12:
            image = rng.uniform(0.0, 1.0, size=(8, 8, 3))
            pairs.append((image, int(np.argmax(classifier(image)))))

        flaky = FlakyClassifier(classifier, FaultSchedule.at(die_at_query))
        with pytest.raises(InjectedFault):
            attack_dataset(
                FixedSketchAttack(),
                flaky,
                pairs,
                budget=64,
                checkpoint=str(tmp_path),
                base_seed=0,
            )
        _, partial, _, _, _ = load_campaign(CheckpointStore(str(tmp_path)))
        assert 0 < len(partial) < 12
        resumed = toy_campaign(checkpoint=str(tmp_path))
        assert summary_fingerprint(resumed) == golden

    def test_resume_emits_replayed_telemetry(self, tmp_path):
        toy_campaign(checkpoint=str(tmp_path))
        _truncate_records(str(tmp_path), 5)
        log = RunLog()
        classifier = SmoothLinearClassifier(
            image_shape=(8, 8, 3), num_classes=4, seed=0
        )
        rng = np.random.default_rng(0)
        pairs = []
        while len(pairs) < 12:
            image = rng.uniform(0.0, 1.0, size=(8, 8, 3))
            pairs.append((image, int(np.argmax(classifier(image)))))
        attack_dataset(
            FixedSketchAttack(),
            classifier,
            pairs,
            budget=64,
            run_log=log,
            checkpoint=str(tmp_path),
            base_seed=0,
        )
        (resume_event,) = log.of_type("campaign_resume")
        assert resume_event["completed"] == 5
        assert resume_event["remaining"] == 7
        assert resume_event["replayed_queries"] == 0
        results = log.of_type("attack_result")
        assert len(results) == 12
        assert sum(1 for e in results if e.get("replayed")) == 5

    def test_resume_under_executor_path(self, tmp_path, golden):
        toy_campaign(checkpoint=str(tmp_path))
        _truncate_records(str(tmp_path), 6)
        classifier = SmoothLinearClassifier(
            image_shape=(8, 8, 3), num_classes=4, seed=0
        )
        rng = np.random.default_rng(0)
        pairs = []
        while len(pairs) < 12:
            image = rng.uniform(0.0, 1.0, size=(8, 8, 3))
            pairs.append((image, int(np.argmax(classifier(image)))))
        pool = WorkerPool(workers=0)  # inline execution, executor code path
        resumed = attack_dataset(
            FixedSketchAttack(),
            classifier,
            pairs,
            budget=64,
            executor=pool,
            checkpoint=str(tmp_path),
            base_seed=0,
        )
        assert summary_fingerprint(resumed) == golden

    def test_wrong_budget_refuses_resume(self, tmp_path):
        toy_campaign(checkpoint=str(tmp_path), budget=64)
        with pytest.raises(CheckpointMismatch, match="budget"):
            toy_campaign(checkpoint=str(tmp_path), budget=32)

    def test_wrong_base_seed_refuses_resume(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write_manifest(campaign_manifest("Sketch+False", 12, 64, 0))
        # a record whose seed was derived from a different base seed
        store.append(
            campaign_record(
                3, task_seed(99, 3), AttackResult(success=False, queries=64)
            )
        )
        with pytest.raises(CheckpointMismatch, match="re-derive"):
            resume_campaign(store, "Sketch+False", 12, 64, 0)

    def test_out_of_range_index_refuses_resume(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write_manifest(campaign_manifest("Sketch+False", 12, 64, 0))
        store.append(
            campaign_record(
                40, task_seed(0, 40), AttackResult(success=False, queries=64)
            )
        )
        with pytest.raises(CheckpointMismatch, match="outside"):
            resume_campaign(store, "Sketch+False", 12, 64, 0)


# ----------------------------------------------------------------------
# MH chain resume: identical accepted-program sequences
# ----------------------------------------------------------------------


def _chain_fingerprint(result):
    return {
        "accepted": [
            (entry.iteration, entry.program.to_dict(), entry.cumulative_queries)
            for entry in result.trace.accepted
        ],
        "final": result.final_program.to_dict(),
        "best": result.best_program.to_dict(),
        "total_queries": result.total_queries,
        "iterations": result.trace.iterations,
    }


class TestSynthesisResume:
    @pytest.fixture(scope="class")
    def synthesis_setup(self):
        classifier = SmoothLinearClassifier(
            image_shape=(6, 6, 3), num_classes=3, seed=1
        )
        rng = np.random.default_rng(1)
        pairs = []
        while len(pairs) < 4:
            image = rng.uniform(0.0, 1.0, size=(6, 6, 3))
            pairs.append((image, int(np.argmax(classifier(image)))))
        config = OppslaConfig(max_iterations=8, per_image_budget=64, seed=3)
        return classifier, pairs, config

    @pytest.fixture(scope="class")
    def golden_chain(self, synthesis_setup):
        classifier, pairs, config = synthesis_setup
        return _chain_fingerprint(Oppsla(config).synthesize(classifier, pairs))

    def test_checkpointing_does_not_perturb_the_chain(
        self, tmp_path, synthesis_setup, golden_chain
    ):
        classifier, pairs, config = synthesis_setup
        result = Oppsla(config).synthesize(
            classifier, pairs, checkpoint=str(tmp_path), checkpoint_interval=3
        )
        assert _chain_fingerprint(result) == golden_chain

    @pytest.mark.parametrize("keep_snapshots", [1, 2, 3])
    def test_resumed_chain_reproduces_accepted_sequence(
        self, tmp_path, synthesis_setup, golden_chain, keep_snapshots
    ):
        classifier, pairs, config = synthesis_setup
        Oppsla(config).synthesize(
            classifier, pairs, checkpoint=str(tmp_path), checkpoint_interval=2
        )
        # keep an early prefix of snapshots == crash partway through
        _truncate_records(str(tmp_path), keep_snapshots)
        resumed = Oppsla(config).synthesize(
            classifier,
            pairs,
            checkpoint=str(tmp_path),
            resume=True,
            checkpoint_interval=2,
        )
        assert _chain_fingerprint(resumed) == golden_chain

    def test_resume_after_torn_snapshot_falls_back(
        self, tmp_path, synthesis_setup, golden_chain
    ):
        classifier, pairs, config = synthesis_setup
        Oppsla(config).synthesize(
            classifier, pairs, checkpoint=str(tmp_path), checkpoint_interval=2
        )
        _truncate_records(str(tmp_path), 2, torn_tail='{"kind": "chain_snap')
        resumed = Oppsla(config).synthesize(
            classifier,
            pairs,
            checkpoint=str(tmp_path),
            resume=True,
            checkpoint_interval=2,
        )
        assert _chain_fingerprint(resumed) == golden_chain

    def test_dirty_store_without_resume_is_refused(
        self, tmp_path, synthesis_setup
    ):
        classifier, pairs, config = synthesis_setup
        Oppsla(config).synthesize(classifier, pairs, checkpoint=str(tmp_path))
        with pytest.raises(CheckpointError, match="resume=True"):
            Oppsla(config).synthesize(classifier, pairs, checkpoint=str(tmp_path))

    def test_config_mismatch_is_refused(self, tmp_path, synthesis_setup):
        classifier, pairs, config = synthesis_setup
        Oppsla(config).synthesize(classifier, pairs, checkpoint=str(tmp_path))
        other = OppslaConfig(max_iterations=8, per_image_budget=64, seed=4)
        with pytest.raises(CheckpointMismatch):
            Oppsla(other).synthesize(
                classifier, pairs, checkpoint=str(tmp_path), resume=True
            )

    def test_latest_snapshot_tracks_progress(self, tmp_path, synthesis_setup):
        classifier, pairs, config = synthesis_setup
        Oppsla(config).synthesize(
            classifier, pairs, checkpoint=str(tmp_path), checkpoint_interval=2
        )
        snapshot = latest_chain_snapshot(CheckpointStore(str(tmp_path)))
        assert snapshot["iteration"] == config.max_iterations


# ----------------------------------------------------------------------
# satellites: RunLog torn tail, FaultPolicy jitter
# ----------------------------------------------------------------------


class TestRunLogTruncation:
    def test_truncated_final_line_becomes_event(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("task_start", index=0)
            log.emit("task_end", index=0)
        with open(path, "a") as handle:
            handle.write('{"ts": 1.0, "event": "task_sta')
        events = RunLog.read(path)
        assert [e["event"] for e in events] == [
            "task_start",
            "task_end",
            "log_truncated",
        ]
        assert events[-1]["line"] == 3

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "a"}\ngarbage\n{"event": "b"}\n')
        with pytest.raises(json.JSONDecodeError):
            RunLog.read(path)

    def test_clean_log_reads_unchanged(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("only", n=1)
        events = RunLog.read(path)
        assert len(events) == 1 and events[0]["event"] == "only"


class TestFaultPolicyJitter:
    def test_defaults_preserve_exact_exponential_schedule(self):
        policy = FaultPolicy(backoff=0.1, backoff_factor=2.0)
        assert policy.retry_delay(1) == pytest.approx(0.1)
        assert policy.retry_delay(2) == pytest.approx(0.2)
        assert policy.retry_delay(3) == pytest.approx(0.4)

    def test_max_delay_caps_the_schedule(self):
        policy = FaultPolicy(backoff=0.1, backoff_factor=10.0, max_delay=0.5)
        assert policy.retry_delay(1) == pytest.approx(0.1)
        assert policy.retry_delay(2) == pytest.approx(0.5)
        assert policy.retry_delay(5) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff=1.0, jitter=0.5, jitter_seed=7)
        first = policy.retry_delay(1, index=3)
        assert first == policy.retry_delay(1, index=3)  # replayable
        assert 0.5 <= first <= 1.0

    def test_jitter_decorrelates_tasks_and_attempts(self):
        policy = FaultPolicy(backoff=1.0, jitter=0.9, jitter_seed=0)
        delays = {
            policy.retry_delay(attempt, index=index)
            for attempt in (1, 2)
            for index in range(5)
        }
        assert len(delays) == 10

    def test_jitter_applies_after_the_cap(self):
        policy = FaultPolicy(
            backoff=1.0, backoff_factor=10.0, jitter=0.5, max_delay=2.0
        )
        for attempt in (2, 3, 4):
            assert policy.retry_delay(attempt, index=0) <= 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"max_delay": 0.0},
            {"max_delay": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


# ----------------------------------------------------------------------
# the full SIGKILL harness (subprocess; slow)
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestKillAndResume:
    @pytest.mark.parametrize("kill_after", [1, 4])
    def test_sigkill_mid_campaign_resumes_bit_identically(
        self, tmp_path, kill_after
    ):
        from repro.testkit.kill import kill_and_resume_campaign

        outcome = kill_and_resume_campaign(
            str(tmp_path), kill_after=kill_after, delay=0.03
        )
        assert outcome["records_at_kill"] >= kill_after
        assert outcome["identical"], (
            outcome["golden"],
            outcome["resumed"],
        )
