"""Tests for the baseline attacks (Sparse-RS, SuOPA, Sketch+False/Random)."""

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.attacks.fixed_sketch import FixedSketchAttack, false_program
from repro.attacks.random_program import RandomProgramSearch, RandomSearchConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig, margin
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.classifier.toy import SinglePixelBackdoorClassifier
from repro.core.dsl.ast import ConstantCondition, Program

SHAPE = (6, 6, 3)


def gray_image():
    return np.full(SHAPE, 0.5)


def backdoor():
    return SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.ones(3))


class TestAttackResult:
    def test_success_requires_location(self):
        with pytest.raises(ValueError):
            AttackResult(success=True, queries=3)

    def test_negative_queries_rejected(self):
        with pytest.raises(ValueError):
            AttackResult(success=False, queries=-1)


class TestMargin:
    def test_sign_convention(self):
        assert margin(np.array([0.7, 0.2, 0.1]), 0) > 0
        assert margin(np.array([0.2, 0.7, 0.1]), 0) < 0
        assert margin(np.array([0.5, 0.5]), 0) == 0.0


class TestSparseRS:
    def test_finds_backdoor(self):
        attack = SparseRS(SparseRSConfig(seed=0, max_steps=5000))
        result = attack.attack(backdoor(), gray_image(), true_class=0)
        assert result.success
        assert result.location == (2, 3)
        assert np.array_equal(result.perturbation, np.ones(3))
        assert result.adversarial_class == 1

    def test_budget_respected(self):
        attack = SparseRS(SparseRSConfig(seed=1))
        result = attack.attack(backdoor(), gray_image(), true_class=0, budget=5)
        assert result.queries <= 5

    def test_deterministic_given_seed(self):
        config = SparseRSConfig(seed=3, max_steps=3000)
        a = SparseRS(config).attack(backdoor(), gray_image(), true_class=0)
        b = SparseRS(config).attack(backdoor(), gray_image(), true_class=0)
        assert a.queries == b.queries

    def test_failure_when_no_adversarial_example(self):
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])  # not a corner
        )
        attack = SparseRS(SparseRSConfig(seed=0, max_steps=50))
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert not result.success
        assert result.queries >= 1

    def test_name(self):
        assert SparseRS().name == "Sparse-RS"


class TestSuOPA:
    def test_finds_tolerant_backdoor(self):
        # DE uses continuous colors, so give the trigger a tolerance band
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.ones(3), tolerance=1.2
        )
        attack = SuOPA(SuOPAConfig(population_size=30, max_generations=60, seed=0))
        result = attack.attack(classifier, gray_image(), true_class=0)
        assert result.success
        assert result.location == (2, 3)

    def test_minimum_queries_is_population_size(self):
        """The paper notes SuOPA's minimal query count equals the
        population size (the whole initial population is evaluated)."""
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.ones(3), tolerance=2.9  # nearly everything triggers
        )
        attack = SuOPA(SuOPAConfig(population_size=25, max_generations=5, seed=0))
        result = attack.attack(classifier, gray_image(), true_class=0)
        # success can occur during initialization, but never before the
        # first evaluation; failures cost at least the population size
        assert result.queries >= 1
        failing = SuOPA(SuOPAConfig(population_size=25, max_generations=0, seed=0))
        unsuccessful = failing.attack(
            SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])),
            gray_image(),
            true_class=0,
        )
        assert unsuccessful.queries == 25

    def test_budget_respected(self):
        attack = SuOPA(SuOPAConfig(population_size=30, seed=1))
        result = attack.attack(
            SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])),
            gray_image(),
            true_class=0,
            budget=10,
        )
        assert result.queries <= 10
        assert not result.success

    def test_population_validation(self):
        with pytest.raises(ValueError):
            SuOPAConfig(population_size=3)
        with pytest.raises(ValueError):
            SuOPAConfig(differential_weight=0.0)

    def test_candidates_stay_in_bounds(self):
        """Every query must be a valid image: one pixel in [0,1]^3."""

        class Recorder:
            def __init__(self, inner):
                self.inner = inner

            def __call__(self, image):
                assert image.min() >= 0.0 and image.max() <= 1.0
                delta = np.abs(image - gray_image()).sum(axis=2)
                assert (delta > 0).sum() <= 1
                return self.inner(image)

        attack = SuOPA(SuOPAConfig(population_size=10, max_generations=3, seed=2))
        attack.attack(
            Recorder(
                SinglePixelBackdoorClassifier(
                    SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])
                )
            ),
            gray_image(),
            true_class=0,
        )


class TestSketchAttacks:
    def test_fixed_sketch_program_is_all_false(self):
        program = false_program()
        assert all(
            isinstance(c, ConstantCondition) and not c.value
            for c in program.conditions
        )
        assert FixedSketchAttack().name == "Sketch+False"

    def test_sketch_attack_adapts_result(self):
        attack = SketchAttack(Program.constant(False), label="custom")
        result = attack.attack(backdoor(), gray_image(), true_class=0)
        assert attack.name == "custom"
        assert result.success
        assert result.location == (2, 3)
        assert np.array_equal(result.perturbation, np.ones(3))

    def test_failure_result(self):
        attack = FixedSketchAttack()
        result = attack.attack(backdoor(), gray_image(), true_class=0, budget=1)
        assert not result.success
        assert result.queries == 1


class TestRandomProgramSearch:
    def test_returns_best_of_samples(self, linear_classifier, toy_pairs):
        search = RandomProgramSearch(
            RandomSearchConfig(num_samples=5, per_image_budget=60, seed=0)
        )
        result = search.synthesize(linear_classifier, toy_pairs)
        assert result.best_program == result.final_program
        assert result.trace.iterations == 5
        # the accepted trace is monotonically improving
        improvements = [
            (entry.evaluation.successes, -entry.evaluation.avg_queries)
            for entry in result.trace.accepted
        ]
        assert improvements == sorted(improvements)

    def test_validation(self, linear_classifier):
        with pytest.raises(ValueError):
            RandomProgramSearch(RandomSearchConfig(num_samples=0)).synthesize(
                linear_classifier, [(np.zeros(SHAPE), 0)]
            )
        with pytest.raises(ValueError):
            RandomProgramSearch().synthesize(linear_classifier, [])
