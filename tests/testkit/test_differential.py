"""Differential oracles: the acceptance sweep and its negative controls.

The sweep proving all execution paths bit-identical is only trustworthy
if it *fails* when a path is broken, so alongside the 20-seed acceptance
run this file deliberately breaks the broker in two ways (lagged scores,
cross-session batch reversal) and asserts the oracle catches both.
"""

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.serve.broker import MicroBatchBroker
from repro.serve.sessions import SessionManager
from repro.testkit.differential import (
    DEFAULT_PATHS,
    Cell,
    DifferentialRunner,
    network_runner,
    result_fingerprint,
    results_equal,
    toy_runner,
)


class TestFingerprint:
    def test_none_is_distinct_from_any_result(self):
        result = AttackResult(success=False, queries=0)
        assert not results_equal(None, result)
        assert results_equal(None, None)

    def test_perturbation_bytes_matter(self):
        a = AttackResult(
            success=True,
            queries=3,
            location=(1, 2),
            perturbation=np.array([0.1, 0.2, 0.3]),
            adversarial_class=1,
        )
        b = AttackResult(
            success=True,
            queries=3,
            location=(1, 2),
            perturbation=np.array([0.1, 0.2, 0.30000001]),
            adversarial_class=1,
        )
        assert not results_equal(a, b)
        assert results_equal(a, AttackResult(**a.__dict__))

    def test_query_count_matters(self):
        a = AttackResult(success=False, queries=10)
        b = AttackResult(success=False, queries=11)
        assert result_fingerprint(a) != result_fingerprint(b)


class TestRunnerValidation:
    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            toy_runner(paths=("direct", "warp-drive"))

    def test_cell_label_reads_well(self):
        assert Cell(3, "served", True).label() == "seed=3 path=served cache"


class TestAcceptanceSweep:
    def test_full_sweep_is_divergence_free(self):
        """The acceptance criterion: >=20 seeds x all 5 paths x cache
        on/off, zero divergences, bit-identical results everywhere."""
        runner = toy_runner(seeds=range(20))
        report = runner.run()
        assert report.ok, report.describe()
        expected = 20 * len(DEFAULT_PATHS) * 2
        assert report.cells_run == expected
        assert "zero divergences" in report.describe()


class TestNetworkSweep:
    """The sweep against a real (tiny) repro.nn classifier: the unfrozen
    eval path must stay bit-identical across all execution paths, and
    the frozen inference fast path must be *decision-identical* to it
    seed by seed (same success, queries, location, perturbation)."""

    def test_unfrozen_sweep_is_divergence_free(self):
        report = network_runner(seeds=range(4)).run()
        assert report.ok, report.describe()

    def test_frozen_sweep_is_divergence_free(self):
        report = network_runner(seeds=range(4), frozen=True).run()
        assert report.ok, report.describe()

    def test_frozen_matches_unfrozen_per_seed(self):
        """Folding may reassociate floating point, but every attack must
        land on the same result: the scores stay ordering-identical."""
        plain = network_runner(seeds=range(4))
        frozen = network_runner(seeds=range(4), frozen=True)
        for seed in range(4):
            cell = Cell(seed, "stepped", False)
            a, _ = plain.run_cell(cell)
            b, _ = frozen.run_cell(cell)
            assert results_equal(a, b), f"seed {seed}: frozen diverged"

    @pytest.mark.slow
    def test_frozen_acceptance_sweep(self):
        """Nightly-scale frozen sweep: 20 seeds x 5 paths x cache on/off,
        all bit-identical to each other under the fast path."""
        report = network_runner(seeds=range(20), frozen=True).run()
        assert report.ok, report.describe()
        assert report.cells_run == 20 * len(DEFAULT_PATHS) * 2


class _LaggedBroker(MicroBatchBroker):
    """A deliberately broken broker: each flush is answered with the
    *previous* flush's scores (off-by-one misrouting).  Visible even at
    batch size 1, unlike a batch-order bug."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lagged = None

    def evaluate(self, images):
        fresh = super().evaluate(images)
        if self._lagged is None or len(self._lagged) != len(fresh):
            self._lagged = fresh
            return fresh
        served, self._lagged = self._lagged, fresh
        return served


class _ReversingBroker(MicroBatchBroker):
    """A deliberately broken broker: answers within a flush are returned
    in reverse order, crossing wires between concurrent sessions."""

    def evaluate(self, images):
        return super().evaluate(list(images))[::-1]


class TestNegativeControls:
    def test_lagged_broker_is_caught_and_localized(self):
        runner = toy_runner(
            seeds=range(4),
            paths=("served",),
            cache_modes=(False,),
            broker_factory=lambda classifier, cache: _LaggedBroker(
                classifier, cache=cache
            ),
        )
        report = runner.run()
        assert not report.ok, "the oracle must catch a misrouting broker"
        localized = [d for d in report.divergences if d.first_query is not None]
        assert localized, "divergences should name the first diverging query"
        assert localized[0].first_query["index"] >= 1
        assert "first diverging query" in report.describe()

    def _two_session_results(self, broker_cls):
        runner = toy_runner()
        cases = [runner.case_factory(seed) for seed in (0, 2)]
        classifier = runner.classifier_factory(0)
        broker = broker_cls(classifier)
        manager = SessionManager(broker, max_workers=1)
        try:
            sessions = [
                manager.create(runner.attack_factory(seed), image, true_class, budget=40)
                for seed, (image, true_class) in zip((0, 2), cases)
            ]
            manager.run_cooperative(sessions)
        finally:
            manager.shutdown()
        direct = [
            runner.attack_factory(seed).attack(
                runner.classifier_factory(seed), image, true_class, budget=40
            )
            for seed, (image, true_class) in zip((0, 2), cases)
        ]
        return [session.result for session in sessions], direct

    def test_reversing_broker_crosses_session_wires(self):
        """With two concurrent sessions the cooperative batch has size 2,
        so reversing a flush hands each session the other's scores."""
        served, direct = self._two_session_results(_ReversingBroker)
        assert not all(
            results_equal(s, d) for s, d in zip(served, direct)
        ), "a batch-reversing broker must not produce identical results"

    def test_honest_broker_control(self):
        """The same two-session drive through the real broker matches the
        direct path exactly -- so the reversal test fails for the right
        reason."""
        served, direct = self._two_session_results(MicroBatchBroker)
        for s, d in zip(served, direct):
            assert results_equal(s, d)


class TestPooledWithProcesses:
    @pytest.mark.slow
    def test_pooled_path_with_real_workers(self):
        """Process-backed pooled execution (the nightly configuration)
        stays bit-identical too; slow because of process startup."""
        report = toy_runner(
            seeds=range(2), paths=("pooled",), pool_workers=2
        ).run()
        assert report.ok, report.describe()
