"""Property-based DSL invariants over the whole typed search space.

Two properties the synthesizer leans on constantly:

- printing is lossless: ``parse_program(format_program(p)) == p``
  *exactly* (the printer emits shortest-exact constants, so round trips
  are equality, not approximation);
- mutation is closed: ``mutate_program`` always yields a program the
  typechecker accepts without errors, and the typechecker itself never
  crashes on anything the AST can represent.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings

import repro.testkit.generators as gen
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.mutation import mutate_program
from repro.core.dsl.parser import parse_program
from repro.core.dsl.printer import format_constant, format_program
from repro.core.dsl.typecheck import check_program

IMAGE_SHAPE = (16, 16)
GRAMMAR = Grammar(IMAGE_SHAPE)


class TestRoundTrip:
    @given(gen.programs(IMAGE_SHAPE, allow_literals=True))
    def test_parse_print_is_identity(self, program):
        assert parse_program(format_program(program)) == program

    @given(gen.conditions(IMAGE_SHAPE))
    def test_printed_constants_parse_exactly(self, condition):
        text = format_constant(condition.constant.value)
        assert float(text) == condition.constant.value

    def test_compact_forms_preferred(self):
        # the pinned concrete syntax stays human-shaped
        assert format_constant(8.0) == "8"
        assert format_constant(0.19) == "0.19"

    def test_awkward_floats_survive(self):
        value = 0.30000000000000004  # classic non-%g-representable float
        assert float(format_constant(value)) == value


class TestMutationClosure:
    @given(gen.seeds(), gen.programs(IMAGE_SHAPE))
    @settings(max_examples=60)
    def test_mutants_always_typecheck(self, seed, program):
        rng = np.random.default_rng(seed)
        mutant = mutate_program(program, GRAMMAR, rng)
        result = check_program(mutant, GRAMMAR)
        assert result.ok, [d for d in result.errors]

    @given(gen.seeds())
    @settings(max_examples=30)
    def test_mutation_chains_stay_in_the_space(self, seed):
        """A synthesis-length chain of mutations never leaves the typed
        search space (the property the stochastic search relies on)."""
        rng = np.random.default_rng(seed)
        program = GRAMMAR.random_program(rng)
        for _ in range(10):
            program = mutate_program(program, GRAMMAR, rng)
            assert check_program(program, GRAMMAR).ok


class TestTypecheckerTotality:
    @given(gen.programs(IMAGE_SHAPE, allow_literals=True))
    def test_never_crashes_on_representable_programs(self, program):
        """check_program is total: any AST-representable program gets a
        CheckResult, never an exception -- literals included."""
        result = check_program(program, GRAMMAR)
        assert isinstance(result.ok, bool)

    @given(gen.programs(IMAGE_SHAPE, score_diff_range=5.0))
    @settings(max_examples=40)
    def test_out_of_range_constants_are_diagnosed_not_fatal(self, program):
        """Constants outside the grammar's typed ranges produce
        diagnostics (possibly none if all drawn in range), not crashes."""
        result = check_program(program, GRAMMAR)
        assert isinstance(result.diagnostics, list)


class TestGeneratorContracts:
    @given(gen.images((3, 3, 3)))
    def test_images_are_unit_ranged(self, image):
        assert image.shape == (3, 3, 3)
        assert (image >= 0).all() and (image < 1).all()

    @given(gen.budgets())
    def test_budgets_are_none_or_small(self, budget):
        assert budget is None or 0 <= budget <= 64

    @given(gen.attack_cases((3, 3, 3), num_classes=4))
    def test_attack_cases_have_valid_labels(self, case):
        image, true_class = case
        assert image.shape == (3, 3, 3)
        assert 0 <= true_class < 4
