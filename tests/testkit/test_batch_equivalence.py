"""Tests for the differential batch-equivalence oracle.

The quick sweep (small seed grid, all four execution modes) is tier-1;
the acceptance-grade 20-seed sweep is marked ``slow`` and runs nightly.
The negative control proves the oracle has teeth: a broker that
reorders batched answers MUST be reported, with the first diverging
query localized.
"""

import pytest

from repro.testkit.batching import (
    DEFAULT_MODES,
    BatchCell,
    ReorderingBroker,
    toy_batch_runner,
)


class TestQuickSweep:
    def test_all_modes_bit_identical(self):
        report = toy_batch_runner(seeds=range(6)).run()
        assert report.ok, report.describe()
        # 6 seeds x 4 modes x {scalar, batched}
        assert report.cells_run == 6 * len(DEFAULT_MODES) * 2

    def test_window_one_and_large_window(self):
        """Degenerate (window=1) and oversized (window > budget)
        speculation both stay bit-identical."""
        for window in (1, 64):
            report = toy_batch_runner(
                seeds=range(3), modes=("direct", "cached"), window=window
            ).run()
            assert report.ok, report.describe()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            toy_batch_runner(seeds=[0], modes=("warp",))

    def test_non_positive_window_rejected(self):
        with pytest.raises(ValueError):
            toy_batch_runner(seeds=[0], window=0)


class TestNegativeControl:
    def test_reordering_broker_is_caught(self):
        """A broker that reverses multi-query batches must diverge, and
        the report must localize the first diverging query."""
        report = toy_batch_runner(
            seeds=range(6),
            modes=("broker",),
            broker_factory=lambda classifier, cache: ReorderingBroker(
                classifier, cache=cache
            ),
        ).run()
        assert not report.ok
        divergence = report.divergences[0]
        assert divergence.cell.batched
        assert divergence.first_query is not None
        assert "divergence" in divergence.describe()

    def test_reordering_broker_passes_scalar(self):
        """The same broken broker is invisible to scalar stepping --
        exactly why the batched oracle must exist."""
        runner = toy_batch_runner(
            seeds=range(3),
            modes=("broker",),
            broker_factory=lambda classifier, cache: ReorderingBroker(
                classifier, cache=cache
            ),
        )
        for seed in range(3):
            cell = BatchCell(seed=seed, mode="broker", batched=False)
            result, _, detail = runner.run_cell(cell)
            assert result is not None
            assert detail is None


@pytest.mark.slow
class TestAcceptanceSweep:
    def test_twenty_seed_sweep(self):
        report = toy_batch_runner(seeds=range(20)).run()
        assert report.ok, report.describe()

    def test_tight_budget_sweep(self):
        """Mid-batch truncation across every mode: a budget far below
        what the attacks want forces the exhaustion path everywhere."""
        report = toy_batch_runner(seeds=range(10), budget=7).run()
        assert report.ok, report.describe()
