"""Golden-trace record/replay: exact reproduction at zero forward passes."""

import pytest

from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.core.stepping import drive_steps
from repro.core.dsl.parser import parse_program
from repro.testkit.differential import results_equal
from repro.testkit.trace import (
    ReplayClassifier,
    TraceEvent,
    TraceMismatch,
    TraceRecorder,
    TraceVerifier,
    diff_events,
    load_trace,
    pixel_diff,
    replay,
)

PROGRAM = parse_program(
    """
    [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.05
    [B2] max(x[l]) > 0.5
    [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.1
    [B4] center(l) < 2
    """
)


class _CallCounter:
    """Counts raw forward passes through a classifier."""

    def __init__(self, classifier):
        self.classifier = classifier
        self.calls = 0

    def __call__(self, image):
        self.calls += 1
        return self.classifier(image)


@pytest.fixture
def sketch_case(linear_classifier, toy_pairs):
    image, true_class = toy_pairs[0]
    return SketchAttack(PROGRAM), image, true_class


class TestPixelDiff:
    def test_single_pixel_write(self, toy_images):
        clean = toy_images[0]
        perturbed = clean.copy()
        perturbed[2, 3] = [1.0, 0.0, 1.0]
        location, value = pixel_diff(clean, perturbed)
        assert location == (2, 3)
        assert value == (1.0, 0.0, 1.0)

    def test_identical_images(self, toy_images):
        assert pixel_diff(toy_images[0], toy_images[0].copy()) == (None, None)

    def test_multi_pixel_write(self, toy_images):
        clean = toy_images[0]
        perturbed = clean.copy()
        perturbed[0, 0] = 1.0
        perturbed[1, 1] = 0.0
        assert pixel_diff(clean, perturbed) == (None, None)


class TestRecord:
    def test_events_capture_the_query_stream(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        result = recorder.record(
            attack, linear_classifier, image, true_class, budget=60
        )
        assert recorder.events, "a sketch attack poses at least the clean probe"
        # the sketch's first query is the uncounted clean probe
        first = recorder.events[0]
        assert first.counted is False
        assert first.location is None and first.perturbation is None
        counted = [event for event in recorder.events if event.counted]
        assert len(counted) == result.queries
        # every counted submission is a one-pixel write off the clean image
        for event in counted:
            assert event.location is not None
            assert event.perturbation is not None
        assert [event.index for event in recorder.events] == list(
            range(1, len(recorder.events) + 1)
        )

    def test_header_describes_the_run(self, linear_classifier, sketch_case):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=60)
        assert recorder.header["format"] == "repro-golden-trace"
        assert recorder.header["attack"] == attack.name
        assert recorder.header["budget"] == 60


class TestReplay:
    def test_replay_reproduces_result_with_zero_forward_passes(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        counter = _CallCounter(linear_classifier)
        recorder = TraceRecorder()
        recorded = recorder.record(attack, counter, image, true_class, budget=60)
        passes_during_record = counter.calls
        assert passes_during_record > 0

        replayed = replay(attack, recorder.events, image, true_class, budget=60)
        assert counter.calls == passes_during_record  # zero new passes
        assert results_equal(recorded, replayed)

    def test_replay_random_attack(self, linear_classifier, toy_pairs):
        image, true_class = toy_pairs[1]
        attack = UniformRandomAttack(UniformRandomConfig(seed=11))
        recorder = TraceRecorder()
        recorded = recorder.record(
            attack, linear_classifier, image, true_class, budget=30
        )
        replayed = replay(attack, recorder.events, image, true_class, budget=30)
        assert results_equal(recorded, replayed)

    def test_changed_logic_is_caught_at_the_diverging_query(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=60)
        # "refactor" the attack into one with a different query order
        drifted = UniformRandomAttack(UniformRandomConfig(seed=0))
        with pytest.raises(TraceMismatch) as info:
            replay(drifted, recorder.events, image, true_class, budget=60)
        assert info.value.index >= 1

    def test_exhausted_trace_is_a_mismatch(self, linear_classifier, sketch_case):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=60)
        truncated = recorder.events[:1]
        with pytest.raises(TraceMismatch):
            replay(attack, truncated, image, true_class, budget=60)

    def test_leftover_events_are_a_mismatch(self, linear_classifier, sketch_case):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=20)
        padded = recorder.events + [recorder.events[-1]]
        with pytest.raises(TraceMismatch):
            replay(attack, padded, image, true_class, budget=20)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, linear_classifier, sketch_case):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorded = recorder.record(
            attack, linear_classifier, image, true_class, budget=60
        )
        golden = tmp_path / "sketch.golden.jsonl"
        recorder.save(golden)

        header, events = load_trace(golden)
        assert header["attack"] == attack.name
        assert events == recorder.events
        replayed = replay(attack, events, image, true_class, budget=60)
        assert results_equal(recorded, replayed)

    def test_load_rejects_non_golden_files(self, tmp_path):
        bogus = tmp_path / "not-a-trace.jsonl"
        bogus.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(bogus)


class TestDiffEvents:
    def _event(self, index, digest, scores=(0.5, 0.5)):
        return TraceEvent(index=index, digest=digest, counted=True, scores=scores)

    def test_identical_traces(self):
        trace = [self._event(1, "aa"), self._event(2, "bb")]
        assert diff_events(trace, list(trace)) is None

    def test_first_divergence_is_localized(self):
        baseline = [self._event(1, "aa"), self._event(2, "bb")]
        other = [self._event(1, "aa"), self._event(2, "cc")]
        divergence = diff_events(baseline, other)
        assert divergence["index"] == 2

    def test_length_mismatch(self):
        baseline = [self._event(1, "aa")]
        other = [self._event(1, "aa"), self._event(2, "bb")]
        divergence = diff_events(baseline, other)
        assert divergence["index"] == 2

    def test_counted_flags_do_not_diverge(self):
        """Thread-adapted generators mark the clean probe counted; that
        is a representation difference, not a behavioural one."""
        a = TraceEvent(index=1, digest="aa", counted=False, scores=(1.0,))
        b = TraceEvent(index=1, digest="aa", counted=True, scores=(1.0,))
        assert diff_events([a], [b]) is None


class TestBatchedReplay:
    """Batched stepping and golden traces are interchangeable: a scalar
    recording replays batched (and vice versa) at zero forward passes,
    and a batched mismatch is localized to the offending batch member."""

    def test_scalar_recording_replays_batched(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        counter = _CallCounter(linear_classifier)
        recorder = TraceRecorder()
        recorded = recorder.record(attack, counter, image, true_class, budget=60)
        passes = counter.calls
        replayed = replay(
            attack, recorder.events, image, true_class, budget=60, batch_size=4
        )
        assert counter.calls == passes  # zero new forward passes
        assert results_equal(recorded, replayed)

    def test_batched_recording_replays_scalar(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorded = recorder.record(
            attack, linear_classifier, image, true_class, budget=60, batch_size=4
        )
        replayed = replay(attack, recorder.events, image, true_class, budget=60)
        assert results_equal(recorded, replayed)

    def test_batched_recording_equals_scalar_recording(
        self, linear_classifier, sketch_case
    ):
        """The golden file itself is stepping-mode independent."""
        attack, image, true_class = sketch_case
        scalar = TraceRecorder()
        scalar.record(attack, linear_classifier, image, true_class, budget=60)
        batched = TraceRecorder()
        batched.record(
            attack, linear_classifier, image, true_class, budget=60, batch_size=4
        )
        assert batched.events == scalar.events

    def test_digest_drift_is_localized_to_batch_member(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=60)
        events = list(recorder.events)
        victim = events[2]
        events[2] = TraceEvent(
            index=victim.index,
            digest="0" * 40,
            counted=victim.counted,
            scores=victim.scores,
            location=victim.location,
            perturbation=victim.perturbation,
        )
        with pytest.raises(TraceMismatch) as info:
            replay(attack, events, image, true_class, budget=60, batch_size=4)
        assert info.value.index == 3
        assert "batch member" in str(info.value)

    def test_reordered_batch_answers_are_caught(
        self, linear_classifier, sketch_case
    ):
        """A driver that scrambles batch answers cannot replay clean."""
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=60)

        class ReorderingReplay(ReplayClassifier):
            def batch(self, images):
                rows = super().batch(images)
                return rows[::-1] if len(rows) > 1 else rows

        classifier = ReorderingReplay(recorder.events)
        verifier = TraceVerifier(recorder.events, classifier)
        with pytest.raises(TraceMismatch) as info:
            drive_steps(
                attack.steps(image, true_class, budget=60, batch_size=4),
                classifier,
                observer=verifier,
            )
        assert "batch member" in str(info.value)

    def test_truncated_trace_is_a_mismatch_batched(
        self, linear_classifier, sketch_case
    ):
        attack, image, true_class = sketch_case
        recorder = TraceRecorder()
        recorder.record(attack, linear_classifier, image, true_class, budget=60)
        truncated = recorder.events[:2]
        with pytest.raises(TraceMismatch):
            replay(attack, truncated, image, true_class, budget=60, batch_size=4)


class TestReplayClassifier:
    def test_serves_in_order_and_verifies_digests(self, toy_images):
        from repro.runtime.cache import image_digest

        image = toy_images[0]
        events = [
            TraceEvent(
                index=1,
                digest=image_digest(image).hex(),
                counted=True,
                scores=(0.25, 0.75),
            )
        ]
        classifier = ReplayClassifier(events)
        scores = classifier(image)
        assert scores.tolist() == [0.25, 0.75]
        assert classifier.remaining == 0

    def test_wrong_image_raises(self, toy_images):
        events = [
            TraceEvent(index=1, digest="deadbeef", counted=True, scores=(1.0,))
        ]
        with pytest.raises(TraceMismatch) as info:
            ReplayClassifier(events)(toy_images[0])
        assert info.value.index == 1
