"""The fault matrix: every fault kind degrades every path gracefully.

Acceptance shape: {exception, timeout, latency} x {direct, pooled,
served}; every cell must end in a *failed* AttackResult charged the full
budget, with no hang (the served path drives the real threaded broker
under a hard join deadline) and no miscount (the counting boundary sits
outside the injector).
"""

import pytest

from repro.attacks.sketch_attack import SketchAttack
from repro.core.dsl.parser import parse_program
from repro.testkit.matrix import (
    DEFAULT_KINDS,
    DEFAULT_MATRIX_PATHS,
    FAULT_EXCEPTION,
    make_injector,
    run_fault_matrix,
)

BUDGET = 12
FAULT_INDEX = 3

PROGRAM = parse_program(
    """
    [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.05
    [B2] max(x[l]) > 0.5
    [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.1
    [B4] center(l) < 2
    """
)


@pytest.fixture(scope="module")
def matrix():
    from repro.classifier.toy import LinearPixelClassifier, make_toy_images
    import numpy as np

    shape = (5, 5, 3)

    def classifier_factory():
        return LinearPixelClassifier(shape, num_classes=3, seed=7, temperature=0.05)

    # image seed 6: the unfaulted attack exhausts the whole budget, so
    # the scheduled fault at query 3 is guaranteed to be reached
    image = make_toy_images(1, shape, seed=6)[0]
    true_class = int(np.argmax(classifier_factory()(image)))
    return run_fault_matrix(
        attack_factory=lambda: SketchAttack(PROGRAM),
        classifier_factory=classifier_factory,
        case=(image, true_class),
        budget=BUDGET,
        fault_index=FAULT_INDEX,
    )


class TestMatrix:
    def test_every_cell_ran(self, matrix):
        assert set(matrix) == {
            (kind, path)
            for kind in DEFAULT_KINDS
            for path in DEFAULT_MATRIX_PATHS
        }

    def test_every_cell_degrades_to_failed_full_budget(self, matrix):
        for (kind, path), cell in matrix.items():
            label = f"{kind} x {path}"
            assert cell.result is not None, f"{label}: no result at all"
            assert cell.result.success is False, f"{label}: claimed success"
            assert cell.result.queries == BUDGET, (
                f"{label}: charged {cell.result.queries}, expected the "
                f"full budget {BUDGET}"
            )
            assert cell.result.error, f"{label}: degraded without an error tag"

    def test_every_cell_injected_exactly_once(self, matrix):
        for (kind, path), cell in matrix.items():
            assert cell.injected == 1, f"{kind} x {path}"

    def test_no_cell_miscounts(self, matrix):
        """The faulted query is the last one posed: the counting
        boundary saw exactly ``fault_index`` submissions."""
        for (kind, path), cell in matrix.items():
            assert cell.posed == FAULT_INDEX, (
                f"{kind} x {path}: posed {cell.posed}, "
                f"expected {FAULT_INDEX}"
            )

    def test_error_tags_name_the_fault(self, matrix):
        for (kind, path), cell in matrix.items():
            assert "injected" in (cell.result.error or "").lower(), (
                f"{kind} x {path}: error tag {cell.result.error!r} "
                "does not name the injected fault"
            )


class TestControls:
    def test_unknown_kind_rejected(self, linear_classifier):
        with pytest.raises(ValueError):
            make_injector("cosmic-rays", linear_classifier, 1)

    def test_no_fault_control(self, toy_pairs, linear_classifier):
        """With the schedule pushed past the budget, every cell completes
        normally -- proving the degradation assertions above bite on the
        injected fault, not on the harness."""
        image, true_class = toy_pairs[0]
        cells = run_fault_matrix(
            attack_factory=lambda: SketchAttack(PROGRAM),
            classifier_factory=lambda: linear_classifier,
            case=(image, true_class),
            budget=8,
            kinds=(FAULT_EXCEPTION,),
            fault_index=10_000,
        )
        for cell in cells.values():
            assert cell.injected == 0
            assert cell.result is not None
            assert cell.result.error is None
            assert cell.result.queries <= 8
