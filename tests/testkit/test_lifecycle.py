"""The lifecycle equivalence oracle, and proof that it has teeth."""

import pytest

from repro.testkit.lifecycle import (
    FlightDroppingBroker,
    LifecycleCell,
    LifecycleEquivalenceRunner,
    cancel_during_flight,
    toy_lifecycle_runner,
)


class TestSweep:
    def test_single_seed_sweep_is_clean(self):
        report = toy_lifecycle_runner(seeds=(1,)).run()
        assert report.ok, report.describe()
        # 1 seed x {direct, broker} x {scalar, batched} x {cancel, expire}
        assert report.cells_run == 8
        assert "zero divergences" in report.describe()

    def test_parked_cell_matches_budget_k_exactly(self):
        runner = toy_lifecycle_runner(seeds=(8,))
        cell = LifecycleCell(
            seed=8, path="direct", batched=True, kind="expire", k_target=12
        )
        parked = runner.run_parked(cell)
        assert parked.state == "expired"
        assert parked.queries >= 12
        assert parked.result is not None
        assert parked.result.queries == parked.queries
        golden = runner.run_golden(8, parked.queries)
        assert golden.queries == parked.queries
        assert golden.result.success is False

    def test_unknown_axes_rejected(self):
        with pytest.raises(ValueError):
            toy_lifecycle_runner(seeds=(1,), paths=("direct", "teleport"))
        with pytest.raises(ValueError):
            toy_lifecycle_runner(seeds=(1,), kinds=("cancel", "maybe"))
        with pytest.raises(ValueError):
            toy_lifecycle_runner(seeds=(1,), window=0)

    def test_oracle_catches_a_lying_park(self):
        """A park that misreports its count must surface as a divergence."""
        runner = toy_lifecycle_runner(seeds=(1,), kinds=("cancel",),
                                      paths=("direct",))
        original = LifecycleEquivalenceRunner.run_parked

        def lying_park(self, cell):
            session = original(self, cell)
            session.queries += 1  # off-by-one accounting bug
            return session

        runner.run_parked = lying_park.__get__(runner)
        report = runner.run()
        assert not report.ok
        assert "diverged" in report.describe()


@pytest.mark.slow
class TestCancelDuringFlight:
    def test_cobatched_survivor_settles_with_golden_count(self):
        verdict = cancel_during_flight()
        assert verdict["settled"], verdict
        assert verdict["survivor_queries"] == verdict["survivor_golden"]
        assert verdict["cancelled_state"] == "cancelled"
        assert verdict["cancelled_exact"], verdict

    def test_flight_dropping_broker_is_caught(self):
        """Negative control: a broker that drops flights after a
        cancellation must poison the co-batched session visibly."""
        verdict = cancel_during_flight(
            broker_cls=FlightDroppingBroker, drop_on_cancel=True
        )
        assert not verdict["settled"], verdict
