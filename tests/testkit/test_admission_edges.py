"""Edge cases of the admission layer and the counting boundary.

Satellite coverage for the serving gate: degenerate capacities, bursts
exactly at the limit (driven by a fake clock, no sleeps), and the
budget-exhaustion-mid-batch semantics of ``CountingClassifier.batch``
that keep broker-batched query counts identical to sequential ones.
"""

import numpy as np
import pytest

from repro.classifier.blackbox import CountingClassifier, QueryBudgetExceeded
from repro.serve.admission import AdmissionControl, RateLimiter, TokenBucket


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmissionControl:
    def test_zero_capacity_is_rejected_at_construction(self):
        with pytest.raises(ValueError):
            AdmissionControl(0)
        with pytest.raises(ValueError):
            AdmissionControl(-1)

    def test_burst_exactly_at_capacity(self):
        gate = AdmissionControl(3)
        assert [gate.try_acquire() for _ in range(3)] == [True] * 3
        assert gate.try_acquire() is False
        assert gate.stats() == {
            "capacity": 3, "active": 3, "admitted": 3, "refused": 1,
        }

    def test_release_reopens_exactly_one_slot(self):
        gate = AdmissionControl(1)
        assert gate.try_acquire()
        gate.release()
        assert gate.try_acquire()
        assert not gate.try_acquire()

    def test_release_never_goes_negative(self):
        gate = AdmissionControl(1)
        gate.release()  # spurious release on an idle gate
        assert gate.active == 0
        assert gate.try_acquire()
        assert not gate.try_acquire()  # capacity still 1, not 2


class TestTokenBucket:
    def test_burst_below_one_is_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0)

    def test_burst_exactly_at_limit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.allow() for _ in range(3)] == [True] * 3
        assert bucket.allow() is False  # the burst+1-th request, same instant

    def test_refill_grants_exactly_the_elapsed_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.allow() and bucket.allow()
        assert not bucket.allow()
        clock.advance(0.5)  # 0.5 s * 2 tokens/s = exactly one token
        assert bucket.allow()
        assert not bucket.allow()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(3600.0)
        assert [bucket.allow() for _ in range(3)] == [True, True, False]


class TestRateLimiter:
    def test_clients_are_isolated(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")  # b's bucket is untouched by a's spend
        assert limiter.stats()["limited"] == 1

    def test_client_table_is_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock, max_clients=2)
        for client in ("a", "b", "c"):
            limiter.allow(client)
            clock.advance(0.001)  # distinct last-seen stamps
        assert limiter.stats()["clients"] == 2


class TestCountingBatchBudget:
    @pytest.fixture
    def counting(self, linear_classifier):
        return CountingClassifier(linear_classifier, budget=5)

    def test_exhaustion_mid_batch_consumes_the_allowance(
        self, counting, toy_images
    ):
        """A batch crossing the budget trips *after* spending what was
        left -- exactly what a sequential loop would have posed."""
        counting.batch(list(toy_images[:3]))
        with pytest.raises(QueryBudgetExceeded):
            counting.batch(list(toy_images[3:7]))
        assert counting.count == 5
        assert counting.remaining == 0

    def test_batch_exactly_at_the_limit_succeeds(self, counting, toy_images):
        counting.batch(list(toy_images[:3]))
        scores = counting.batch(list(toy_images[3:5]))
        assert scores.shape[0] == 2
        assert counting.count == 5
        with pytest.raises(QueryBudgetExceeded):
            counting(toy_images[5])
        assert counting.count == 5

    def test_empty_batch_when_exhausted_is_free(self, counting, toy_images):
        counting.batch(list(toy_images[:5]))
        scores = counting.batch([])
        assert scores.shape[0] == 0
        assert counting.count == 5

    def test_batched_and_sequential_counts_agree(
        self, linear_classifier, toy_images
    ):
        batched = CountingClassifier(linear_classifier, budget=4)
        sequential = CountingClassifier(linear_classifier, budget=4)
        with pytest.raises(QueryBudgetExceeded):
            batched.batch(list(toy_images[:6]))
        with pytest.raises(QueryBudgetExceeded):
            for image in toy_images[:6]:
                sequential(image)
        assert batched.count == sequential.count == 4
