"""Regression: a FaultPolicy retry reproduces the unfaulted result.

The engine's retry story is only sound if a retried attack is a *replay*,
not a *different run*: attacks must derive all randomness from their own
config seed (fresh ``default_rng(seed)`` per call), never from ambient
state a failed first attempt could have consumed.  These tests pin that
by failing the first attempt of a task and asserting the retried result
is bit-identical to a run that never faulted -- for both a deterministic
(sketch) and an RNG-driven (uniform random) attack, inline and under a
real worker process.
"""

import numpy as np
import pytest

from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.core.dsl.parser import parse_program
from repro.runtime.faults import FaultPolicy
from repro.runtime.pool import WorkerPool
from repro.runtime.tasks import AttackTaskRunner
from repro.testkit.differential import results_equal

PROGRAM = parse_program(
    """
    [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.05
    [B2] max(x[l]) > 0.5
    [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.1
    [B4] center(l) < 2
    """
)

BUDGET = 16


class FailFirstAttempt:
    """Picklable task wrapper that dies once per process, then behaves.

    ``__getstate__`` resets the flag so a worker process (which receives
    the wrapper by pickle) also fails its first attempt, exercising the
    cross-process retry path, not just the inline one.
    """

    def __init__(self, runner):
        self.runner = runner
        self._failed = False

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_failed"] = False
        return state

    def __call__(self, payload):
        if not self._failed:
            self._failed = True
            raise RuntimeError("injected first-attempt failure")
        return self.runner(payload)


def _attacks():
    return {
        "sketch": lambda: SketchAttack(PROGRAM),
        "random": lambda: UniformRandomAttack(UniformRandomConfig(seed=9)),
    }


@pytest.fixture
def case(linear_classifier, toy_pairs):
    return toy_pairs[0]


@pytest.mark.parametrize("name", sorted(_attacks()))
def test_retry_is_bit_identical_inline(name, case, linear_classifier):
    attack_factory = _attacks()[name]
    image, true_class = case
    payload = [(image, true_class)]

    clean = WorkerPool(workers=0).map(
        AttackTaskRunner(attack_factory(), linear_classifier, budget=BUDGET),
        payload,
    )[0]
    assert clean.ok and clean.attempts == 1

    retried = WorkerPool(
        workers=0, policy=FaultPolicy(retries=1, backoff=0.0)
    ).map(
        FailFirstAttempt(
            AttackTaskRunner(attack_factory(), linear_classifier, budget=BUDGET)
        ),
        payload,
    )[0]
    assert retried.ok, retried.error
    assert retried.attempts == 2
    assert results_equal(clean.value.result, retried.value.result)


@pytest.mark.slow
def test_retry_is_bit_identical_across_processes(case, linear_classifier):
    image, true_class = case
    payload = [(image, true_class)]
    runner = AttackTaskRunner(
        _attacks()["random"](), linear_classifier, budget=BUDGET
    )

    clean = WorkerPool(workers=1).map(runner, payload)[0]
    assert clean.ok

    retried = WorkerPool(
        workers=1, policy=FaultPolicy(retries=1, backoff=0.0)
    ).map(FailFirstAttempt(runner), payload)[0]
    assert retried.ok, retried.error
    assert retried.attempts >= 1  # a fresh worker may reset the flag
    assert results_equal(clean.value.result, retried.value.result)


def test_exhausted_retries_report_the_last_error(case, linear_classifier):
    """When every attempt fails, the outcome carries the final attempt's
    error and the attempt count -- the inputs the eval layer needs to
    degrade the task instead of dropping it."""

    class AlwaysFails:
        def __call__(self, payload):
            raise RuntimeError("permanently broken")

    outcome = WorkerPool(
        workers=0, policy=FaultPolicy(retries=2, backoff=0.0)
    ).map(AlwaysFails(), [((np.zeros((2, 2, 3))), 0)])[0]
    assert not outcome.ok
    assert outcome.attempts == 3
    assert outcome.error is not None
    assert outcome.error.tag == "exception:RuntimeError"
