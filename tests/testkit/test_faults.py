"""Fault-injection wrappers: deterministic schedules, exact accounting."""

import numpy as np
import pytest

from repro.classifier.blackbox import CountingClassifier, batch_scores
from repro.testkit.faults import (
    CorruptScoresClassifier,
    FaultSchedule,
    FlakyClassifier,
    InjectedFault,
    InjectedTimeout,
    SlowClassifier,
)


class TestFaultSchedule:
    def test_explicit_indices(self):
        schedule = FaultSchedule.at(2, 5)
        assert [schedule.fires(i) for i in range(1, 7)] == [
            False, True, False, False, True, False,
        ]

    def test_indices_are_one_based(self):
        with pytest.raises(ValueError):
            FaultSchedule.at(0)

    def test_bernoulli_is_deterministic_and_order_independent(self):
        schedule = FaultSchedule.bernoulli(seed=7, rate=0.3)
        forward = [schedule.fires(i) for i in range(1, 101)]
        backward = [schedule.fires(i) for i in reversed(range(1, 101))]
        assert forward == backward[::-1]
        assert FaultSchedule.bernoulli(seed=7, rate=0.3).fires(13) == schedule.fires(13)
        assert any(forward) and not all(forward)

    def test_bernoulli_respects_start(self):
        schedule = FaultSchedule.bernoulli(seed=3, rate=1.0, start=10)
        assert not any(schedule.fires(i) for i in range(1, 10))
        assert schedule.fires(10)

    def test_never(self):
        assert not any(FaultSchedule.never().fires(i) for i in range(1, 50))

    def test_needs_indices_or_seed(self):
        with pytest.raises(ValueError):
            FaultSchedule()


class TestFlakyClassifier:
    def test_raises_exactly_on_schedule(self, linear_classifier, toy_images):
        flaky = FlakyClassifier(linear_classifier, FaultSchedule.at(3))
        image = toy_images[0]
        assert np.allclose(flaky(image), linear_classifier(image))
        flaky(image)
        with pytest.raises(InjectedFault) as info:
            flaky(image)
        assert info.value.index == 3
        # the schedule is per-index, not sticky: query 4 succeeds
        assert np.allclose(flaky(image), linear_classifier(image))
        assert flaky.calls == 4 and flaky.injected == 1

    def test_timeout_flavour(self, linear_classifier, toy_images):
        flaky = FlakyClassifier(
            linear_classifier, FaultSchedule.at(1), timeout=True
        )
        with pytest.raises(InjectedTimeout):
            flaky(toy_images[0])

    def test_budget_accounting_under_faults(self, linear_classifier, toy_images):
        """CountingClassifier outside the injector: the faulted query is
        counted (it was submitted), and the count pins the fault index."""
        counting = CountingClassifier(
            FlakyClassifier(linear_classifier, FaultSchedule.at(4))
        )
        image = toy_images[0]
        for _ in range(3):
            counting(image)
        with pytest.raises(InjectedFault):
            counting(image)
        assert counting.count == 4

    def test_batch_fallback_injects_per_query(self, linear_classifier, toy_images):
        """No ``batch`` method => batch_scores falls back per image, so
        the schedule indexes individual queries even in batched paths."""
        flaky = FlakyClassifier(linear_classifier, FaultSchedule.at(2))
        with pytest.raises(InjectedFault) as info:
            batch_scores(flaky, list(toy_images[:3]))
        assert info.value.index == 2


class TestSlowClassifier:
    def test_virtual_latency_accumulates(self, linear_classifier, toy_images):
        slow = SlowClassifier(
            linear_classifier,
            FaultSchedule.at(2),
            base_latency=0.01,
            spike=1.0,
        )
        image = toy_images[0]
        slow(image)
        slow(image)
        slow(image)
        assert slow.elapsed == pytest.approx(0.03 + 1.0)
        assert slow.injected == 1

    def test_deadline_trips_deterministically(self, linear_classifier, toy_images):
        slow = SlowClassifier(
            linear_classifier,
            FaultSchedule.at(3),
            base_latency=0.01,
            spike=10.0,
            deadline=5.0,
        )
        image = toy_images[0]
        slow(image)
        slow(image)
        with pytest.raises(InjectedTimeout) as info:
            slow(image)
        assert info.value.index == 3
        assert slow.elapsed == slow.deadline

    def test_transparent_without_deadline(self, linear_classifier, toy_images):
        slow = SlowClassifier(linear_classifier, FaultSchedule.never())
        image = toy_images[0]
        assert np.array_equal(slow(image), linear_classifier(image))


class TestCorruptScoresClassifier:
    def test_corruption_is_deterministic(self, linear_classifier, toy_images):
        image = toy_images[0]
        runs = []
        for _ in range(2):
            corrupt = CorruptScoresClassifier(
                linear_classifier, FaultSchedule.at(1), noise_seed=5
            )
            runs.append(corrupt(image))
        assert np.array_equal(runs[0], runs[1])

    def test_corrupted_scores_differ_but_stay_normalized(
        self, linear_classifier, toy_images
    ):
        image = toy_images[0]
        corrupt = CorruptScoresClassifier(
            linear_classifier, FaultSchedule.at(1), noise_seed=5
        )
        scores = corrupt(image)
        assert not np.allclose(scores, linear_classifier(image))
        assert scores.sum() == pytest.approx(1.0)
        assert (scores >= 0).all()

    def test_unscheduled_queries_untouched(self, linear_classifier, toy_images):
        image = toy_images[0]
        corrupt = CorruptScoresClassifier(
            linear_classifier, FaultSchedule.at(2), noise_seed=5
        )
        assert np.array_equal(corrupt(image), linear_classifier(image))
