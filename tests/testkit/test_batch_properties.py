"""Property-based invariants of batch-native stepping (DESIGN §14).

Two properties the batched protocol is defined by, checked over
arbitrary seeds, windows, and budgets:

- **flattening**: the consumption-order event stream of a batched run
  (what observers see, what sessions charge) is exactly the scalar
  run's query sequence -- digests, counted flags, and scores alike;
- **truncation**: for any budget, a batched run stops charging at the
  exact query where the scalar run stops, producing a bit-identical
  result and never counting speculative tails.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.testkit.generators as gen
from repro.classifier.toy import LinearPixelClassifier
from repro.core.stepping import drive_steps
from repro.testkit.batching import _three_way_attack_factory
from repro.testkit.differential import result_fingerprint
from repro.testkit.trace import TraceRecorder

SHAPE = (5, 5, 3)
ATTACK_FACTORY = _three_way_attack_factory()

windows = st.integers(min_value=1, max_value=9)


def _case(seed: int):
    classifier = LinearPixelClassifier(
        SHAPE, num_classes=3, seed=7, temperature=0.05
    )
    image = np.random.default_rng(seed).random(SHAPE)
    true_class = int(np.argmax(classifier(image)))
    return ATTACK_FACTORY(seed), classifier, image, true_class


def _run(attack, classifier, image, true_class, budget, batch_size):
    recorder = TraceRecorder(clean_image=image)
    result = drive_steps(
        attack.steps(image, true_class, budget=budget, batch_size=batch_size),
        classifier,
        observer=recorder,
    )
    return result, [event.to_dict() for event in recorder.events]


class TestFlattening:
    @given(gen.seeds(max_seed=2**16), windows)
    @settings(max_examples=25, deadline=None)
    def test_batched_trace_flattens_to_scalar_sequence(self, seed, window):
        attack, classifier, image, true_class = _case(seed)
        scalar, scalar_trace = _run(
            attack, classifier, image, true_class, 48, 0
        )
        batched, batched_trace = _run(
            attack, classifier, image, true_class, 48, window
        )
        assert batched_trace == scalar_trace
        assert result_fingerprint(batched) == result_fingerprint(scalar)


class TestTruncation:
    @given(gen.seeds(max_seed=2**16), windows, gen.budgets(max_budget=64))
    @settings(max_examples=25, deadline=None)
    def test_mid_batch_truncation_matches_scalar_stop(
        self, seed, window, budget
    ):
        attack, classifier, image, true_class = _case(seed)
        scalar, scalar_trace = _run(
            attack, classifier, image, true_class, budget, 0
        )
        batched, batched_trace = _run(
            attack, classifier, image, true_class, budget, window
        )
        assert result_fingerprint(batched) == result_fingerprint(scalar)
        assert batched_trace == scalar_trace
        if budget is not None:
            assert batched.queries <= budget
