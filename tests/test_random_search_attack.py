"""Tests for the uniform-random baseline attack."""

import numpy as np
import pytest

from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.classifier.blackbox import CountingClassifier
from repro.classifier.toy import SinglePixelBackdoorClassifier

SHAPE = (6, 6, 3)
FULL_SPACE = 8 * 6 * 6


def gray_image():
    return np.full(SHAPE, 0.5)


class TestUniformRandomAttack:
    def test_finds_backdoor(self):
        classifier = SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.ones(3))
        result = UniformRandomAttack(UniformRandomConfig(seed=0)).attack(
            classifier, gray_image(), true_class=0
        )
        assert result.success
        assert result.location == (2, 3)
        assert result.queries <= FULL_SPACE

    def test_exhaustive_without_example(self):
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])
        )
        result = UniformRandomAttack().attack(classifier, gray_image(), true_class=0)
        assert not result.success
        assert result.queries == FULL_SPACE

    def test_no_pair_repeated(self):
        seen = set()

        class Recorder:
            def __call__(self, image):
                delta = np.argwhere(np.abs(image - gray_image()).sum(axis=2) > 0)
                key = (tuple(delta[0]), tuple(image[tuple(delta[0])]))
                assert key not in seen
                seen.add(key)
                return np.array([0.9, 0.1])

        UniformRandomAttack().attack(Recorder(), gray_image(), true_class=0)
        assert len(seen) == FULL_SPACE

    def test_budget_respected(self):
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.array([0.5, 0.3, 0.7])
        )
        counting = CountingClassifier(classifier)
        result = UniformRandomAttack().attack(
            counting, gray_image(), true_class=0, budget=17
        )
        assert result.queries == 17
        assert counting.count == 17

    def test_seed_changes_order(self):
        classifier = SinglePixelBackdoorClassifier(SHAPE, (2, 3), np.ones(3))
        a = UniformRandomAttack(UniformRandomConfig(seed=1)).attack(
            classifier, gray_image(), true_class=0
        )
        b = UniformRandomAttack(UniformRandomConfig(seed=2)).attack(
            classifier, gray_image(), true_class=0
        )
        # both succeed; almost surely at different query counts
        assert a.success and b.success
        assert a.queries != b.queries

    def test_targeted(self):
        classifier = SinglePixelBackdoorClassifier(
            SHAPE, (2, 3), np.ones(3), default_class=0, backdoor_class=1,
            num_classes=3,
        )
        result = UniformRandomAttack().attack(
            classifier, gray_image(), true_class=0, target_class=1
        )
        assert result.success
        assert result.adversarial_class == 1
