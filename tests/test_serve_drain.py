"""Graceful serve shutdown: drain, 503 gate, persist, restore, SIGTERM.

In-process tests drive :class:`AttackServer` directly (the broker is
slowed so a big-budget session is reliably in flight when the drain
lands); the slow-marked test exercises the real signal path by spawning
``python -m repro.serve`` and SIGTERM-ing it mid-session.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.events import RunLog
from repro.serve.protocol import decode_attack_request
from repro.serve.server import AttackServer, ServeConfig
from repro.serve.sessions import SUSPENDED


#: ``default_rng(1)`` yields a 6x6 image the fixed-sketch attack never
#: cracks: it always runs its full 288-query pair space, so a session
#: attacking it is long-lived enough to drain mid-flight.
HARD_SEED = 1
HARD_QUERIES = 288


def _hard_request(server):
    image = np.random.default_rng(HARD_SEED).random((6, 6, 3))
    label = int(np.argmax(server.classifier(image)))
    return {
        "attack": "fixed",
        "image": image.tolist(),
        "true_class": label,
        "budget": 100000,
    }


def _slow_broker(server, delay=0.01):
    """Throttle the broker's model so sessions stay in flight."""
    real = server.broker.classifier

    def slow(image):
        time.sleep(delay)
        return real(image)

    server.broker.classifier = slow


def _config(tmp_path, **overrides):
    settings = dict(
        height=6, width=6, num_classes=3, seed=1, max_wait=0.001,
        checkpoint=str(tmp_path),
    )
    settings.update(overrides)
    return ServeConfig(**settings)


def _submit(server, payload, client="c1"):
    return server.handle_submit(json.dumps(payload).encode(), client)


def _golden_queries(server, payload):
    request = decode_attack_request(payload)
    result = request.attack.attack(
        server.classifier, request.image, request.true_class,
        budget=request.budget,
    )
    return result.queries


class TestDrain:
    def test_drain_suspends_and_persists_open_session(self, tmp_path):
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        payload = _hard_request(server)
        status, accepted = _submit(server, payload)
        assert status == 202
        time.sleep(0.05)  # let the driver pose a few queries

        summary = server.drain_and_stop()
        assert summary == {"open": 1, "persisted": 1, "unpersistable": 0}
        session = server.sessions.get(accepted["id"])
        assert session.state == SUSPENDED
        assert 0 < session.queries < HARD_QUERIES

        records, truncated = CheckpointStore(str(tmp_path)).records()
        assert truncated is False
        (record,) = records
        assert record["kind"] == "session"
        assert record["id"] == accepted["id"]
        assert record["spec"] == payload

    def test_draining_server_rejects_submissions_with_503(self, tmp_path):
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        payload = _hard_request(server)
        assert _submit(server, payload)[0] == 202
        server.draining = True
        status, body = _submit(server, payload)
        assert status == 503
        assert "draining" in body["error"]
        server.drain_and_stop()

    def test_drain_with_no_open_sessions_is_clean(self, tmp_path):
        server = AttackServer(_config(tmp_path))
        server.broker.start()
        summary = server.drain_and_stop()
        assert summary == {"open": 0, "persisted": 0, "unpersistable": 0}
        assert CheckpointStore(str(tmp_path)).records() == ([], False)

    def test_drain_without_checkpoint_still_finishes_in_flight(self, tmp_path):
        server = AttackServer(_config(tmp_path, checkpoint=None))
        _slow_broker(server)
        server.broker.start()
        assert _submit(server, _hard_request(server))[0] == 202
        time.sleep(0.05)
        summary = server.drain_and_stop()
        assert summary["open"] == 1
        assert summary["persisted"] == 0

    def test_drain_counts_unpersistable_sessions(self, tmp_path):
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        payload = _hard_request(server)
        request = decode_attack_request(payload)
        # programmatic session without a wire spec
        session = server.sessions.create(
            request.attack, request.image, request.true_class,
            budget=request.budget,
        )
        server.sessions.start(session)
        time.sleep(0.05)
        summary = server.drain_and_stop()
        assert summary == {"open": 1, "persisted": 0, "unpersistable": 1}


class TestRestore:
    def test_restored_session_finishes_with_golden_query_count(self, tmp_path):
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        payload = _hard_request(server)
        _, accepted = _submit(server, payload)
        time.sleep(0.05)
        server.drain_and_stop()
        golden = _golden_queries(server, payload)
        assert golden == HARD_QUERIES

        second = AttackServer(_config(tmp_path, resume=True))
        second.run_log = RunLog()  # the default NullRunLog discards events
        second.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                session = second.sessions.get(accepted["id"])
                assert session is not None, "restored session lost its id"
                if session.state in ("done", "failed"):
                    break
                time.sleep(0.02)
            assert session.state == "done"
            assert session.queries == golden
            # consumed records are cleared; next drain re-persists
            assert second.checkpoint.records() == ([], False)
            restores = second.run_log.of_type("session_restored")
            assert [e["session"] for e in restores] == [accepted["id"]]
        finally:
            second.stop()

    def test_restore_without_records_is_a_noop(self, tmp_path):
        server = AttackServer(_config(tmp_path, resume=True))
        server.start()
        assert server.sessions.list_sessions() == []
        server.stop()

    def test_restore_refuses_checkpoint_from_other_model(self, tmp_path):
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        _submit(server, _hard_request(server))
        time.sleep(0.05)
        server.drain_and_stop()

        from repro.runtime.checkpoint import CheckpointMismatch

        mismatched = AttackServer(_config(tmp_path, seed=2, resume=True))
        with pytest.raises(CheckpointMismatch):
            mismatched.start()

    def test_restore_refuses_corrupt_manifest(self, tmp_path):
        """A manifest that is not JSON is a hard, explicit refusal."""
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        _submit(server, _hard_request(server))
        time.sleep(0.05)
        server.drain_and_stop()
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text('{"kind": "serve", trailing garbage')

        from repro.runtime.checkpoint import CheckpointError

        corrupted = AttackServer(_config(tmp_path, resume=True))
        with pytest.raises(CheckpointError):
            corrupted.start()
        corrupted.stop()

    def test_mismatch_refusal_restores_nothing(self, tmp_path):
        """A refused resume is all-or-nothing: no partial restore, and
        the checkpoint records stay on disk for the right server."""
        server = AttackServer(_config(tmp_path))
        _slow_broker(server)
        server.broker.start()
        _submit(server, _hard_request(server))
        time.sleep(0.05)
        server.drain_and_stop()

        from repro.runtime.checkpoint import CheckpointMismatch

        mismatched = AttackServer(_config(tmp_path, seed=2, resume=True))
        with pytest.raises(CheckpointMismatch):
            mismatched.start()
        assert mismatched.sessions.list_sessions() == []
        mismatched.stop()
        # the records were not consumed by the refused resume
        records, truncated = CheckpointStore(str(tmp_path)).records()
        assert truncated is False
        assert len(records) == 1 and records[0]["kind"] == "session"

    def test_bad_spec_is_skipped_not_fatal(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        server = AttackServer(_config(tmp_path))
        store.write_manifest(server._checkpoint_manifest())
        store.append(
            {
                "kind": "session",
                "id": "s9",
                "client": "c1",
                "queries": 3,
                "state": SUSPENDED,
                "spec": {"attack": "no-such-attack"},
            }
        )
        resuming = AttackServer(_config(tmp_path, resume=True))
        resuming.run_log = RunLog()
        resuming.start()
        try:
            assert resuming.sessions.get("s9") is None
            failures = resuming.run_log.of_type("session_restore_failed")
            assert [e["session"] for e in failures] == ["s9"]
        finally:
            resuming.stop()


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _get_json(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.load(response)


def _wait_healthy(base, deadline=20.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            status, _ = _get_json(base + "/healthz", timeout=1.0)
            if status == 200:
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.05)
    raise AssertionError("server did not become healthy")


def _serve_argv(port, checkpoint, max_wait, resume=False):
    # --latency charges real per-image model time: with batch-native
    # stepping a session no longer pays the broker's max_wait per query,
    # so queue throttling alone would let the hard session finish before
    # the signal lands.
    argv = [
        sys.executable, "-m", "repro.serve",
        "--port", str(port),
        "--height", "6", "--width", "6", "--classes", "3", "--seed", "1",
        "--max-wait", str(max_wait),
        "--latency", "0.01",
        "--checkpoint", checkpoint,
    ]
    if resume:
        argv.append("--resume")
    return argv


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_drains_persists_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        checkpoint = str(tmp_path / "ckpt")

        # Phase 1: serve with a generous broker wait so the hard session
        # is still mid-flight (~50ms/query) when SIGTERM arrives.
        port = _free_port()
        child = subprocess.Popen(
            _serve_argv(port, checkpoint, max_wait=0.05),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        base = f"http://127.0.0.1:{port}"
        try:
            _wait_healthy(base)
            image = np.random.default_rng(HARD_SEED).random((6, 6, 3))
            # an identical local copy of the served toy model gives us
            # the true label without a wire round trip
            from repro.classifier.toy import SmoothLinearClassifier

            classifier = SmoothLinearClassifier(
                image_shape=(6, 6, 3), num_classes=3, seed=1
            )
            payload = {
                "attack": "fixed",
                "image": image.tolist(),
                "true_class": int(np.argmax(classifier(image))),
                "budget": 100000,
            }
            request = urllib.request.Request(
                base + "/attacks",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=5) as response:
                accepted = json.load(response)
            assert response.status == 202
            time.sleep(0.5)  # a handful of 50ms queries in
            child.send_signal(signal.SIGTERM)
            stdout, _ = child.communicate(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()
        assert child.returncode == 0, stdout
        assert "drained; 1/1 open sessions persisted" in stdout

        records, truncated = CheckpointStore(checkpoint).records()
        assert truncated is False
        (record,) = records
        assert record["id"] == accepted["id"]

        # Phase 2: resume at full speed; the original session id finishes
        # with the query count an uninterrupted run would have charged.
        port2 = _free_port()
        child2 = subprocess.Popen(
            _serve_argv(port2, checkpoint, max_wait=0.001, resume=True),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        base2 = f"http://127.0.0.1:{port2}"
        try:
            _wait_healthy(base2)
            deadline = time.monotonic() + 60.0
            final = None
            while time.monotonic() < deadline:
                _, final = _get_json(base2 + f"/attacks/{accepted['id']}")
                if final["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            assert final is not None and final["state"] == "done"
            assert final["queries"] == HARD_QUERIES
            child2.send_signal(signal.SIGTERM)
            stdout2, _ = child2.communicate(timeout=60)
            assert child2.returncode == 0, stdout2
        finally:
            if child2.poll() is None:
                child2.kill()
                child2.communicate()
