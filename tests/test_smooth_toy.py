"""Tests for the smooth / hotspot toy classifier."""

import numpy as np
import pytest

from repro.classifier.toy import SmoothLinearClassifier

SHAPE = (10, 10, 3)


class TestSmoothLinearClassifier:
    def test_scores_are_probabilities(self):
        classifier = SmoothLinearClassifier(SHAPE, num_classes=4, seed=0)
        scores = classifier(np.full(SHAPE, 0.5))
        assert scores.shape == (4,)
        assert scores.sum() == pytest.approx(1.0)

    def test_weights_are_spatially_correlated(self):
        """Adjacent pixels' weights correlate positively on average (an
        i.i.d. random weight map would average ~0); individual channels
        can dip negative when a high-frequency component dominates, so
        the check aggregates over classes, channels and seeds."""
        correlations = []
        for seed in range(4):
            classifier = SmoothLinearClassifier(SHAPE, num_classes=3, seed=seed)
            weights = classifier.weight.reshape(3, 10, 10, 3)
            for class_index in range(3):
                for channel in range(3):
                    field = weights[class_index, :, :, channel]
                    correlations.append(
                        np.corrcoef(
                            field[:, :-1].ravel(), field[:, 1:].ravel()
                        )[0, 1]
                    )
        assert np.mean(correlations) > 0.1

    def test_hotspot_concentrates_leverage(self):
        """With a corner hotspot, per-pixel weight energy peaks there."""
        classifier = SmoothLinearClassifier(
            SHAPE, num_classes=3, seed=2, hotspot=(0.9, -0.9), hotspot_width=0.3
        )
        weights = classifier.weight.reshape(3, 10, 10, 3)
        energy = (weights**2).sum(axis=(0, 3))
        peak = np.unravel_index(energy.argmax(), energy.shape)
        # hotspot (x=0.9, y=-0.9) maps near the top-right corner
        assert peak[0] <= 2 and peak[1] >= 7
        # the opposite corner is nearly dead
        assert energy[9, 0] < energy[peak] * 0.05

    def test_deterministic(self):
        a = SmoothLinearClassifier(SHAPE, num_classes=3, seed=3)
        b = SmoothLinearClassifier(SHAPE, num_classes=3, seed=3)
        image = np.random.default_rng(0).uniform(size=SHAPE)
        assert np.array_equal(a(image), b(image))

    def test_validation(self):
        with pytest.raises(ValueError):
            SmoothLinearClassifier((10, 10, 2), num_classes=3)
        with pytest.raises(ValueError):
            SmoothLinearClassifier(SHAPE, num_classes=1)
        with pytest.raises(ValueError):
            SmoothLinearClassifier(SHAPE, num_classes=3, temperature=0.0)
        classifier = SmoothLinearClassifier(SHAPE, num_classes=3)
        with pytest.raises(ValueError):
            classifier(np.zeros((8, 8, 3)))

    def test_single_pixel_changes_scores(self):
        classifier = SmoothLinearClassifier(SHAPE, num_classes=3, seed=4,
                                            temperature=0.05)
        image = np.full(SHAPE, 0.5)
        perturbed = image.copy()
        perturbed[5, 5] = [1.0, 0.0, 1.0]
        assert not np.allclose(classifier(image), classifier(perturbed))
