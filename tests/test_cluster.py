"""Tests for :mod:`repro.cluster` -- the sharded multi-worker serve tier.

The fast half exercises the pure machinery in-process: consistent
hashing, metrics aggregation, the ledger's open-session algebra, config
validation, and the router's routing table without any worker processes.
The slow half (``-m slow``) boots real tiers -- ``repro-serve``
subprocesses behind the threaded router -- and pins the subsystem's load
-bearing invariants: end-to-end attack completion across replicas,
worker-kill rebalance with paper-faithful query counts (differentially
checked via :func:`repro.testkit.kill.kill_worker_and_rebalance`),
crashed-worker restart, and whole-tier SIGTERM drain with durable
resume through the router ledger.
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig, worker_argv
from repro.cluster.hashing import DEFAULT_VNODES, HashRing
from repro.cluster.metrics import (
    aggregate_worker_metrics,
    merge_cache_stats,
    merge_histograms,
)
from repro.cluster.router import ClusterRouter, open_sessions_from_records
from repro.runtime.checkpoint import CheckpointMismatch, CheckpointStore


class TestHashRing:
    def test_assignment_is_deterministic(self):
        one, two = HashRing(), HashRing()
        for member in ("w0", "w1", "w2"):
            one.add(member)
            two.add(member)
        keys = [f"c{i}" for i in range(200)]
        assert [one.assign(k) for k in keys] == [two.assign(k) for k in keys]

    def test_assignment_order_independent(self):
        one, two = HashRing(), HashRing()
        for member in ("w0", "w1", "w2"):
            one.add(member)
        for member in ("w2", "w0", "w1"):
            two.add(member)
        keys = [f"c{i}" for i in range(200)]
        assert [one.assign(k) for k in keys] == [two.assign(k) for k in keys]

    def test_removal_only_remaps_the_dead_members_keys(self):
        ring = HashRing()
        for member in ("w0", "w1", "w2", "w3"):
            ring.add(member)
        keys = [f"c{i}" for i in range(500)]
        before = {k: ring.assign(k) for k in keys}
        ring.remove("w2")
        after = {k: ring.assign(k) for k in keys}
        for key in keys:
            if before[key] != "w2":
                assert after[key] == before[key]  # survivors keep theirs
            else:
                assert after[key] != "w2"  # orphans land elsewhere

    def test_spread_is_roughly_balanced(self):
        ring = HashRing()
        for member in ("w0", "w1", "w2", "w3"):
            ring.add(member)
        spread = ring.spread(f"c{i}" for i in range(2000))
        assert sum(spread.values()) == 2000
        for member, count in spread.items():
            assert count > 200, f"{member} owns only {count}/2000 keys"

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        points = len(ring._points)
        ring.add("w0")
        assert len(ring._points) == points
        ring.remove("w0")
        ring.remove("w0")
        assert len(ring) == 0

    def test_empty_ring_assigns_none(self):
        assert HashRing().assign("c1") is None

    def test_membership_protocol(self):
        ring = HashRing(vnodes=8)
        ring.add("w0")
        assert "w0" in ring and "w1" not in ring
        assert ring.members() == ["w0"]
        assert len(ring) == 1

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        assert HashRing().vnodes == DEFAULT_VNODES


class TestMetricsMerge:
    def test_histograms_merge_bucketwise(self):
        a = {"count": 4, "mean": 2.0, "max": 4.0, "buckets": {"<=2": 3, "<=4": 1}}
        b = {"count": 6, "mean": 8.0, "max": 16.0, "buckets": {"<=4": 2, "<=16": 4}}
        merged = merge_histograms([a, b])
        assert merged["count"] == 10
        assert merged["max"] == 16.0
        assert merged["buckets"] == {"<=2": 3, "<=4": 3, "<=16": 4}
        # mean from totals (4*2 + 6*8)/10, not the average of means
        assert merged["mean"] == pytest.approx(5.6)

    def test_empty_histograms_merge_to_zero(self):
        merged = merge_histograms([{}, {}])
        assert merged["count"] == 0 and merged["mean"] == 0.0

    def test_cache_rollup_sums_hits_across_replicas(self):
        stats = merge_cache_stats(
            {
                "w0": {"hits": 30, "misses": 70},
                "w1": {"hits": 10, "misses": 90},
                "w2": None,
            }
        )
        assert stats["cluster"] == {
            "hits": 40,
            "misses": 160,
            "hit_rate": pytest.approx(0.2),
        }
        assert stats["per_worker"]["w2"] is None

    def test_cache_rollup_without_any_scrape_is_none(self):
        assert merge_cache_stats({"w0": None})["cluster"] is None

    def test_aggregate_reports_unscraped_workers(self):
        payload = {
            "broker": {
                "submitted": 5,
                "flushes": 2,
                "coalesced_duplicates": 0,
                "rejected": 0,
                "batch_sizes": {"count": 2, "mean": 2.5, "max": 3, "buckets": {}},
                "model_batch_sizes": {"count": 2, "mean": 2.5, "max": 3,
                                      "buckets": {}},
                "cache": {"hits": 1, "misses": 4},
            },
            "sessions": {"states": {"done": 1, "running": 2}},
            "sessions_in_flight": 2,
            "broker_queue_depth": 7,
        }
        rollup = aggregate_worker_metrics({"w0": payload, "w1": None})
        assert rollup["unscraped"] == ["w1"]
        assert rollup["broker"]["submitted"] == 5
        assert rollup["sessions_in_flight"] == 2
        assert rollup["broker_queue_depth"] == 7
        assert rollup["session_states"] == {"done": 1, "running": 2}


class TestLedgerAlgebra:
    def test_done_marker_closes_a_session(self):
        records = [
            {"kind": "session", "id": "c1", "spec": {"a": 1}},
            {"kind": "session", "id": "c2", "spec": {"a": 2}},
            {"kind": "session_done", "id": "c1"},
        ]
        open_sessions = open_sessions_from_records(records)
        assert list(open_sessions) == ["c2"]

    def test_later_session_record_wins(self):
        records = [
            {"kind": "session", "id": "c1", "spec": {"v": "old"}},
            {"kind": "session", "id": "c1", "spec": {"v": "rebalanced"}},
        ]
        assert open_sessions_from_records(records)["c1"]["spec"] == {
            "v": "rebalanced"
        }

    def test_unknown_kinds_ignored(self):
        records = [{"kind": "noise"}, {"kind": "session_done", "id": "ghost"}]
        assert open_sessions_from_records(records) == {}


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(heartbeat=0)
        with pytest.raises(ValueError):
            ClusterConfig(heartbeat_misses=0)
        with pytest.raises(ValueError):
            ClusterConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            ClusterConfig(backoff=-0.1)

    def test_worker_argv_is_a_repro_serve_invocation(self):
        config = ClusterConfig(
            model="toy", height=6, width=6, num_classes=3, seed=1,
            latency=0.02, freeze=True, dtype="float32",
        )
        argv = worker_argv(config, 9999)
        assert argv[1:3] == ["-m", "repro.serve"]
        assert "--port" in argv and "9999" in argv
        assert "--latency" in argv and "0.02" in argv
        assert "--freeze" in argv
        assert argv[argv.index("--dtype") + 1] == "float32"
        # workers never inherit the router's checkpoint or resume flags
        assert "--checkpoint" not in argv and "--resume" not in argv

    def test_manifest_pins_model_identity(self):
        manifest = ClusterConfig(seed=3).manifest()
        assert manifest["kind"] == "cluster"
        assert manifest["seed"] == 3


class TestRouterTable:
    """Router logic that needs no worker processes."""

    def test_submit_with_no_live_workers_is_503(self):
        router = ClusterRouter(ClusterConfig(workers=2))
        status, payload = router.submit(b"{}", client="t")
        assert status == 503
        assert "no live workers" in payload["error"]

    def test_submit_rejects_bad_json(self):
        router = ClusterRouter(ClusterConfig(workers=1))
        router.ring.add("w0")
        status, payload = router.submit(b"not json", client="t")
        assert status == 400
        status, payload = router.submit(b"[1,2]", client="t")
        assert status == 400

    def test_draining_router_sheds_submissions(self):
        router = ClusterRouter(ClusterConfig(workers=1))
        router.draining = True
        status, payload = router.submit(b"{}", client="t")
        assert status == 503 and "draining" in payload["error"]
        assert router.healthz() == (503, {"status": "draining"})

    def test_unknown_session_is_404_and_unknown_path_routes(self):
        router = ClusterRouter(ClusterConfig(workers=1))
        assert router.get_session("c404")[0] == 404
        assert router.route("GET", "/nope", b"", "t")[0] == 404
        assert router.route("DELETE", "/attacks", b"", "t")[0] == 405

    def test_generated_ids_are_sequential_and_resume_safe(self):
        router = ClusterRouter(ClusterConfig(workers=1))
        assert router._generate_id() == "c1"
        router._note_restored_id("c41")
        assert router._generate_id() == "c42"
        router._note_restored_id("s9")  # worker-local ids never collide
        assert router._generate_id() == "c43"

    def test_ledger_manifest_guard(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write_manifest(ClusterConfig(seed=1).manifest())
        store.close()
        router = ClusterRouter(
            ClusterConfig(workers=1, seed=2, checkpoint=str(tmp_path))
        )
        with pytest.raises(CheckpointMismatch):
            router.ledger.reconcile_manifest(router.config.manifest())


# ----------------------------------------------------------------------
# slow: real tiers with worker subprocesses
# ----------------------------------------------------------------------


def _post_json(base, path, payload, headers=None):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.load(response)


def _wait_done(base, session_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            _, payload = _get_json(base, f"/attacks/{session_id}")
        except urllib.error.HTTPError:
            time.sleep(0.1)
            continue
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"session {session_id} never finished")


def _tier_config(**overrides):
    settings = dict(
        workers=2, port=0, height=6, width=6, num_classes=3, seed=1,
        heartbeat=0.2, backoff=0.2,
    )
    settings.update(overrides)
    return ClusterConfig(**settings)


@pytest.fixture
def toy_spec():
    from repro.classifier.toy import SmoothLinearClassifier

    classifier = SmoothLinearClassifier(
        image_shape=(6, 6, 3), num_classes=3, seed=1
    )

    def build(seed):
        image = np.random.default_rng(seed).random((6, 6, 3))
        return {
            "attack": "fixed",
            "image": image.tolist(),
            "true_class": int(np.argmax(classifier(image))),
            "budget": 100000,
        }

    return build


@pytest.mark.slow
class TestTierEndToEnd:
    def test_sessions_complete_across_replicas(self, toy_spec):
        from repro.cluster.router import ClusterHandle

        with ClusterHandle(_tier_config()) as tier:
            base = "http://%s:%d" % tier.address
            status, health = _get_json(base, "/healthz")
            assert status == 200
            assert health["workers"] == {"live": 2, "total": 2}

            accepted = []
            for seed in range(6):
                status, payload = _post_json(base, "/attacks", toy_spec(seed))
                assert status == 202
                assert payload["id"].startswith("c")
                accepted.append(payload)
            # the ring spreads deterministic ids over both replicas
            owners = {payload["worker"] for payload in accepted}
            assert owners == {"w0", "w1"}

            for payload in accepted:
                final = _wait_done(base, payload["id"])
                assert final["state"] == "done"
                assert final["worker"] == payload["worker"]  # sticky

            _, listing = _get_json(base, "/attacks")
            assert len(listing["sessions"]) == 6
            assert all(entry["done"] for entry in listing["sessions"])

            _, metrics = _get_json(base, "/metrics")
            assert metrics["cluster"]["routed"] == 6
            assert metrics["cluster"]["live"] == 2
            assert metrics["broker"]["submitted"] > 0
            assert metrics["unscraped"] == []
            assert metrics["cache"]["cluster"] is not None
        # exiting the context drains the tier; both workers exit cleanly
        assert all(
            worker.proc.returncode == 0 for worker in tier.router.workers
        )

    def test_worker_kill_rebalances_with_golden_query_count(self):
        from repro.testkit.kill import kill_worker_and_rebalance

        verdict = kill_worker_and_rebalance(workers=2)
        assert verdict["identical"], verdict
        assert verdict["finished_on"] != verdict["submitted_on"]
        assert verdict["deaths"] == 1
        assert verdict["rebalanced_sessions"] == 1

    def test_killed_worker_restarts_into_its_slot(self, toy_spec):
        from repro.cluster.router import ClusterHandle

        with ClusterHandle(_tier_config()) as tier:
            base = "http://%s:%d" % tier.address
            victim = tier.router.workers[0]
            old_pid = victim.pid
            victim.kill()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                _, health = _get_json(base, "/healthz")
                if (
                    health.get("workers", {}).get("live") == 2
                    and victim.pid != old_pid
                ):
                    break
                time.sleep(0.1)
            assert victim.pid != old_pid
            assert victim.restarts == 1
            # the reborn replica serves traffic again
            status, payload = _post_json(base, "/attacks", toy_spec(0))
            assert status == 202
            assert _wait_done(base, payload["id"])["state"] == "done"
            events = tier.router.run_log.of_type("worker_restart")
            assert [e["worker"] for e in events] == [victim.name]

    def test_tier_drain_persists_and_resumes_open_sessions(
        self, tmp_path, toy_spec
    ):
        from repro.cluster.router import ClusterHandle
        from repro.testkit.kill import hard_cluster_spec

        ledger_dir = str(tmp_path / "ledger")
        config = _tier_config(
            workers=2, latency=0.02, checkpoint=ledger_dir
        )
        tier = ClusterHandle(config).start()
        base = "http://%s:%d" % tier.address
        status, accepted = _post_json(base, "/attacks", hard_cluster_spec())
        assert status == 202
        time.sleep(0.5)  # a handful of 20ms queries in
        summary = tier.drain()
        assert summary["open"] == 1
        assert summary["durable"] == 1
        assert all(code == 0 for code in summary["exit_codes"].values())
        assert tier.router.healthz() == (503, {"status": "draining"})

        # the open session is durable in the ledger
        records, truncated = CheckpointStore(ledger_dir).records()
        assert truncated is False
        assert any(
            r["kind"] == "session" and r["id"] == accepted["id"]
            for r in records
        )

        # a restarted tier resumes it and finishes with the golden count
        resumed = ClusterHandle(
            _tier_config(workers=2, checkpoint=ledger_dir, resume=True)
        )
        with resumed:
            base = "http://%s:%d" % resumed.address
            final = _wait_done(base, accepted["id"], timeout=90.0)
            assert final["state"] == "done"
            assert final["result"]["queries"] == 288
            events = resumed.router.run_log.of_type("cluster_resume")
            assert events and events[0]["sessions"] == 1


# ----------------------------------------------------------------------
# fast: rebalance concurrency, terminal sweep, shared-cache config
# ----------------------------------------------------------------------


class TestRebalanceConcurrency:
    """Pin the tick_rebalance single-claim guarantee (PR 9 bugfix)."""

    def _router_with_pending(self, sessions=6):
        from repro.cluster.router import SessionEntry

        router = ClusterRouter(ClusterConfig(workers=1))
        router.ring.add("w0")
        for index in range(sessions):
            session_id = f"c{index + 1}"
            entry = SessionEntry(session_id, {"spec": index}, "client", None)
            router._sessions[session_id] = entry
            router._order.append(session_id)
            router._pending.append(session_id)
        return router

    def test_concurrent_ticks_never_double_place(self, monkeypatch):
        import threading

        router = self._router_with_pending(sessions=8)
        forwards = {}
        lock = threading.Lock()

        def slow_forward(owner, session_id, spec, client):
            with lock:
                forwards[session_id] = forwards.get(session_id, 0) + 1
            time.sleep(0.01)  # hold the claim across the unlocked window
            return 202, {"id": session_id}

        monkeypatch.setattr(router, "_forward_submit", slow_forward)
        threads = [
            threading.Thread(target=router.tick_rebalance) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        # every session placed exactly once, counted exactly once
        assert sorted(forwards) == [f"c{i + 1}" for i in range(8)]
        assert all(count == 1 for count in forwards.values())
        assert router.rebalanced_sessions == 8
        assert router._pending == []
        assert all(
            entry.worker == "w0" for entry in router._sessions.values()
        )

    def test_failed_placement_requeues_once(self, monkeypatch):
        router = self._router_with_pending(sessions=2)
        monkeypatch.setattr(
            router, "_forward_submit", lambda *a: (503, {"error": "down"})
        )
        placed = router.tick_rebalance()
        assert placed == 0
        assert sorted(router._pending) == ["c1", "c2"]
        assert router.rebalanced_sessions == 0

    def test_ledger_session_record_appended_once(self, monkeypatch, tmp_path):
        import threading

        from repro.cluster.router import SessionEntry

        router = ClusterRouter(
            ClusterConfig(workers=1, checkpoint=str(tmp_path))
        )
        router.ledger.reconcile_manifest(router.config.manifest())
        router.ring.add("w0")
        entry = SessionEntry("c1", {"attack": "fixed"}, None, None)
        router._sessions["c1"] = entry
        router._pending.append("c1")

        def slow_forward(owner, session_id, spec, client):
            time.sleep(0.01)
            return 202, {"id": session_id}

        monkeypatch.setattr(router, "_forward_submit", slow_forward)
        threads = [
            threading.Thread(target=router.tick_rebalance) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        records, _ = router.ledger.records()
        session_records = [r for r in records if r.get("kind") == "session"]
        assert len(session_records) == 1
        router.ledger.close()


class TestTerminalSweep:
    """Terminal-but-never-polled sessions are reaped (PR 9 bugfix)."""

    def _router_with_live_worker(self, checkpoint=None):
        from repro.cluster.router import SessionEntry
        from repro.cluster.workers import LIVE

        config = ClusterConfig(workers=1)
        if checkpoint:
            config = ClusterConfig(workers=1, checkpoint=checkpoint)
        router = ClusterRouter(config)
        router.workers[0].state = LIVE
        router.ring.add("w0")
        entry = SessionEntry("c1", {"attack": "fixed"}, None, "w0")
        router._sessions["c1"] = entry
        router._order.append("c1")
        return router, entry

    def test_sweep_marks_terminal_sessions_done(self, monkeypatch):
        router, entry = self._router_with_live_worker()
        monkeypatch.setattr(
            "repro.cluster.router.http_json",
            lambda *a, **k: (
                200,
                {"state": "done", "result": {"queries": 288}},
            ),
        )
        swept = router.sweep_terminal_sessions()
        assert swept == 1
        assert entry.done
        assert entry.final["result"]["queries"] == 288
        assert entry.final["worker"] == "w0"
        # idempotent: already-done sessions are not re-swept
        assert router.sweep_terminal_sessions() == 0

    def test_sweep_leaves_running_sessions_open(self, monkeypatch):
        router, entry = self._router_with_live_worker()
        monkeypatch.setattr(
            "repro.cluster.router.http_json",
            lambda *a, **k: (200, {"state": "running", "queries": 12}),
        )
        assert router.sweep_terminal_sessions() == 0
        assert not entry.done

    def test_sweep_closes_ledger_record(self, monkeypatch, tmp_path):
        router, entry = self._router_with_live_worker(
            checkpoint=str(tmp_path)
        )
        router.ledger.reconcile_manifest(router.config.manifest())
        router.ledger.append(
            {"kind": "session", "id": "c1", "client": None, "spec": {}}
        )
        monkeypatch.setattr(
            "repro.cluster.router.http_json",
            lambda *a, **k: (200, {"state": "done", "result": {}}),
        )
        router.sweep_terminal_sessions()
        records, _ = router.ledger.records()
        assert open_sessions_from_records(records) == {}
        router.ledger.close()

    def test_supervise_once_sweeps_on_cadence(self, monkeypatch):
        router, entry = self._router_with_live_worker()
        calls = []
        monkeypatch.setattr(
            router, "sweep_terminal_sessions", lambda: calls.append(1)
        )
        # no live processes: neuter the per-worker probes
        monkeypatch.setattr(
            router.workers[0], "process_alive", lambda: True
        )
        monkeypatch.setattr(
            router.workers[0], "healthy", lambda timeout=None: True
        )
        for _ in range(8):
            router.supervise_once()
        assert len(calls) == 2  # every 4th sweep


class TestSharedCacheConfig:
    def test_defaults_off(self):
        config = ClusterConfig()
        assert config.shared_cache is False
        assert config.shared_cache_size == 65536

    def test_worker_argv_carries_shared_cache_address(self):
        config = ClusterConfig(shared_cache=True)
        argv = worker_argv(config, 9000, shared_cache="127.0.0.1:9100")
        flag = argv.index("--shared-cache")
        assert argv[flag + 1] == "127.0.0.1:9100"
        assert "--shared-cache" not in worker_argv(config, 9000)

    def test_cacheservice_argv_shape(self):
        from repro.cluster.cacheservice import cacheservice_argv

        argv = cacheservice_argv(9100, size=1234)
        assert "repro.cluster.cacheservice" in argv
        assert argv[argv.index("--port") + 1] == "9100"
        assert argv[argv.index("--size") + 1] == "1234"

    def test_router_builds_cache_slot_only_when_enabled(self):
        assert ClusterRouter(ClusterConfig(workers=1)).cache_service is None
        router = ClusterRouter(ClusterConfig(workers=1, shared_cache=True))
        assert router.cache_service is not None
        assert router.cache_service.name == "l2cache"
        address = f"127.0.0.1:{router.cache_service.port}"
        argv = router.workers[0].argv_builder(router.config, 9000)
        assert argv[argv.index("--shared-cache") + 1] == address


@pytest.mark.slow
class TestSharedCacheTier:
    def test_two_replicas_share_hits_with_golden_counts(self):
        from repro.testkit.sharedcache import live_shared_cache_smoke

        verdict = live_shared_cache_smoke(workers=2)
        assert verdict["identical"], verdict
        assert len(verdict["distinct_workers"]) >= 2, verdict
        assert verdict["l2_hits"] > 0, verdict
        assert verdict["ok"], verdict


class TestLifecycleRouting:
    """Deadline, cancel, and reap plumbing; no worker processes."""

    def test_session_entry_parses_deadline_from_spec(self):
        from repro.cluster.router import SessionEntry

        assert SessionEntry(
            "c1", {"deadline_seconds": 4.5}, None, "w0"
        ).deadline_seconds == 4.5
        # booleans and garbage are not deadlines
        assert SessionEntry(
            "c2", {"deadline_seconds": True}, None, "w0"
        ).deadline_seconds is None
        assert SessionEntry("c3", {}, None, "w0").deadline_seconds is None
        assert SessionEntry("c4", None, None, "w0").deadline_seconds is None

    def test_pending_session_expires_even_with_no_live_workers(self, tmp_path):
        from repro.cluster.router import SessionEntry

        router = ClusterRouter(
            ClusterConfig(workers=1, checkpoint=str(tmp_path))
        )
        entry = SessionEntry("c1", {"deadline_seconds": 0.5}, "t", None)
        entry.accepted_at -= 10.0  # the budget elapsed while pending
        router._sessions["c1"] = entry
        router._order.append("c1")
        router._pending.append("c1")
        router.ledger.append(
            {"kind": "session", "id": "c1", "client": "t", "spec": entry.spec}
        )
        assert router.tick_rebalance() == 0  # ring is empty: no placement
        status, payload = router.get_session("c1")
        assert status == 200 and payload["state"] == "expired"
        assert router.expired_sessions == 1
        assert router._pending == []
        records, _ = router.ledger.records()
        assert open_sessions_from_records(records) == {}
        router.ledger.close()

    def test_rebalance_hands_survivor_only_remaining_deadline(
        self, monkeypatch
    ):
        from repro.cluster.router import SessionEntry

        router = ClusterRouter(ClusterConfig(workers=1))
        router.ring.add("w0")
        entry = SessionEntry("c1", {"deadline_seconds": 60.0}, "t", None)
        entry.accepted_at -= 10.0  # ten seconds already spent
        router._sessions["c1"] = entry
        router._pending.append("c1")
        forwarded = {}

        def fake_forward(owner, session_id, spec, client):
            forwarded[session_id] = spec
            return 202, {"id": session_id}

        monkeypatch.setattr(router, "_forward_submit", fake_forward)
        assert router.tick_rebalance() == 1
        remaining = forwarded["c1"]["deadline_seconds"]
        assert 0 < remaining < 60.0
        assert remaining == pytest.approx(50.0, abs=5.0)
        # the original spec is untouched (the rewrite is a copy)
        assert entry.spec["deadline_seconds"] == 60.0

    def test_cancel_pending_session_settles_locally_and_closes_ledger(
        self, tmp_path
    ):
        from repro.cluster.router import SessionEntry

        router = ClusterRouter(
            ClusterConfig(workers=1, checkpoint=str(tmp_path))
        )
        entry = SessionEntry("c1", {"attack": "fixed"}, "t", None)
        router._sessions["c1"] = entry
        router._order.append("c1")
        router._pending.append("c1")
        router.ledger.append(
            {"kind": "session", "id": "c1", "client": "t", "spec": entry.spec}
        )
        status, payload = router.cancel_session("c1")
        assert status == 200 and payload["state"] == "cancelled"
        assert payload["worker"] is None  # no generator ever ran anywhere
        assert router.cancelled_sessions == 1
        assert router._pending == []
        # idempotent: a retried DELETE converges on the cached final
        assert router.cancel_session("c1") == (200, payload)
        assert router.cancelled_sessions == 1
        records, _ = router.ledger.records()
        assert open_sessions_from_records(records) == {}
        router.ledger.close()
        assert router.cancel_session("c404")[0] == 404

    def test_router_level_shed_watermark(self):
        from repro.cluster.router import SessionEntry

        router = ClusterRouter(
            ClusterConfig(
                workers=1, shed_open_sessions=1, shed_retry_after=2.0
            )
        )
        router.ring.add("w0")
        router._sessions["c1"] = SessionEntry("c1", {}, "t", "w0")
        status, payload = router.submit(b"{}", client="t")
        assert status == 503
        assert payload["retry_after"] == 2.0
        assert "overloaded" in payload["error"]
        assert router.shed_submits == 1

    def test_metrics_rollup_sums_worker_lifecycle_counters(self):
        def worker(cancelled, expired, reaped, shed):
            return {
                "broker": {},
                "sessions": {"states": {}},
                "lifecycle": {
                    "cancelled": cancelled,
                    "expired": expired,
                    "reaped": reaped,
                    "shed": shed,
                },
            }

        rollup = aggregate_worker_metrics(
            {"w0": worker(1, 2, 3, 4), "w1": worker(10, 20, 30, 40),
             "w2": None}
        )
        assert rollup["lifecycle"] == {
            "cancelled": 11, "expired": 22, "reaped": 33, "shed": 44,
        }
        assert rollup["unscraped"] == ["w2"]

    def test_worker_argv_carries_lifecycle_flags(self):
        config = ClusterConfig(
            workers=1, default_deadline=5.0, max_deadline=10.0,
            session_ttl=30.0, idle_ttl=60.0, reap_interval=0.5,
            shed_queue_depth=128, shed_sessions=32, shed_retry_after=2.0,
        )
        argv = worker_argv(config, 9000)
        assert argv[argv.index("--default-deadline") + 1] == "5.0"
        assert argv[argv.index("--max-deadline") + 1] == "10.0"
        assert argv[argv.index("--session-ttl") + 1] == "30.0"
        assert argv[argv.index("--idle-ttl") + 1] == "60.0"
        assert argv[argv.index("--reap-interval") + 1] == "0.5"
        assert argv[argv.index("--shed-queue-depth") + 1] == "128"
        assert argv[argv.index("--shed-sessions") + 1] == "32"
        assert argv[argv.index("--shed-retry-after") + 1] == "2.0"
        # defaults add none of them
        bare = worker_argv(ClusterConfig(workers=1), 9000)
        for flag in ("--default-deadline", "--session-ttl",
                     "--shed-queue-depth", "--reap-interval"):
            assert flag not in bare


@pytest.mark.slow
class TestLifecycleTier:
    def test_cancel_and_kill_closes_ledger_and_resumes_nothing(self):
        from repro.testkit.kill import cancel_and_kill_cluster

        verdict = cancel_and_kill_cluster(workers=2)
        assert verdict["ok"], verdict
        assert verdict["cancelled_exact"], verdict
        assert verdict["survivor_queries"] == 288, verdict
        assert verdict["open_after_drain"] == [], verdict
        assert verdict["resumed_sessions"] == 0, verdict
