"""Tests for the data-augmentation pipeline."""

import numpy as np
import pytest

from repro.data.augment import (
    augment_batch,
    random_brightness,
    random_horizontal_flip,
    random_shift,
)


@pytest.fixture
def batch():
    return np.random.default_rng(0).uniform(size=(6, 8, 8, 3))


class TestFlip:
    def test_probability_one_flips_everything(self, batch):
        flipped = random_horizontal_flip(batch, np.random.default_rng(1), 1.0)
        assert np.array_equal(flipped, batch[:, :, ::-1, :])

    def test_probability_zero_is_identity(self, batch):
        out = random_horizontal_flip(batch, np.random.default_rng(1), 0.0)
        assert np.array_equal(out, batch)

    def test_does_not_mutate_input(self, batch):
        before = batch.copy()
        random_horizontal_flip(batch, np.random.default_rng(2), 1.0)
        assert np.array_equal(batch, before)

    def test_validation(self, batch):
        with pytest.raises(ValueError):
            random_horizontal_flip(batch, np.random.default_rng(0), 1.5)


class TestShift:
    def test_zero_shift_is_identity(self, batch):
        out = random_shift(batch, np.random.default_rng(0), max_shift=0)
        assert np.array_equal(out, batch)

    def test_content_is_translated(self):
        image = np.zeros((1, 5, 5, 3))
        image[0, 2, 2] = 1.0
        rng = np.random.default_rng(3)
        shifted = random_shift(image, rng, max_shift=1)
        # the bright pixel moved by at most 1 in each axis and survived
        # unless shifted out of frame
        bright = np.argwhere(shifted[0, :, :, 0] > 0.5)
        if len(bright):
            assert abs(bright[0][0] - 2) <= 1
            assert abs(bright[0][1] - 2) <= 1

    def test_zero_fill(self):
        image = np.ones((1, 4, 4, 3))

        class FixedRng:
            def integers(self, lo, hi, size):
                return np.full(size, 1)  # always shift by +1

        shifted = random_shift(image, FixedRng(), max_shift=1)
        assert np.array_equal(shifted[0, 0, :, :], np.zeros((4, 3)))
        assert np.array_equal(shifted[0, :, 0, :], np.zeros((4, 3)))
        assert shifted[0, 1:, 1:].min() == 1.0

    def test_validation(self, batch):
        with pytest.raises(ValueError):
            random_shift(batch, np.random.default_rng(0), max_shift=-1)


class TestBrightness:
    def test_stays_in_unit_range(self, batch):
        out = random_brightness(batch, np.random.default_rng(4), jitter=0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_zero_jitter_is_identity(self, batch):
        out = random_brightness(batch, np.random.default_rng(4), jitter=0.0)
        assert np.allclose(out, batch)

    def test_validation(self, batch):
        with pytest.raises(ValueError):
            random_brightness(batch, np.random.default_rng(0), jitter=-0.1)


class TestPipeline:
    def test_shapes_and_range(self, batch):
        out = augment_batch(batch, np.random.default_rng(5))
        assert out.shape == batch.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_deterministic_given_seed(self, batch):
        a = augment_batch(batch, np.random.default_rng(6))
        b = augment_batch(batch, np.random.default_rng(6))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            augment_batch(np.zeros((2, 4, 4)), np.random.default_rng(0))
