"""The inference fast path: freeze()/unfreeze(), conv+BN folding,
workspace reuse, and the batch-norm precision fixes that ride along.

Acceptance contract (mirrored by ``benchmarks/test_inference_fastpath.py``
for throughput): the default unfrozen eval path stays bit-identical to
the seed implementation, the frozen path is decision-identical with
scores allclose at tight tolerance, and ``unfreeze()`` restores the
bit-exact eval path with trainable parameters untouched.
"""

import numpy as np
import pytest

from repro.classifier.blackbox import NetworkClassifier
from repro.models.registry import build_model
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.testkit.differential import tiny_network_classifier


def _conv_bn_net(seed: int = 3) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 6, 3, padding=1, rng=rng),
        BatchNorm2d(6),
        ReLU(),
        MaxPool2d(2),
        Conv2d(6, 6, 3, padding=1, rng=rng),
        BatchNorm2d(6),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(6, 4, rng=rng),
    )


def _warmed(model: Sequential, seed: int = 4) -> Sequential:
    """Train-mode forwards so batch-norm running stats are non-trivial."""
    model.train()
    rng = np.random.default_rng(seed)
    for _ in range(3):
        model(rng.normal(0.45, 0.25, size=(8, 3, 8, 8)))
    model.eval()
    return model


@pytest.fixture
def net():
    return _warmed(_conv_bn_net())


@pytest.fixture
def batch():
    return np.random.default_rng(5).random((4, 3, 8, 8))


class TestFreezeBasics:
    def test_freeze_marks_every_module(self, net):
        net.freeze()
        assert net.frozen
        assert all(module.inference for module in net.modules())
        assert not any(module.training for module in net.modules())

    def test_unfreeze_clears_every_module(self, net):
        net.freeze()
        net.unfreeze()
        assert not any(module.inference for module in net.modules())

    def test_train_auto_unfreezes(self, net):
        net.freeze()
        net.train()
        assert not net.frozen
        assert all(module.training for module in net.modules())

    def test_backward_raises_when_frozen(self, net, batch):
        net.freeze()
        out = net(batch)
        with pytest.raises(RuntimeError, match="inference mode"):
            net.backward(np.ones_like(out))

    def test_dropout_is_identity_when_frozen(self):
        dropout = Dropout(p=0.5, seed=0)
        dropout.freeze()
        x = np.random.default_rng(6).random((3, 7))
        assert dropout(x) is x


class TestFolding:
    def test_frozen_scores_allclose_and_decisions_identical(self, net, batch):
        reference = net(batch)
        net.freeze()
        frozen = net(batch)
        assert np.allclose(frozen, reference, rtol=1e-9, atol=1e-12)
        assert np.array_equal(frozen.argmax(axis=1), reference.argmax(axis=1))

    def test_conv_bn_actually_folds(self, net):
        net.freeze()
        convs = [m for m in net.modules() if isinstance(m, Conv2d)]
        bns = [m for m in net.modules() if isinstance(m, BatchNorm2d)]
        assert all(conv._folded_weight is not None for conv in convs)
        assert all(bn._folded for bn in bns)

    def test_bn_without_affine_predecessor_still_matches(self, batch):
        # a BN that follows a pool cannot fold; its frozen forward must
        # fall back to the precomputed fused multiply-add
        model = _warmed(
            Sequential(MaxPool2d(2), BatchNorm2d(3), GlobalAvgPool2d())
        )
        reference = model(batch)
        model.freeze()
        bn = model[1]
        assert not bn._folded
        assert np.allclose(model(batch), reference, rtol=1e-9, atol=1e-12)

    def test_unfreeze_round_trip_is_bit_exact(self, net, batch):
        before_state = {k: v.copy() for k, v in net.state_dict().items()}
        reference = net(batch)
        net.freeze()
        net(batch)
        net.unfreeze()
        after_state = net.state_dict()
        assert before_state.keys() == after_state.keys()
        for key, value in before_state.items():
            assert np.array_equal(value, after_state[key]), key
        assert np.array_equal(net(batch), reference)

    def test_load_state_dict_refreshes_folds(self, net, batch):
        net.freeze()
        stale = net(batch)
        donor = _warmed(_conv_bn_net(seed=11), seed=12)
        net.load_state_dict(donor.state_dict())
        assert net.frozen  # loading keeps the fast path active...
        refreshed = net(batch)
        # ...and refolds from the *new* weights, not the stale ones
        donor_reference = donor(batch)
        assert np.allclose(refreshed, donor_reference, rtol=1e-9, atol=1e-12)
        assert not np.allclose(refreshed, stale, rtol=1e-9, atol=1e-12)


class TestWorkspaceReuse:
    def test_repeated_same_shape_batches_are_deterministic(self, net, batch):
        net.freeze()
        first = net(batch).copy()
        for _ in range(3):
            assert np.array_equal(net(batch), first)

    def test_shape_changes_between_batches(self, net, batch):
        net.unfreeze()
        small = batch[:2]
        ref_full = net(batch)
        ref_small = net(small)
        net.freeze()
        assert np.allclose(net(batch), ref_full, rtol=1e-9, atol=1e-12)
        assert np.allclose(net(small), ref_small, rtol=1e-9, atol=1e-12)
        assert np.allclose(net(batch), ref_full, rtol=1e-9, atol=1e-12)

    def test_avgpool_frozen_matches_eval(self):
        x = np.random.default_rng(8).random((2, 3, 6, 6))
        pool = AvgPool2d(3, stride=1, padding=1)
        reference = pool(x)
        pool.freeze()
        assert np.allclose(pool(x), reference, rtol=1e-12, atol=1e-15)

    def test_maxpool_frozen_is_bit_exact(self):
        x = np.random.default_rng(9).random((2, 3, 6, 6))
        pool = MaxPool2d(2)
        reference = pool(x)
        pool.freeze()
        assert np.array_equal(pool(x), reference)


class TestNetworkClassifierFastPath:
    def test_frozen_classifier_decision_identical(self):
        plain = tiny_network_classifier()
        frozen = tiny_network_classifier(frozen=True)
        rng = np.random.default_rng(10)
        for _ in range(10):
            image = rng.random((8, 8, 3))
            a, b = plain(image), frozen(image)
            assert np.allclose(a, b, rtol=1e-9, atol=1e-12)
            assert a.argmax() == b.argmax()

    def test_float32_frozen_decisions_match(self):
        plain = tiny_network_classifier()
        fast = tiny_network_classifier(frozen=True, dtype=np.float32)
        rng = np.random.default_rng(11)
        images = rng.random((12, 8, 8, 3))
        a = plain.batch(images)
        b = fast.batch(images)
        assert np.array_equal(a.argmax(axis=1), b.argmax(axis=1))
        assert np.allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_freeze_and_unfreeze_methods(self):
        classifier = tiny_network_classifier()
        image = np.random.default_rng(12).random((8, 8, 3))
        reference = classifier(image)
        assert not classifier.frozen
        classifier.freeze()
        assert classifier.frozen
        classifier.unfreeze()
        assert not classifier.frozen
        assert np.array_equal(classifier(image), reference)


class TestRegistryModels:
    def _check(self, arch: str):
        rng = np.random.default_rng(0)
        model = build_model(arch, num_classes=10, seed=0)
        model.train()
        model(rng.normal(0.45, 0.25, size=(8, 3, 16, 16)))
        model.eval()
        batch = rng.random((4, 3, 16, 16))
        reference = model(batch)
        model.freeze()
        frozen = model(batch)
        assert np.allclose(frozen, reference, rtol=1e-8, atol=1e-10), arch
        assert np.array_equal(
            frozen.argmax(axis=1), reference.argmax(axis=1)
        ), arch
        model.unfreeze()
        assert np.array_equal(model(batch), reference), arch

    def test_vgg16bn_fast_path(self):
        self._check("vgg16bn")

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "arch", ["resnet18", "resnet50", "googlenet", "densenet121"]
    )
    def test_remaining_architectures(self, arch):
        self._check(arch)


class TestBatchNormPrecision:
    def test_momentum_zero_supported_under_freeze(self):
        # the freeze path relies on stats staying put; momentum=0 is the
        # standard way to pin them (regression for the momentum>0 check)
        bn = BatchNorm2d(2, momentum=0.0)
        bn.eval()
        x = np.random.default_rng(13).random((2, 2, 4, 4))
        reference = bn(x)
        bn.freeze()
        assert np.allclose(bn(x), reference, rtol=1e-12, atol=1e-15)

    def test_eval_float32_fold_computed_in_float64(self):
        # harsh statistics: large mean, tiny variance.  Downcasting the
        # scale/shift intermediates to float32 before the multiply-add
        # (the old eval path) loses ~all significant digits of the
        # output; folding in float64 and casting only the result keeps
        # the error at float32 epsilon scale.
        bn = BatchNorm2d(1)
        bn.running_mean = np.array([1000.0])
        bn.running_var = np.array([1e-3])
        bn.gamma.data = np.array([0.1])
        bn.beta.data = np.array([0.5])
        bn.eval()
        x64 = 1000.0 + np.random.default_rng(14).normal(
            0.0, 0.05, size=(4, 1, 3, 3)
        )
        reference = bn(x64)
        bn.gamma.data = bn.gamma.data.astype(np.float32)
        bn.beta.data = bn.beta.data.astype(np.float32)
        out32 = bn(x64.astype(np.float32))
        assert out32.dtype == np.float32
        # float32 x loses ~6e-5 of the 1000-scale input; the fold itself
        # must not add error beyond that input quantization
        assert np.allclose(out32, reference, rtol=1e-3, atol=2e-2)

    def test_eval_matches_train_normalization_within_bias_bound(self):
        # momentum=1.0 makes the running stats exactly the last batch's
        # moments (with the unbiased-variance correction), so eval and
        # train outputs on that batch may differ only by the
        # count/(count-1) variance factor -- a bounded, known divergence
        rng = np.random.default_rng(15)
        bn = BatchNorm2d(3, momentum=1.0)
        bn.gamma.data = rng.normal(1.0, 0.2, size=3)
        bn.beta.data = rng.normal(0.0, 0.2, size=3)
        x = rng.normal(2.0, 1.5, size=(8, 3, 4, 4))
        bn.train()
        out_train = bn(x)
        bn.eval()
        out_eval = bn(x)
        count = x.shape[0] * x.shape[2] * x.shape[3]
        bound = abs(np.sqrt(count / (count - 1)) - 1.0) + 1e-9
        scale = np.abs(out_train - bn.beta.data[None, :, None, None])
        assert np.all(np.abs(out_eval - out_train) <= bound * scale + 1e-9)
