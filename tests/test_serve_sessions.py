"""Tests for attack sessions and the session manager."""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.classifier.toy import LinearPixelClassifier, make_toy_images
from repro.runtime.events import RunLog
from repro.serve.broker import MicroBatchBroker
from repro.serve.sessions import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    AttackSession,
    SessionManager,
)


@pytest.fixture
def classifier(toy_shape):
    return LinearPixelClassifier(toy_shape, num_classes=3, seed=1, temperature=0.05)


@pytest.fixture
def manager(classifier):
    return SessionManager(MicroBatchBroker(classifier), max_workers=4)


def _job(classifier, toy_shape, seed=20):
    image = make_toy_images(1, toy_shape, seed=seed)[0]
    return image, int(np.argmax(classifier(image)))


class TestAttackSession:
    def test_lifecycle(self, classifier, toy_shape):
        image, label = _job(classifier, toy_shape)
        session = AttackSession("s1", FixedSketchAttack(), image, label, budget=300)
        assert session.state == QUEUED
        request = session.start()
        assert session.state == RUNNING
        while request is not None:
            request = session.advance(classifier(request.image))
        assert session.state == DONE
        assert session.result is not None
        # accounting invariant: externally counted == attack's own tally
        assert session.queries == session.result.queries

    def test_double_start_rejected(self, classifier, toy_shape):
        image, label = _job(classifier, toy_shape)
        session = AttackSession("s1", FixedSketchAttack(), image, label)
        session.start()
        with pytest.raises(RuntimeError):
            session.start()

    def test_advance_without_pending_rejected(self, classifier, toy_shape):
        image, label = _job(classifier, toy_shape)
        session = AttackSession("s1", FixedSketchAttack(), image, label)
        with pytest.raises(RuntimeError):
            session.advance(np.zeros(3))

    def test_fail_records_error(self, classifier, toy_shape):
        image, label = _job(classifier, toy_shape)
        session = AttackSession("s1", FixedSketchAttack(), image, label)
        session.start()
        session.fail(RuntimeError("boom"))
        assert session.state == FAILED
        assert "boom" in session.error

    def test_to_dict_is_json_safe(self, classifier, toy_shape):
        import json

        image, label = _job(classifier, toy_shape)
        session = AttackSession("s1", FixedSketchAttack(), image, label, budget=300)
        request = session.start()
        while request is not None:
            request = session.advance(classifier(request.image))
        payload = session.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["state"] == DONE
        assert payload["queries"] == session.queries
        assert payload["result"]["queries"] == session.result.queries


class TestSessionManager:
    def test_ids_are_sequential(self, manager, classifier, toy_shape):
        image, label = _job(classifier, toy_shape)
        first = manager.create(FixedSketchAttack(), image, label)
        second = manager.create(FixedSketchAttack(), image, label)
        assert (first.session_id, second.session_id) == ("s1", "s2")
        assert manager.get("s1") is first
        assert manager.get("missing") is None

    def test_cooperative_run_many(self, classifier, toy_shape):
        broker = MicroBatchBroker(classifier)
        manager = SessionManager(broker)
        jobs = [_job(classifier, toy_shape, seed=s) for s in range(30, 36)]
        sessions = [
            manager.create(
                UniformRandomAttack(UniformRandomConfig(seed=s)),
                image,
                label,
                budget=150,
            )
            for s, (image, label) in enumerate(jobs)
        ]
        manager.run_cooperative(sessions)
        assert all(session.state == DONE for session in sessions)
        for session in sessions:
            assert session.queries == session.result.queries
        # rounds batched: mean batch size well above 1
        assert broker.stats()["batch_sizes"]["mean"] > 1.5

    def test_threaded_drive(self, manager, classifier, toy_shape):
        manager.broker.start()
        try:
            jobs = [_job(classifier, toy_shape, seed=s) for s in range(40, 44)]
            sessions = [
                manager.create(FixedSketchAttack(), image, label, budget=300)
                for image, label in jobs
            ]
            futures = [manager.start(session) for session in sessions]
            for future in futures:
                future.result(timeout=60)
        finally:
            manager.broker.stop()
            manager.shutdown()
        assert all(session.state == DONE for session in sessions)

    def test_drive_failure_marks_session(self, toy_shape):
        def broken(image):
            raise RuntimeError("model exploded")

        with MicroBatchBroker(broken) as broker:
            manager = SessionManager(broker)
            image = make_toy_images(1, toy_shape, seed=50)[0]
            session = manager.create(FixedSketchAttack(), image, 0, budget=10)
            manager.drive(session)
        assert session.state == FAILED
        assert "model exploded" in session.error

    def test_history_trim(self, classifier, toy_shape):
        manager = SessionManager(MicroBatchBroker(classifier), history=2)
        image, label = _job(classifier, toy_shape)
        sessions = [
            manager.create(FixedSketchAttack(), image, label, budget=100)
            for _ in range(4)
        ]
        manager.run_cooperative(sessions)
        assert manager.get(sessions[0].session_id) is None
        assert manager.get(sessions[-1].session_id) is not None
        assert len(manager.list_sessions()) == 2

    def test_observability(self, manager, classifier, toy_shape):
        image, label = _job(classifier, toy_shape)
        session = manager.create(FixedSketchAttack(), image, label, budget=100)
        assert manager.active_count() == 1
        assert manager.states() == {QUEUED: 1}
        manager.run_cooperative([session])
        assert manager.active_count() == 0
        assert manager.query_counts()[session.session_id] == session.queries

    def test_telemetry_events(self, classifier, toy_shape):
        log = RunLog()
        manager = SessionManager(MicroBatchBroker(classifier), run_log=log)
        image, label = _job(classifier, toy_shape)
        session = manager.create(FixedSketchAttack(), image, label, budget=100)
        manager.run_cooperative([session])
        names = [event["event"] for event in log.events]
        assert "session_created" in names
        assert "session_end" in names
        end = next(e for e in log.events if e["event"] == "session_end")
        assert end["queries"] == session.queries
        assert end["state"] == DONE

    def test_validation(self, classifier):
        broker = MicroBatchBroker(classifier)
        with pytest.raises(ValueError):
            SessionManager(broker, max_workers=0)
        with pytest.raises(ValueError):
            SessionManager(broker, history=-1)
