"""Property-based tests for the im2col/col2im core.

The correctness of every convolution gradient in the framework reduces to
one algebraic fact: ``col2im`` is the adjoint of ``im2col``,
``<im2col(x), y> = <x, col2im(y)>`` for all x, y.  Hypothesis checks it
across shapes, strides and paddings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import col2im, conv_output_size, im2col


@st.composite
def conv_setups(draw):
    kernel = draw(st.integers(1, 3))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 2))
    # input must be large enough for one output position
    min_size = max(kernel - 2 * padding, 1)
    h = draw(st.integers(min_size, min_size + 4))
    w = draw(st.integers(min_size, min_size + 4))
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 3))
    return n, c, h, w, kernel, stride, padding


class TestConvOutputSize:
    def test_known_values(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 2, 2, 0) == 16
        assert conv_output_size(5, 3, 2, 0) == 2

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6))
        cols, out_h, out_w = im2col(x, kernel=3, stride=1, padding=1)
        assert (out_h, out_w) == (6, 6)
        assert cols.shape == (2 * 36, 3 * 9)

    def test_known_unfold(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, out_h, out_w = im2col(x, kernel=2, stride=2, padding=0)
        assert (out_h, out_w) == (2, 2)
        assert np.array_equal(cols[0], [0, 1, 4, 5])
        assert np.array_equal(cols[3], [10, 11, 14, 15])

    @settings(max_examples=60, deadline=None)
    @given(conv_setups(), st.integers(0, 2**31 - 1))
    def test_col2im_is_adjoint_of_im2col(self, setup, seed):
        n, c, h, w, kernel, stride, padding = setup
        try:
            conv_output_size(h, kernel, stride, padding)
            conv_output_size(w, kernel, stride, padding)
        except ValueError:
            return  # degenerate geometry; nothing to check
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, h, w))
        cols, _, _ = im2col(x, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel, stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(conv_setups(), st.integers(0, 2**31 - 1))
    def test_unfold_values_come_from_input(self, setup, seed):
        """Every unfolded entry is either an input value or padding zero."""
        n, c, h, w, kernel, stride, padding = setup
        try:
            conv_output_size(h, kernel, stride, padding)
            conv_output_size(w, kernel, stride, padding)
        except ValueError:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, h, w))
        cols, _, _ = im2col(x, kernel, stride, padding)
        values = set(np.round(x.reshape(-1), 9)) | {0.0}
        for entry in np.round(cols.reshape(-1), 9):
            assert entry in values
