"""Tests for weight initializers and dtype casting."""

import numpy as np
import pytest

from repro.models.vgg import MiniVGG
from repro.nn.initializers import kaiming_normal, ones, xavier_uniform, zeros


class TestInitializers:
    def test_kaiming_scale(self):
        rng = np.random.default_rng(0)
        weights = kaiming_normal(rng, (2000, 50), fan_in=50)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 50), rel=0.05)
        assert abs(weights.mean()) < 0.01

    def test_xavier_bounds(self):
        rng = np.random.default_rng(1)
        weights = xavier_uniform(rng, (100, 100), fan_in=100, fan_out=100)
        bound = np.sqrt(6.0 / 200)
        assert weights.min() >= -bound
        assert weights.max() <= bound

    def test_deterministic_given_rng(self):
        a = kaiming_normal(np.random.default_rng(7), (4, 4), fan_in=4)
        b = kaiming_normal(np.random.default_rng(7), (4, 4), fan_in=4)
        assert np.array_equal(a, b)

    def test_constant_initializers(self):
        assert np.array_equal(zeros((2, 3)), np.zeros((2, 3)))
        assert np.array_equal(ones((4,)), np.ones(4))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kaiming_normal(rng, (2, 2), fan_in=0)
        with pytest.raises(ValueError):
            xavier_uniform(rng, (2, 2), fan_in=0, fan_out=2)


class TestAstype:
    def test_casts_parameters_and_buffers(self):
        model = MiniVGG(num_classes=3, stage_channels=(4,), seed=0)
        model.astype(np.float32)
        for param in model.parameters():
            assert param.data.dtype == np.float32
        for _, buffer in model.named_buffers():
            assert buffer.dtype == np.float32

    def test_float32_forward_close_to_float64(self):
        model64 = MiniVGG(num_classes=3, stage_channels=(4,), seed=1)
        model32 = MiniVGG(num_classes=3, stage_channels=(4,), seed=1)
        model32.astype(np.float32)
        model64.eval()
        model32.eval()
        x = np.random.default_rng(2).uniform(size=(2, 3, 8, 8))
        out64 = model64(x)
        out32 = model32(x.astype(np.float32))
        assert np.allclose(out64, out32, atol=1e-4)
