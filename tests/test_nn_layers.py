"""Numerical gradient checks and shape tests for every layer."""

import numpy as np
import pytest

from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.shape import Concat, Flatten

RNG = np.random.default_rng(0)


def numerical_input_grad(layer, x, grad_out, eps=1e-6):
    """Central-difference gradient of sum(out * grad_out) w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = float((layer.forward(x) * grad_out).sum())
        flat[index] = original - eps
        minus = float((layer.forward(x) * grad_out).sum())
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, atol=1e-6):
    rng = np.random.default_rng(1)
    out = layer.forward(x)
    grad_out = rng.normal(size=out.shape)
    analytic = layer.backward(grad_out)
    layer.zero_grad() if hasattr(layer, "zero_grad") else None
    numeric = numerical_input_grad(layer, x, grad_out)
    # re-run forward so the layer cache matches x again
    layer.forward(x)
    assert np.allclose(analytic, numeric, atol=atol), (
        f"max err {np.abs(analytic - numeric).max()}"
    )


def check_param_gradient(layer, x, atol=1e-5):
    rng = np.random.default_rng(2)
    out = layer.forward(x)
    grad_out = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(grad_out)
    for param in layer.parameters():
        analytic = param.grad.copy()
        numeric = np.zeros_like(param.data)
        flat = param.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        eps = 1e-6
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + eps
            plus = float((layer.forward(x) * grad_out).sum())
            flat[index] = original - eps
            minus = float((layer.forward(x) * grad_out).sum())
            flat[index] = original
            numeric_flat[index] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=atol), (
            f"param grad max err {np.abs(analytic - numeric).max()}"
        )


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 5, 3, stride=2, padding=1, rng=RNG)
        out = conv.forward(RNG.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 5, 4, 4)

    def test_input_gradient(self):
        conv = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(3))
        check_input_gradient(conv, np.random.default_rng(4).normal(size=(2, 2, 5, 5)))

    def test_param_gradient(self):
        conv = Conv2d(2, 2, 3, stride=2, padding=1, rng=np.random.default_rng(5))
        check_param_gradient(conv, np.random.default_rng(6).normal(size=(1, 2, 5, 5)))

    def test_known_convolution(self):
        # identity kernel passes the input through
        conv = Conv2d(1, 1, 1, bias=False, rng=RNG)
        conv.weight.data[...] = 1.0
        x = RNG.normal(size=(1, 1, 4, 4))
        assert np.allclose(conv.forward(x), x)

    def test_bias_disabled(self):
        conv = Conv2d(2, 3, 3, bias=False, rng=RNG)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Conv2d(0, 3, 3)
        with pytest.raises(ValueError):
            Conv2d(3, 3, 3, stride=0)
        conv = Conv2d(3, 4, 3, rng=RNG)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 8, 8)))


class TestLinear:
    def test_affine_map(self):
        linear = Linear(3, 2, rng=RNG)
        linear.weight.data = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        linear.bias.data = np.array([1.0, -1.0])
        out = linear.forward(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(out, [[2.0, 3.0]])

    def test_gradients(self):
        linear = Linear(4, 3, rng=np.random.default_rng(7))
        x = np.random.default_rng(8).normal(size=(3, 4))
        check_input_gradient(linear, x)
        check_param_gradient(linear, x)


class TestActivations:
    @pytest.mark.parametrize(
        "layer", [ReLU(), LeakyReLU(0.1), Sigmoid(), Tanh()]
    )
    def test_gradient(self, layer):
        x = np.random.default_rng(9).normal(size=(2, 3, 4)) + 0.1
        check_input_gradient(layer, x)

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert np.array_equal(out, [0.0, 0.0, 2.0])

    def test_sigmoid_stable_for_large_inputs(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.allclose(out, [0.0, 1.0])
        assert np.isfinite(out).all()

    def test_leaky_relu_validation(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.5)


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm2d(3)
        x = np.random.default_rng(10).normal(2.0, 3.0, size=(8, 3, 4, 4))
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_used_in_eval(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(11).normal(1.0, 2.0, size=(16, 2, 3, 3))
        for _ in range(50):
            bn.forward(x)
        bn.training = False
        out = bn.forward(x)
        # running stats converge to batch stats, so eval output is normalized
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.05)

    def test_input_gradient_training(self):
        bn = BatchNorm2d(2)
        bn.gamma.data = np.array([1.5, 0.5])
        bn.beta.data = np.array([0.1, -0.2])
        x = np.random.default_rng(12).normal(size=(4, 2, 3, 3))
        check_input_gradient(bn, x, atol=1e-5)

    def test_param_gradient(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(13).normal(size=(4, 2, 3, 3))
        check_param_gradient(bn, x)

    def test_input_gradient_eval(self):
        bn = BatchNorm2d(2)
        bn.forward(np.random.default_rng(14).normal(size=(8, 2, 3, 3)))
        bn.training = False
        x = np.random.default_rng(15).normal(size=(4, 2, 3, 3))
        check_input_gradient(bn, x)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2d(0)
        with pytest.raises(ValueError):
            BatchNorm2d(3, momentum=-0.1)
        with pytest.raises(ValueError):
            BatchNorm2d(3, momentum=1.5)

    def test_momentum_zero_freezes_running_stats(self):
        # regression: momentum=0.0 was rejected, yet it is the standard
        # way to pin running statistics while fine-tuning
        bn = BatchNorm2d(2, momentum=0.0)
        mean_before = bn.running_mean.copy()
        var_before = bn.running_var.copy()
        bn.forward(np.random.default_rng(19).normal(3.0, 2.0, size=(8, 2, 4, 4)))
        assert np.array_equal(bn.running_mean, mean_before)
        assert np.array_equal(bn.running_var, var_before)

    def test_momentum_one_tracks_latest_batch(self):
        bn = BatchNorm2d(2, momentum=1.0)
        x = np.random.default_rng(20).normal(size=(8, 2, 4, 4))
        bn.forward(x)
        assert np.allclose(bn.running_mean, x.mean(axis=(0, 2, 3)))


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        pool = AvgPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert np.array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradient(self):
        pool = MaxPool2d(2)
        # unique values so argmax ties cannot break the numerical check
        x = np.random.default_rng(16).permutation(64).astype(float).reshape(
            (1, 4, 4, 4)
        )
        check_input_gradient(pool, x)

    def test_avgpool_gradient(self):
        pool = AvgPool2d(2)
        check_input_gradient(
            pool, np.random.default_rng(17).normal(size=(2, 2, 4, 4))
        )

    def test_maxpool_with_stride_and_padding(self):
        pool = MaxPool2d(3, stride=1, padding=1)
        x = np.random.default_rng(18).normal(size=(1, 2, 5, 5))
        assert pool.forward(x).shape == (1, 2, 5, 5)

    def test_global_avgpool(self):
        pool = GlobalAvgPool2d()
        x = np.random.default_rng(19).normal(size=(2, 3, 4, 5))
        out = pool.forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)))
        check_input_gradient(pool, x)


class TestContainers:
    def test_sequential_composes(self):
        rng = np.random.default_rng(20)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        out = model.forward(x)
        assert out.shape == (3, 2)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_sequential_gradient(self):
        rng = np.random.default_rng(21)
        model = Sequential(Linear(4, 6, rng=rng), Tanh(), Linear(6, 3, rng=rng))
        check_input_gradient(model, rng.normal(size=(2, 4)))

    def test_residual_identity_shortcut(self):
        rng = np.random.default_rng(22)
        body = Sequential(Conv2d(2, 2, 3, padding=1, rng=rng))
        block = Residual(body)
        x = rng.normal(size=(1, 2, 4, 4))
        assert np.allclose(block.forward(x), body.forward(x) + x)
        check_input_gradient(block, x)

    def test_residual_shape_mismatch_raises(self):
        rng = np.random.default_rng(23)
        body = Sequential(Conv2d(2, 4, 3, padding=1, rng=rng))
        with pytest.raises(ValueError):
            Residual(body).forward(rng.normal(size=(1, 2, 4, 4)))

    def test_flatten_round_trip(self):
        flatten = Flatten()
        x = np.random.default_rng(24).normal(size=(2, 3, 4, 5))
        out = flatten.forward(x)
        assert out.shape == (2, 60)
        assert flatten.backward(out).shape == x.shape

    def test_concat_branches(self):
        rng = np.random.default_rng(25)
        concat = Concat(
            [Conv2d(2, 3, 1, rng=rng), Conv2d(2, 5, 1, rng=rng)]
        )
        x = rng.normal(size=(1, 2, 4, 4))
        out = concat.forward(x)
        assert out.shape == (1, 8, 4, 4)
        check_input_gradient(concat, x)

    def test_parameters_found_in_containers(self):
        rng = np.random.default_rng(26)
        model = Sequential(Linear(3, 4, rng=rng), Sequential(Linear(4, 5, rng=rng)))
        assert len(model.parameters()) == 4  # two weights, two biases
