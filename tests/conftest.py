"""Shared fixtures for the test suite.

All classifier-dependent tests use the toy classifiers from
:mod:`repro.classifier.toy` so the suite stays fast; end-to-end tests
against trained CNNs live in ``tests/test_integration_zoo.py`` and use a
session-scoped cached model.
"""

import numpy as np
import pytest

from repro.classifier.toy import (
    LinearPixelClassifier,
    MarginRampClassifier,
    SinglePixelBackdoorClassifier,
    make_toy_images,
)

TOY_SHAPE = (6, 6, 3)


@pytest.fixture
def toy_shape():
    return TOY_SHAPE


@pytest.fixture
def linear_classifier():
    """A fragile linear classifier over 6x6 images; many are attackable."""
    return LinearPixelClassifier(TOY_SHAPE, num_classes=3, seed=1, temperature=0.05)


@pytest.fixture
def backdoor_classifier():
    """Predicts class 0 unless pixel (2, 3) is exactly white."""
    return SinglePixelBackdoorClassifier(
        TOY_SHAPE, trigger_location=(2, 3), trigger_value=np.ones(3)
    )


@pytest.fixture
def margin_classifier():
    """Flips when pixel (1, 1) becomes bright enough."""
    return MarginRampClassifier(TOY_SHAPE, weak_location=(1, 1), threshold=2.5)


@pytest.fixture
def toy_images():
    """Twelve random smooth 6x6 images."""
    return make_toy_images(12, TOY_SHAPE, seed=2)


@pytest.fixture
def toy_pairs(linear_classifier, toy_images):
    """(image, predicted class) pairs for the linear classifier."""
    return [
        (image, int(np.argmax(linear_classifier(image)))) for image in toy_images
    ]
