"""Printer / parser round-trip tests for the condition language."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl.ast import (
    Center,
    Comparison,
    Condition,
    Constant,
    ConstantCondition,
    Max,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.parser import ParseError, parse_condition, parse_program
from repro.core.dsl.printer import format_condition, format_program


class TestPrinter:
    def test_score_diff(self):
        condition = Condition(Comparison.LT, ScoreDiff(), Constant(0.21))
        assert (
            format_condition(condition)
            == "score_diff(N(x), N(x[l<-p]), c_x) < 0.21"
        )

    def test_pixel_function(self):
        condition = Condition(Comparison.GT, Max(PixelRef.ORIGINAL), Constant(0.19))
        assert format_condition(condition) == "max(x[l]) > 0.19"

    def test_center(self):
        condition = Condition(Comparison.LT, Center(), Constant(8.0))
        assert format_condition(condition) == "center(l) < 8"

    def test_literals(self):
        assert format_condition(ConstantCondition(False)) == "false"
        assert format_condition(ConstantCondition(True)) == "true"

    def test_program_labels(self):
        text = format_program(Program.constant(False))
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("[B1]")
        assert lines[3].startswith("[B4]")


class TestParser:
    def test_parses_paper_example(self):
        program = parse_program(
            """
            [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.21
            [B2] max(x_l) > 0.19
            [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.25
            [B4] center(l) < 8
            """
        )
        assert program.b1 == Condition(Comparison.LT, ScoreDiff(), Constant(0.21))
        assert program.b2 == Condition(
            Comparison.GT, Max(PixelRef.ORIGINAL), Constant(0.19)
        )
        assert program.b4 == Condition(Comparison.LT, Center(), Constant(8.0))

    def test_x_l_spelling_equals_bracket_spelling(self):
        assert parse_condition("max(x_l) > 0.5") == parse_condition("max(x[l]) > 0.5")

    def test_perturbation_pixel(self):
        condition = parse_condition("avg(p) < 0.5")
        assert condition.function.pixel is PixelRef.PERTURBATION

    def test_literals_case_insensitive(self):
        assert parse_condition("FALSE") == ConstantCondition(False)
        assert parse_condition("True") == ConstantCondition(True)

    def test_negative_and_scientific_constants(self):
        assert parse_condition("score_diff(N(x), N(x[l<-p]), c_x) > -0.1").constant.value == -0.1
        assert parse_condition("center(l) < 1e1").constant.value == 10.0

    @pytest.mark.parametrize(
        "bad",
        [
            "median(p) > 0.5",
            "max(x[l]) >= 0.5",
            "max(x[l]) 0.5",
            "max(x[l]) > banana",
            "max(q) > 0.5",
            "",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_condition(bad)

    def test_program_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_program("center(l) < 3\ncenter(l) < 4")


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_programs_round_trip(self, seed):
        grammar = Grammar((16, 16))
        rng = np.random.default_rng(seed)
        program = grammar.random_program(rng)
        reparsed = parse_program(format_program(program))
        # constants go through %g formatting; compare with tolerance
        for original, parsed in zip(program.conditions, reparsed.conditions):
            assert type(original.function) is type(parsed.function)
            assert original.comparison == parsed.comparison
            assert parsed.constant.value == pytest.approx(
                original.constant.value, rel=1e-4
            )

    def test_false_program_round_trip(self):
        program = Program.constant(False)
        assert parse_program(format_program(program)) == program
