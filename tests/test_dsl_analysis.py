"""Tests for the static corner-domain analysis of conditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl.analysis import (
    ALL_CORNERS,
    analyze_program,
    corner_support,
    is_tautology,
    is_vacuous,
    lint_program,
)
from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    Constant,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.dsl.grammar import Grammar
from repro.core.context import EvalContext
from repro.core.dsl.interpreter import evaluate_condition
from repro.core.geometry import RGB_CORNERS
from repro.core.pairs import Pair


def pert_condition(function_type, comparison, threshold):
    return Condition(
        comparison, function_type(PixelRef.PERTURBATION), Constant(threshold)
    )


class TestCornerSupport:
    def test_max_gt_half_excludes_black_only(self):
        # max(p) over corners is 0 only for black (corner 0)
        support = corner_support(pert_condition(Max, Comparison.GT, 0.5))
        assert support == frozenset(range(1, 8))

    def test_min_gt_half_is_white_only(self):
        # min(p) is 1 only for white (corner 7)
        support = corner_support(pert_condition(Min, Comparison.GT, 0.5))
        assert support == frozenset({7})

    def test_avg_thresholds(self):
        # avg(p) in {0, 1/3, 2/3, 1}; > 0.9 leaves only white
        support = corner_support(pert_condition(Avg, Comparison.GT, 0.9))
        assert support == frozenset({7})
        # < 0.2 leaves only black
        support = corner_support(pert_condition(Avg, Comparison.LT, 0.2))
        assert support == frozenset({0})

    def test_context_dependent_functions_are_unknown(self):
        assert corner_support(
            Condition(Comparison.GT, Max(PixelRef.ORIGINAL), Constant(0.5))
        ) is None
        assert corner_support(
            Condition(Comparison.GT, ScoreDiff(), Constant(0.1))
        ) is None
        assert corner_support(
            Condition(Comparison.LT, Center(), Constant(3.0))
        ) is None

    def test_literals(self):
        assert corner_support(ConstantCondition(True)) == ALL_CORNERS
        assert corner_support(ConstantCondition(False)) == frozenset()

    def test_support_matches_interpreter(self):
        """The static truth table agrees with dynamic evaluation."""
        condition = pert_condition(Avg, Comparison.LT, 0.5)
        support = corner_support(condition)
        image = np.full((4, 4, 3), 0.3)
        for corner in range(8):
            context = EvalContext(
                image=image,
                pair=Pair(1, 1, corner),
                clean_scores=np.array([0.8, 0.2]),
                perturbed_scores=np.array([0.7, 0.3]),
                true_class=0,
            )
            assert evaluate_condition(condition, context) == (corner in support)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_static_conditions_agree_with_interpreter(self, seed):
        rng = np.random.default_rng(seed)
        grammar = Grammar((8, 8))
        condition = grammar.random_condition(rng)
        support = corner_support(condition)
        if support is None:
            return
        image = np.full((8, 8, 3), 0.5)
        for corner in range(8):
            context = EvalContext(
                image=image,
                pair=Pair(2, 2, corner),
                clean_scores=np.array([0.6, 0.4]),
                perturbed_scores=np.array([0.5, 0.5]),
                true_class=0,
            )
            assert evaluate_condition(condition, context) == (corner in support)


class TestVacuityAndTautology:
    def test_vacuous(self):
        condition = pert_condition(Max, Comparison.GT, 1.0)  # max(p) <= 1 always
        assert is_vacuous(condition) is True
        assert is_tautology(condition) is False

    def test_tautology(self):
        condition = pert_condition(Min, Comparison.LT, 1.5)
        assert is_tautology(condition) is True
        assert is_vacuous(condition) is False

    def test_unknown(self):
        condition = Condition(Comparison.GT, ScoreDiff(), Constant(0.0))
        assert is_vacuous(condition) is None
        assert is_tautology(condition) is None


class TestProgramAnalysis:
    def test_analyze_slots(self):
        program = Program(
            pert_condition(Max, Comparison.GT, 1.0),  # vacuous
            pert_condition(Min, Comparison.LT, 2.0),  # tautology
            Condition(Comparison.GT, ScoreDiff(), Constant(0.1)),  # unknown
            pert_condition(Avg, Comparison.GT, 0.5),  # partial
        )
        analyses = analyze_program(program)
        assert analyses[0].verdict == "vacuous (never fires)"
        assert analyses[1].verdict == "tautology (always fires)"
        assert analyses[2].verdict == "context-dependent"
        assert "corners" in analyses[3].verdict

    def test_lint_flags_degenerate_slots(self):
        program = Program(
            pert_condition(Max, Comparison.GT, 1.0),
            Condition(Comparison.GT, ScoreDiff(), Constant(0.1)),
            pert_condition(Min, Comparison.LT, 2.0),
            pert_condition(Avg, Comparison.GT, 0.5),
        )
        warnings = lint_program(program)
        assert any("b1 is vacuous" in w for w in warnings)
        assert any("b3 is a tautology" in w for w in warnings)
        assert not any("b4" in w for w in warnings)

    def test_clean_program_has_no_warnings(self):
        program = Program(
            pert_condition(Avg, Comparison.GT, 0.5),
            pert_condition(Avg, Comparison.LT, 0.5),
            Condition(Comparison.GT, ScoreDiff(), Constant(0.1)),
            Condition(Comparison.LT, Center(), Constant(2.0)),
        )
        assert lint_program(program) == []
