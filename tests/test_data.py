"""Tests for the synthetic datasets and pattern primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import patterns
from repro.data.cifar_like import CIFAR_LIKE_CLASSES, make_cifar_like
from repro.data.dataset import Dataset, LabeledImage
from repro.data.imagenet_like import IMAGENET_LIKE_CLASSES, make_imagenet_like


class TestPatterns:
    @pytest.mark.parametrize(
        "field",
        [
            patterns.stripes(8, 10, 2.0, 0.5),
            patterns.checkerboard(8, 10, 4),
            patterns.disk(8, 10, (0.0, 0.0), 0.5),
            patterns.rings(8, 10, (0.0, 0.0), 2.0),
            patterns.linear_gradient(8, 10, 1.0),
            patterns.radial_gradient(8, 10, (0.0, 0.0)),
            patterns.cross(8, 10, (0.0, 0.0), 0.2),
            patterns.half_plane(8, 10, 0.7, 0.1),
            patterns.blotches(8, 10, np.random.default_rng(0)),
        ],
    )
    def test_fields_in_unit_range(self, field):
        assert field.shape == (8, 10)
        assert field.min() >= 0.0
        assert field.max() <= 1.0

    def test_colorize_blends(self):
        field = np.array([[0.0, 1.0]])
        low = np.array([0.1, 0.2, 0.3])
        high = np.array([0.9, 0.8, 0.7])
        image = patterns.colorize(field, low, high)
        assert np.allclose(image[0, 0], low)
        assert np.allclose(image[0, 1], high)

    def test_finish_clips(self):
        rng = np.random.default_rng(1)
        image = patterns.finish(np.full((4, 4, 3), 0.99), rng, noise=0.5)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_jitter_color_stays_in_cube(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            color = patterns.jitter_color((0.95, 0.05, 0.5), rng, amount=0.3)
            assert (color >= 0).all() and (color <= 1).all()

    def test_disk_centered(self):
        field = patterns.disk(9, 9, (0.0, 0.0), 0.3)
        assert field[4, 4] == 1.0
        assert field[0, 0] == 0.0


class TestDataset:
    def make(self):
        images = np.random.default_rng(0).uniform(size=(6, 4, 4, 3))
        labels = np.array([0, 1, 0, 2, 1, 0])
        return Dataset(images, labels, ["a", "b", "c"])

    def test_basic_protocol(self):
        dataset = self.make()
        assert len(dataset) == 6
        item = dataset[2]
        assert isinstance(item, LabeledImage)
        assert item.label == 0
        assert len(list(dataset)) == 6
        assert dataset.image_shape == (4, 4, 3)
        assert dataset.num_classes == 3

    def test_subset_and_of_class(self):
        dataset = self.make()
        zeros = dataset.of_class(0)
        assert len(zeros) == 3
        assert (zeros.labels == 0).all()
        limited = dataset.of_class(0, limit=2)
        assert len(limited) == 2

    def test_to_nchw(self):
        dataset = self.make()
        nchw = dataset.to_nchw()
        assert nchw.shape == (6, 3, 4, 4)
        assert np.array_equal(nchw[0, :, 1, 2], dataset.images[0, 1, 2, :])

    def test_pairs(self):
        dataset = self.make()
        pairs = dataset.pairs()
        assert len(pairs) == 6
        image, label = pairs[3]
        assert label == 2
        assert np.array_equal(image, dataset.images[3])

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 4, 4, 2)), np.zeros(2, dtype=int), ["a"])
        with pytest.raises(ValueError):
            Dataset(np.full((1, 4, 4, 3), 2.0), np.zeros(1, dtype=int), ["a"])
        with pytest.raises(ValueError):
            Dataset(np.zeros((1, 4, 4, 3)), np.array([5]), ["a", "b"])


class TestGenerators:
    def test_cifar_like_shape_and_balance(self):
        dataset = make_cifar_like(num_per_class=3, size=12, seed=0)
        assert len(dataset) == 30
        assert dataset.image_shape == (12, 12, 3)
        for label in range(10):
            assert (dataset.labels == label).sum() == 3
        assert dataset.class_names == list(CIFAR_LIKE_CLASSES)

    def test_imagenet_like_shape_and_balance(self):
        dataset = make_imagenet_like(num_per_class=2, size=16, seed=0)
        assert len(dataset) == 22
        assert dataset.image_shape == (16, 16, 3)
        assert dataset.class_names == list(IMAGENET_LIKE_CLASSES)

    def test_deterministic(self):
        a = make_cifar_like(2, size=8, seed=5)
        b = make_cifar_like(2, size=8, seed=5)
        assert np.array_equal(a.images, b.images)

    def test_different_seeds_differ(self):
        a = make_cifar_like(2, size=8, seed=5)
        b = make_cifar_like(2, size=8, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_class_subset(self):
        dataset = make_cifar_like(2, size=8, seed=0, classes=[3, 7])
        assert set(dataset.labels.tolist()) == {3, 7}

    def test_ambiguity_zero_is_pure(self):
        pure = make_cifar_like(2, size=8, seed=1, ambiguity=0.0)
        blended = make_cifar_like(2, size=8, seed=1, ambiguity=1.0)
        assert not np.array_equal(pure.images, blended.images)

    def test_values_in_unit_range(self):
        dataset = make_imagenet_like(1, size=12, seed=3)
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cifar_like(0)
        with pytest.raises(ValueError):
            make_cifar_like(1, size=2)
        with pytest.raises(ValueError):
            make_cifar_like(1, classes=[10])
        with pytest.raises(ValueError):
            make_cifar_like(1, ambiguity=1.5)
        with pytest.raises(ValueError):
            make_imagenet_like(1, classes=[11])

    def test_classes_are_separable_by_simple_statistics(self):
        """A linear probe on raw pixels beats chance comfortably, i.e.
        the classes carry learnable signal."""
        train = make_cifar_like(30, size=8, seed=0)
        test = make_cifar_like(10, size=8, seed=99)
        x = train.images.reshape(len(train), -1)
        # nearest class-mean classifier
        means = np.stack([
            x[train.labels == label].mean(axis=0) for label in range(10)
        ])
        xt = test.images.reshape(len(test), -1)
        predictions = np.argmin(
            ((xt[:, None, :] - means[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        accuracy = (predictions == test.labels).mean()
        assert accuracy > 0.3  # 3x chance

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_any_seed_produces_valid_dataset(self, seed):
        dataset = make_cifar_like(1, size=8, seed=seed)
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() <= 1.0
