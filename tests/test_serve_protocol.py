"""Tests for the JSON wire protocol."""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack, false_program
from repro.attacks.random_search import UniformRandomAttack
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS
from repro.attacks.su_opa import SuOPA
from repro.serve.protocol import (
    ATTACK_SPECS,
    ProtocolError,
    build_attack,
    decode_attack_request,
    decode_image,
    encode_image,
)


class TestDecodeImage:
    def test_roundtrip(self):
        image = np.random.default_rng(0).random((4, 5, 3))
        decoded = decode_image(encode_image(image))
        assert decoded.shape == (4, 5, 3)
        assert np.array_equal(decoded, image)

    @pytest.mark.parametrize(
        "payload",
        [
            "not an image",
            [[1, 2], [3, 4]],  # 2-D
            [[[0.5, 0.5]]],  # 2 channels
            [[[0.5, 0.5, 1.5]]],  # out of range
            [[[0.5, 0.5, float("nan")]]],
        ],
    )
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(ProtocolError):
            decode_image(payload)

    def test_rejects_oversized(self):
        huge = np.zeros((300, 300, 3)).tolist()
        with pytest.raises(ProtocolError) as info:
            decode_image(huge)
        assert info.value.status == 413


class TestBuildAttack:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fixed", FixedSketchAttack),
            ("random", UniformRandomAttack),
            ("su-opa", SuOPA),
            ("sparse-rs", SparseRS),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(build_attack(name), cls)

    def test_all_specs_constructible_without_program(self):
        for name in ATTACK_SPECS:
            if name == "sketch":
                continue
            build_attack(name)

    def test_unknown_name(self):
        with pytest.raises(ProtocolError, match="unknown attack"):
            build_attack("gradient-descent")

    def test_sketch_requires_program(self):
        with pytest.raises(ProtocolError, match="program"):
            build_attack("sketch")

    def test_sketch_with_program_roundtrip(self):
        attack = build_attack("sketch", {"program": false_program().to_dict()})
        assert isinstance(attack, SketchAttack)

    def test_sketch_rejects_garbage_program(self):
        with pytest.raises(ProtocolError, match="invalid program"):
            build_attack("sketch", {"program": {"nonsense": True}})

    def test_seed_threads_through(self):
        attack = build_attack("random", {"seed": 7})
        assert attack.config.seed == 7

    def test_su_opa_param_validation(self):
        with pytest.raises(ProtocolError, match="su-opa"):
            build_attack("su-opa", {"population_size": 1})


class TestDecodeAttackRequest:
    def _payload(self, **overrides):
        payload = {
            "image": np.zeros((4, 4, 3)).tolist(),
            "true_class": 1,
        }
        payload.update(overrides)
        return payload

    def test_minimal(self):
        request = decode_attack_request(self._payload())
        assert request.attack_name == "fixed"
        assert request.true_class == 1
        assert request.budget is None
        assert request.target_class is None

    def test_full(self):
        request = decode_attack_request(
            self._payload(attack="random", budget=64, target_class=2,
                          params={"seed": 3})
        )
        assert request.attack_name == "random"
        assert request.budget == 64
        assert request.target_class == 2
        assert request.attack.config.seed == 3

    @pytest.mark.parametrize(
        "mutation",
        [
            {"true_class": None},
            {"true_class": "cat"},
            {"true_class": True},
            {"true_class": -1},
            {"budget": -5},
            {"budget": "many"},
            {"target_class": 1},  # equals true_class
            {"attack": 42},
        ],
    )
    def test_rejects_bad_fields(self, mutation):
        payload = self._payload()
        payload.update(mutation)
        with pytest.raises(ProtocolError):
            decode_attack_request(payload)

    def test_missing_image(self):
        with pytest.raises(ProtocolError, match="image"):
            decode_attack_request({"true_class": 0})

    def test_non_object_body(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_attack_request([1, 2, 3])
