"""Tests for the query cache, its threat-model contract, and run logs."""

import threading

import numpy as np
import pytest

from repro.classifier.blackbox import CountingClassifier, _UNCHANGED
from repro.classifier.toy import LatencyClassifier, LinearPixelClassifier
from repro.runtime import (
    CachedClassifier,
    NullRunLog,
    QueryCache,
    RunLog,
    image_digest,
)
from repro.runtime.cache import normalized_cache_size


@pytest.fixture
def toy():
    return LinearPixelClassifier((4, 4, 3), num_classes=3, seed=0)


class TestImageDigest:
    def test_value_sensitivity(self):
        a = np.zeros((4, 4, 3))
        b = np.zeros((4, 4, 3))
        b[1, 2, 0] = 1e-9
        assert image_digest(a) == image_digest(np.zeros((4, 4, 3)))
        assert image_digest(a) != image_digest(b)

    def test_shape_and_dtype_sensitivity(self):
        flat = np.zeros(12)
        assert image_digest(np.zeros((2, 2, 3))) != image_digest(flat)
        assert image_digest(np.zeros(4, dtype=np.float32)) != image_digest(
            np.zeros(4, dtype=np.float64)
        )

    def test_non_contiguous_input(self):
        base = np.arange(48, dtype=np.float64).reshape(4, 4, 3)
        view = base[::2]  # non-contiguous stride
        assert image_digest(view) == image_digest(np.ascontiguousarray(view))


class TestQueryCache:
    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        cache.put(b"a", np.array([1.0]))
        cache.put(b"b", np.array([2.0]))
        assert cache.get(b"a") is not None  # refreshes "a"
        cache.put(b"c", np.array([3.0]))  # evicts "b", the LRU entry
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_hit_and_miss_accounting(self):
        cache = QueryCache(maxsize=4)
        assert cache.get(b"x") is None
        cache.put(b"x", np.array([1.0]))
        assert cache.get(b"x") is not None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["maxsize"] == 4

    def test_returned_arrays_are_isolated(self):
        cache = QueryCache(maxsize=4)
        original = np.array([1.0, 2.0])
        cache.put(b"k", original)
        original[0] = 99.0  # caller mutates after insert
        first = cache.get(b"k")
        first[1] = -1.0  # caller mutates a returned hit
        second = cache.get(b"k")
        assert list(second) == [1.0, 2.0]

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)

    def test_concurrent_mixed_ops_stay_consistent(self):
        """8 threads hammering get/put/stats on a small key space: with
        the internal lock the counters stay exact (hits + misses equals
        total gets) and the LRU dict never exceeds maxsize.  Without it
        this dies with RuntimeError (dict mutated during iteration) or
        drifts the counters."""
        cache = QueryCache(maxsize=16)
        keys = [f"k{i}".encode() for i in range(48)]
        gets_per_thread = 2000
        errors = []

        def worker(seed: int):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(gets_per_thread):
                    key = keys[rng.integers(len(keys))]
                    if cache.get(key) is None:
                        cache.put(key, np.array([float(seed)]))
                    if rng.integers(10) == 0:
                        cache.stats()
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert cache.hits + cache.misses == 8 * gets_per_thread
        assert len(cache) <= 16
        stats = cache.stats()
        assert stats["hits"] == cache.hits and stats["misses"] == cache.misses


class TestNormalizedCacheSize:
    def test_none_and_zero_disable(self):
        assert normalized_cache_size(None) is None
        assert normalized_cache_size(0) is None

    def test_positive_passes_through_as_int(self):
        assert normalized_cache_size(64) == 64
        assert normalized_cache_size(np.int64(8)) == 8
        assert isinstance(normalized_cache_size(np.int64(8)), int)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalized_cache_size(-1)


class TestCachedClassifier:
    def test_scores_match_uncached(self, toy):
        cached = CachedClassifier(toy)
        rng = np.random.default_rng(0)
        for _ in range(5):
            image = rng.uniform(size=(4, 4, 3))
            assert np.array_equal(cached(image), toy(image))

    def test_repeat_queries_hit(self, toy):
        cached = CachedClassifier(toy)
        image = np.full((4, 4, 3), 0.25)
        cached(image)
        cached(image)
        cached(image)
        assert cached.cache.hits == 2
        assert cached.cache.misses == 1
        assert cached.hit_rate == pytest.approx(2 / 3)


class TestCachedClassifierBatch:
    def test_matches_sequential_scoring(self, toy):
        cached = CachedClassifier(toy)
        rng = np.random.default_rng(1)
        images = rng.uniform(size=(6, 4, 4, 3))
        batched = cached.batch(images)
        sequential = np.stack([toy(image) for image in images])
        assert np.array_equal(batched, sequential)

    def test_duplicates_within_batch_scored_once(self, toy):
        counting = CountingClassifier(toy)
        cached = CachedClassifier(counting)
        image = np.full((4, 4, 3), 0.4)
        other = np.full((4, 4, 3), 0.6)
        scores = cached.batch([image, other, image, image])
        assert counting.count == 2  # two distinct images, one pass each
        assert np.array_equal(scores[0], scores[2])
        assert np.array_equal(scores[0], scores[3])

    def test_second_pass_is_all_hits(self, toy):
        counting = CountingClassifier(toy)
        cached = CachedClassifier(counting)
        rng = np.random.default_rng(2)
        images = rng.uniform(size=(4, 4, 4, 3))
        first = cached.batch(images)
        second = cached.batch(images)
        assert counting.count == 4
        assert cached.cache.hits == 4
        assert np.array_equal(first, second)

    def test_empty_batch(self, toy):
        cached = CachedClassifier(toy)
        out = cached.batch(np.empty((0, 4, 4, 3)))
        assert out.shape[0] == 0

    def test_single_image_miss_with_squeezing_batch_classifier(self, toy):
        """Regression: a classifier whose ``batch`` returns a flat
        ``(C,)`` vector for a single-image batch must not corrupt the
        miss-path assembly (one miss among hits reaches the model as a
        batch of one)."""

        class SqueezingBatch:
            def __init__(self, inner):
                self.inner = inner

            def __call__(self, image):
                return self.inner(image)

            def batch(self, images):
                rows = np.stack([self.inner(image) for image in images])
                return rows[0] if len(rows) == 1 else rows

        cached = CachedClassifier(SqueezingBatch(toy))
        warm = np.full((4, 4, 3), 0.3)
        cold = np.full((4, 4, 3), 0.7)
        cached(warm)  # seed the cache so the batch below has one miss
        scores = cached.batch([warm, cold])
        assert scores.shape == (2, 3)
        assert scores.dtype == np.float64
        assert np.array_equal(scores[0], toy(warm))
        assert np.array_equal(scores[1], toy(cold))
        assert cached.cache.hits == 1

    def test_miss_path_accepts_list_returning_classifier(self, toy):
        """Regression: a fallback per-image classifier returning plain
        Python lists still assembles a float64 score matrix."""

        class ListScores:
            def __init__(self, inner):
                self.inner = inner

            def __call__(self, image):
                return [float(v) for v in self.inner(image)]

        cached = CachedClassifier(ListScores(toy))
        images = np.random.default_rng(12).uniform(size=(3, 4, 4, 3))
        scores = cached.batch(images)
        assert scores.shape == (3, 3)
        assert scores.dtype == np.float64
        assert np.array_equal(scores, np.stack([toy(image) for image in images]))

    def test_misses_routed_through_batch_scores(self, toy):
        """The batch path must reach a native ``batch`` method when the
        underlying classifier has one, not fall back to per-image calls."""

        class BatchOnlyCounter:
            def __init__(self, inner):
                self.inner = inner
                self.batch_calls = 0

            def __call__(self, image):
                raise AssertionError("misses must go through batch()")

            def batch(self, images):
                self.batch_calls += 1
                return np.stack([self.inner(image) for image in images])

        probe = BatchOnlyCounter(toy)
        cached = CachedClassifier(probe)
        rng = np.random.default_rng(3)
        images = rng.uniform(size=(5, 4, 4, 3))
        cached.batch(images)
        assert probe.batch_calls == 1


class TestCacheVersusQueryCount:
    """The threat-model distinction the runtime documents and relies on."""

    def test_cache_outside_boundary_hits_are_not_counted(self, toy):
        """``CachedClassifier(CountingClassifier(model))``: a hit never
        reaches the counting classifier, so ``count`` does not move --
        the attacker refuses to pay twice for one submission."""
        counting = CountingClassifier(toy)
        cached = CachedClassifier(counting)
        image = np.full((4, 4, 3), 0.5)
        cached(image)
        assert counting.count == 1
        cached(image)
        cached(image)
        assert counting.count == 1  # hits served without incrementing
        assert cached.cache.hits == 2

    def test_cache_outside_boundary_preserves_budget(self, toy):
        counting = CountingClassifier(toy, budget=1)
        cached = CachedClassifier(counting)
        image = np.full((4, 4, 3), 0.5)
        cached(image)
        # budget exhausted, but the repeat is a cache hit, not a query
        assert np.array_equal(cached(image), cached(image))
        assert counting.remaining == 0

    def test_cache_inside_boundary_keeps_counts_faithful(self, toy):
        """``CountingClassifier(CachedClassifier(model))``: every
        submission is counted, cache or not -- the paper-faithful
        arrangement the execution engine uses for attack runs."""
        cached = CachedClassifier(toy)
        counting = CountingClassifier(cached)
        image = np.full((4, 4, 3), 0.5)
        counting(image)
        counting(image)
        assert counting.count == 2  # both submissions counted
        assert cached.cache.hits == 1  # only one forward pass paid


class TestUnchangedSentinel:
    def test_reset_keeps_budget_by_default(self, toy):
        counting = CountingClassifier(toy, budget=5)
        counting(np.zeros((4, 4, 3)))
        counting.reset()
        assert counting.count == 0
        assert counting.budget == 5

    def test_reset_installs_new_budget(self, toy):
        counting = CountingClassifier(toy, budget=5)
        counting.reset(budget=9)
        assert counting.budget == 9
        counting.reset(budget=None)
        assert counting.budget is None

    def test_reset_rejects_negative_budget(self, toy):
        counting = CountingClassifier(toy, budget=5)
        with pytest.raises(ValueError):
            counting.reset(budget=-2)

    def test_string_budget_is_no_longer_magic(self, toy):
        """The old string sentinel collided with user values; with the
        module-level sentinel object a literal ``"unchanged"`` string is
        just an invalid budget and is rejected loudly instead of being
        silently treated as "keep the current budget"."""
        counting = CountingClassifier(toy, budget=5)
        with pytest.raises(TypeError):
            counting.reset(budget="unchanged")
        with pytest.raises(TypeError):
            CountingClassifier(toy, budget="unchanged")

    def test_sentinel_identity(self):
        assert _UNCHANGED is not None
        assert repr(_UNCHANGED) == "<budget unchanged>"


class TestLatencyClassifier:
    def test_passthrough_scores(self, toy):
        slow = LatencyClassifier(toy, latency=0.0)
        image = np.full((4, 4, 3), 0.3)
        assert np.array_equal(slow(image), toy(image))

    def test_rejects_negative_latency(self, toy):
        with pytest.raises(ValueError):
            LatencyClassifier(toy, latency=-0.1)


class TestRunLog:
    def test_in_memory_events(self):
        log = RunLog(clock=lambda: 123.0)
        log.emit("alpha", value=1)
        log.emit("beta")
        log.emit("alpha", value=2)
        assert log.counts() == {"alpha": 2, "beta": 1}
        assert [e["value"] for e in log.of_type("alpha")] == [1, 2]
        assert all(e["ts"] == 123.0 for e in log.events)

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "nested" / "run.jsonl")
        with RunLog(path) as log:
            log.emit("task_end", index=0, ok=True)
            log.emit("run_end", wall_time=0.5)
        events = RunLog.read(path)
        assert [e["event"] for e in events] == ["task_end", "run_end"]
        assert events[0]["index"] == 0

    def test_append_mode(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("first")
        with RunLog(path) as log:
            log.emit("second")
        assert [e["event"] for e in RunLog.read(path)] == ["first", "second"]

    def test_null_log_swallows_everything(self):
        log = NullRunLog()
        assert log.emit("anything", x=1) == {}
        assert log.events == []
