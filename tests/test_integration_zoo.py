"""End-to-end integration: train a CNN, synthesize, attack, evaluate.

These tests exercise the full paper pipeline against a genuinely trained
(tiny) convolutional network rather than a toy classifier.  The model is
trained once per test session.
"""

import numpy as np
import pytest

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.classifier.blackbox import CountingClassifier
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig
from repro.eval.runner import attack_dataset
from repro.models.zoo import ModelZoo, ZooConfig

IMAGE_SIZE = 10
FULL_SPACE = 8 * IMAGE_SIZE * IMAGE_SIZE


@pytest.fixture(scope="module")
def zoo(tmp_path_factory):
    config = ZooConfig(
        dataset="cifar",
        image_size=IMAGE_SIZE,
        train_per_class=40,
        test_per_class=10,
        epochs=3,
        cache_dir=str(tmp_path_factory.mktemp("zoo_cache")),
    )
    return ModelZoo(config)


@pytest.fixture(scope="module")
def trained(zoo):
    return zoo.get("vgg16bn")


@pytest.fixture(scope="module")
def test_pairs(zoo, trained):
    return zoo.correctly_classified("vgg16bn", split="test", limit=8).pairs()


class TestPipeline:
    def test_model_learned_something(self, trained):
        assert trained.train_accuracy > 0.4  # 10 classes, 4x chance

    def test_sketch_attack_runs_under_budget(self, trained, test_pairs):
        attack = FixedSketchAttack()
        summary = attack_dataset(attack, trained.classifier, test_pairs, budget=200)
        assert summary.total_images == len(test_pairs)
        for result in summary.results:
            assert result.queries <= 200

    def test_full_space_exhaustion_bound(self, trained, test_pairs):
        image, label = test_pairs[0]
        counting = CountingClassifier(trained.classifier)
        result = FixedSketchAttack().attack(counting, image, label)
        # the sketch may pose at most the whole space plus the clean query
        assert counting.count <= FULL_SPACE + 1
        assert result.queries <= FULL_SPACE

    def test_synthesis_end_to_end(self, zoo, trained):
        pairs = zoo.correctly_classified("vgg16bn", split="train", limit=4).pairs()
        config = OppslaConfig(
            max_iterations=2, beta=0.01, per_image_budget=120, seed=0
        )
        result = Oppsla(config).synthesize(trained.classifier, pairs)
        assert result.trace.iterations <= 2
        assert result.total_queries <= 3 * 4 * 120  # (initial + 2) * images * budget
        # the synthesized program runs as an attack
        image, label = pairs[0]
        outcome = SketchAttack(result.program).attack(
            trained.classifier, image, label, budget=120
        )
        assert outcome.queries <= 120

    def test_baselines_run_against_cnn(self, trained, test_pairs):
        image, label = test_pairs[0]
        for attack in (
            SparseRS(SparseRSConfig(seed=0)),
            SuOPA(SuOPAConfig(population_size=10, max_generations=2, seed=0)),
        ):
            result = attack.attack(trained.classifier, image, label, budget=60)
            assert result.queries <= 60

    def test_attack_determinism(self, trained, test_pairs):
        image, label = test_pairs[0]
        first = FixedSketchAttack().attack(trained.classifier, image, label, budget=150)
        second = FixedSketchAttack().attack(trained.classifier, image, label, budget=150)
        assert first.queries == second.queries
        assert first.success == second.success

    def test_completeness_on_cnn(self, trained, test_pairs):
        """An exhaustive run and a budgeted-but-complete run agree."""
        image, label = test_pairs[0]
        exhaustive = FixedSketchAttack().attack(trained.classifier, image, label)
        capped = FixedSketchAttack().attack(
            trained.classifier, image, label, budget=FULL_SPACE
        )
        assert exhaustive.success == capped.success
        assert exhaustive.queries == capped.queries
