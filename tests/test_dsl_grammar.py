"""Tests for typed random generation and mutation of programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl.ast import (
    Comparison,
    Condition,
    ConstantCondition,
    FunctionKind,
    Program,
)
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.mutation import NUM_MUTATION_SITES, mutate_program


class TestGrammar:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Grammar((0, 5))

    def test_random_program_is_well_typed(self):
        grammar = Grammar((8, 8))
        rng = np.random.default_rng(0)
        for _ in range(50):
            program = grammar.random_program(rng)
            for condition in program.conditions:
                assert isinstance(condition, Condition)
                assert grammar.constant_in_range(
                    condition.function, condition.constant
                )

    def test_center_constants_bounded_by_image(self):
        grammar = Grammar((8, 8))  # max center distance 3.5
        rng = np.random.default_rng(1)
        for _ in range(200):
            condition = grammar.random_condition(rng)
            if condition.function.kind is FunctionKind.CENTER:
                assert 0.0 <= condition.constant.value <= 3.5

    def test_all_function_kinds_reachable(self):
        grammar = Grammar((8, 8))
        rng = np.random.default_rng(2)
        kinds = {grammar.random_function(rng).kind for _ in range(300)}
        assert kinds == set(FunctionKind)

    def test_both_comparisons_reachable(self):
        grammar = Grammar((8, 8))
        rng = np.random.default_rng(3)
        comparisons = {grammar.random_comparison(rng) for _ in range(100)}
        assert comparisons == {Comparison.GT, Comparison.LT}

    def test_never_generates_literals(self):
        grammar = Grammar((8, 8))
        rng = np.random.default_rng(4)
        for _ in range(100):
            assert not isinstance(grammar.random_condition(rng), ConstantCondition)

    def test_determinism_by_seed(self):
        grammar = Grammar((8, 8))
        a = grammar.random_program(np.random.default_rng(42))
        b = grammar.random_program(np.random.default_rng(42))
        assert a == b


class TestMutation:
    def test_mutation_site_count_matches_tree(self):
        # root + 4 conditions + 4 functions + 4 constants (Figure 2)
        assert NUM_MUTATION_SITES == 13

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 100_000))
    def test_mutation_closure(self, seed):
        """Mutation never leaves the typed search space."""
        grammar = Grammar((10, 12))
        rng = np.random.default_rng(seed)
        program = grammar.random_program(rng)
        mutated = mutate_program(program, grammar, rng)
        for condition in mutated.conditions:
            assert isinstance(condition, Condition)
            assert grammar.constant_in_range(condition.function, condition.constant)

    def test_mutation_changes_at_most_needed(self):
        """A non-root mutation touches exactly one condition slot."""
        grammar = Grammar((8, 8))
        rng = np.random.default_rng(7)
        program = grammar.random_program(rng)
        changed_counts = []
        for _ in range(100):
            mutated = mutate_program(program, grammar, rng)
            changed = sum(
                1
                for old, new in zip(program.conditions, mutated.conditions)
                if old != new
            )
            changed_counts.append(changed)
        # root mutations may change up to 4; all others at most 1
        assert max(changed_counts) <= 4
        assert any(count <= 1 for count in changed_counts)

    def test_mutating_literal_program_recovers_grammar_conditions(self):
        """The Sketch+False literal is replaced by a typed condition when
        its slot is selected, so the chain can leave the baseline."""
        grammar = Grammar((8, 8))
        rng = np.random.default_rng(8)
        program = Program.constant(False)
        for _ in range(200):
            program = mutate_program(program, grammar, rng)
        assert any(
            isinstance(condition, Condition) for condition in program.conditions
        )

    def test_constant_mutation_keeps_function(self):
        grammar = Grammar((8, 8))
        base = grammar.random_program(np.random.default_rng(9))
        # force constant-site mutations by trying many seeds and looking
        # for cases where only the constant changed
        observed = False
        for seed in range(200):
            rng = np.random.default_rng(seed)
            mutated = mutate_program(base, grammar, rng)
            for old, new in zip(base.conditions, mutated.conditions):
                if (
                    old != new
                    and old.function == new.function
                    and old.comparison == new.comparison
                ):
                    observed = True
        assert observed
