"""Tests for the condition-language AST and its serialization."""

import pytest

from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    Constant,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)


def sample_program():
    return Program(
        Condition(Comparison.LT, ScoreDiff(), Constant(0.21)),
        Condition(Comparison.GT, Max(PixelRef.ORIGINAL), Constant(0.19)),
        Condition(Comparison.GT, ScoreDiff(), Constant(0.25)),
        Condition(Comparison.LT, Center(), Constant(8.0)),
    )


class TestNodes:
    def test_constant_coerces_to_float(self):
        assert Constant(8).value == 8.0
        assert isinstance(Constant(8).value, float)

    def test_constant_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            Constant("0.5")

    def test_nodes_are_hashable_and_comparable(self):
        assert Max(PixelRef.ORIGINAL) == Max(PixelRef.ORIGINAL)
        assert Max(PixelRef.ORIGINAL) != Max(PixelRef.PERTURBATION)
        assert Min(PixelRef.ORIGINAL) != Max(PixelRef.ORIGINAL)
        assert ScoreDiff() == ScoreDiff()
        assert hash(Center()) == hash(Center())

    def test_program_conditions_tuple(self):
        program = sample_program()
        assert len(program.conditions) == 4
        assert program.conditions[0] is program.b1
        assert program.conditions[3] is program.b4

    def test_replace_returns_new_program(self):
        program = sample_program()
        replacement = ConstantCondition(True)
        updated = program.replace(2, replacement)
        assert updated.b3 == replacement
        assert program.b3 != replacement  # original untouched
        assert updated.b1 == program.b1

    def test_constant_program(self):
        false = Program.constant(False)
        assert all(
            isinstance(c, ConstantCondition) and not c.value
            for c in false.conditions
        )
        true = Program.constant(True)
        assert all(c.value for c in true.conditions)


class TestSerialization:
    def test_round_trip(self):
        program = sample_program()
        assert Program.from_dict(program.to_dict()) == program

    def test_round_trip_with_literals(self):
        program = Program.constant(False).replace(
            1, Condition(Comparison.GT, Avg(PixelRef.PERTURBATION), Constant(0.4))
        )
        assert Program.from_dict(program.to_dict()) == program

    def test_from_dict_validates_arity(self):
        payload = sample_program().to_dict()
        payload["conditions"].pop()
        with pytest.raises(ValueError):
            Program.from_dict(payload)

    def test_dict_is_json_compatible(self):
        import json

        payload = sample_program().to_dict()
        assert Program.from_dict(json.loads(json.dumps(payload))) == sample_program()
