"""End-to-end tests of the HTTP front end.

These start a real server on an ephemeral loopback port (via
``ServerHandle``) and talk plain ``urllib`` -- the same path curl takes.
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve.server import AttackServer, ServeConfig, ServerHandle, build_parser


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.load(response)


def _post(base, path, payload, client=None, session_id=None):
    headers = {"Content-Type": "application/json"}
    if client:
        headers["X-Client-Id"] = client
    if session_id:
        headers["X-Session-Id"] = session_id
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), headers=headers
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


def _poll_done(base, session_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = _get(base, f"/attacks/{session_id}")
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"session {session_id} did not finish in {timeout}s")


@pytest.fixture(scope="module")
def served():
    config = ServeConfig(
        port=0, height=6, width=6, num_classes=3, seed=1,
        max_batch_size=8, max_wait=0.001, rate=500.0, burst=200.0,
    )
    with ServerHandle(config) as handle:
        host, port = handle.address
        yield handle, f"http://{host}:{port}"


@pytest.fixture(scope="module")
def attackable(served):
    """An (image, true_class) pair for the served toy model."""
    handle, _ = served
    rng = np.random.default_rng(0)
    image = rng.random((6, 6, 3))
    return image, int(np.argmax(handle.server.classifier(image)))


class TestEndpoints:
    def test_healthz(self, served):
        _, base = served
        status, payload = _get(base, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "model": "toy"}

    def test_models_lists_registry(self, served):
        _, base = served
        _, payload = _get(base, "/models")
        names = {entry["name"] for entry in payload["models"]}
        assert {"toy", "vgg16bn", "resnet18", "googlenet"} <= names
        serving = [entry for entry in payload["models"] if entry["serving"]]
        assert [entry["name"] for entry in serving] == ["toy"]

    def test_submit_poll_result(self, served, attackable):
        _, base = served
        image, label = attackable
        status, accepted = _post(
            base,
            "/attacks",
            {"attack": "fixed", "image": image.tolist(), "true_class": label,
             "budget": 300},
        )
        assert status == 202
        final = _poll_done(base, accepted["id"])
        assert final["state"] == "done"
        assert final["attack"] == "Sketch+False"
        assert final["queries"] == final["result"]["queries"]
        if final["result"]["success"]:
            assert final["result"]["location"] is not None
            assert len(final["result"]["perturbation"]) == 3

    def test_list_sessions(self, served, attackable):
        _, base = served
        image, label = attackable
        _, accepted = _post(
            base, "/attacks",
            {"image": image.tolist(), "true_class": label, "budget": 100},
        )
        _poll_done(base, accepted["id"])
        _, listing = _get(base, "/attacks")
        assert any(s["id"] == accepted["id"] for s in listing["sessions"])

    def test_metrics_shape(self, served, attackable):
        _, base = served
        image, label = attackable
        _, accepted = _post(
            base, "/attacks",
            {"image": image.tolist(), "true_class": label, "budget": 100},
        )
        _poll_done(base, accepted["id"])
        _, metrics = _get(base, "/metrics")
        broker = metrics["broker"]
        assert broker["submitted"] >= 1
        assert "buckets" in broker["batch_sizes"]
        assert broker["cache"]["misses"] >= 1
        assert metrics["sessions"]["query_counts"][accepted["id"]] >= 0
        assert metrics["admission"]["capacity"] == 64
        assert metrics["rate_limiter"]["allowed"] >= 1

    def test_unknown_path_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base, "/nope")
        assert info.value.code == 404

    def test_metrics_top_level_gauges(self, served):
        """What a load balancer scrapes without unpacking sub-documents."""
        _, metrics = _get(served[1], "/metrics")
        assert metrics["sessions_in_flight"] == metrics["sessions"]["active"]
        assert metrics["broker_queue_depth"] >= 0


class TestClusterSurface:
    """The serve-layer hooks the cluster router builds on."""

    def test_x_session_id_pins_the_session(self, served, attackable):
        _, base = served
        image, label = attackable
        status, accepted = _post(
            base, "/attacks",
            {"image": image.tolist(), "true_class": label, "budget": 50},
            session_id="c777",
        )
        assert status == 202
        assert accepted["id"] == "c777"
        assert _poll_done(base, "c777")["id"] == "c777"

    def test_duplicate_session_id_is_409(self, served, attackable):
        handle, base = served
        image, label = attackable
        spec = {"image": image.tolist(), "true_class": label, "budget": 50}
        assert _post(base, "/attacks", spec, session_id="c778")[0] == 202
        before = handle.server.admission.active
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/attacks", spec, session_id="c778")
        assert info.value.code == 409
        # the refused submission released its admission slot
        deadline = time.monotonic() + 10.0
        while handle.server.admission.active > before:
            assert time.monotonic() < deadline
            time.sleep(0.02)

    def test_draining_healthz_is_503(self):
        server = AttackServer(
            ServeConfig(height=6, width=6, num_classes=3, seed=1)
        )
        assert server.route("GET", "/healthz", b"", "t")[0] == 200
        server.draining = True
        status, payload = server.route("GET", "/healthz", b"", "t")
        assert (status, payload) == (503, {"status": "draining"})
        server.stop()

    def test_latency_classifier_charges_per_image(self):
        from repro.serve.server import PerImageLatencyClassifier, build_classifier

        config = ServeConfig(
            height=6, width=6, num_classes=3, seed=1, latency=0.01
        )
        classifier = build_classifier(config)
        assert isinstance(classifier, PerImageLatencyClassifier)
        assert not hasattr(classifier, "batch")  # per-image fallback
        image = np.zeros((6, 6, 3))
        start = time.monotonic()
        scores = classifier(image)
        assert time.monotonic() - start >= 0.01
        bare = build_classifier(
            ServeConfig(height=6, width=6, num_classes=3, seed=1)
        )
        np.testing.assert_array_equal(scores, bare(image))

    def test_missing_session_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base, "/attacks/s99999")
        assert info.value.code == 404

    def test_wrong_method_405(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/healthz", {})
        assert info.value.code == 405

    def test_bad_json_400(self, served):
        _, base = served
        request = urllib.request.Request(
            base + "/attacks", data=b"this is not json"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_bad_attack_request_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/attacks", {"image": [[[0.5, 0.5, 0.5]]]})
        assert info.value.code == 400  # missing true_class


class TestShedding:
    def test_rate_limit_429(self, attackable):
        config = ServeConfig(
            port=0, height=6, width=6, num_classes=3, seed=1,
            rate=0.001, burst=1.0,  # one request, then dry for ~17 min
        )
        image, label = attackable
        body = {"image": image.tolist(), "true_class": label, "budget": 50}
        with ServerHandle(config) as handle:
            host, port = handle.address
            base = f"http://{host}:{port}"
            status, _ = _post(base, "/attacks", body, client="greedy")
            assert status == 202
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(base, "/attacks", body, client="greedy")
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "1"
            # a different client is unaffected
            status, _ = _post(base, "/attacks", body, client="patient")
            assert status == 202

    def test_admission_429(self, attackable):
        config = ServeConfig(
            port=0, height=6, width=6, num_classes=3, seed=1,
            max_sessions=1, rate=500.0, burst=200.0,
            # queries park forever so the one admitted session stays active
            max_batch_size=64, max_wait=60.0,
        )
        image, label = attackable
        body = {"image": image.tolist(), "true_class": label, "budget": 50}
        with ServerHandle(config) as handle:
            host, port = handle.address
            base = f"http://{host}:{port}"
            status, _ = _post(base, "/attacks", body)
            assert status == 202
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(base, "/attacks", body)
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "1"
            _, metrics = _get(base, "/metrics")
            assert metrics["admission"]["refused"] == 1


class TestCli:
    def test_parser_defaults(self):
        options = vars(build_parser().parse_args([]))
        assert options.pop("cluster") == 0  # 0 = single-process serving
        config = ServeConfig(**options)
        assert config.model == "toy"
        assert config.max_batch_size == 32

    def test_parser_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "alexnet"])

    def test_repro_cli_has_serve_subcommand(self):
        from repro.cli import build_parser as cli_parser

        helptext = cli_parser().format_help()
        assert "serve" in helptext

    def test_attack_server_assembles_network_model(self):
        config = ServeConfig(model="resnet18", height=8, width=8, num_classes=3)
        server = AttackServer(config)
        scores = server.classifier(np.zeros((8, 8, 3)))
        assert scores.shape == (3,)
        server.stop()

    def test_cache_zero_disables_cache(self):
        """Regression: ``--cache 0`` used to crash AttackServer with
        ``ValueError: maxsize must be positive``."""
        args = build_parser().parse_args(["--cache", "0"])
        assert args.cache_size == 0
        options = vars(args)
        options.pop("cluster")
        server = AttackServer(ServeConfig(**options))
        assert server.cache is None
        server.stop()

    def test_cache_negative_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--cache", "-1"])

    def test_freeze_and_dtype_plumb_to_classifier(self):
        args = build_parser().parse_args(["--freeze", "--dtype", "float32"])
        options = vars(args)
        options.pop("cluster")
        config = ServeConfig(**options)
        assert config.freeze is True and config.dtype == "float32"
        network = ServeConfig(
            model="resnet18", height=8, width=8, num_classes=3,
            freeze=True, dtype="float32",
        )
        server = AttackServer(network)
        assert server.classifier.frozen
        scores = server.classifier(np.zeros((8, 8, 3)))
        assert scores.shape == (3,)
        server.stop()
