"""Tests for the bootstrap statistics utilities."""

import numpy as np
import pytest

from repro.eval.stats import (
    ConfidenceInterval,
    bootstrap_mean,
    bootstrap_mean_difference,
    bootstrap_success_rate,
)


class TestBootstrapMean:
    def test_interval_contains_estimate(self):
        values = np.random.default_rng(0).exponential(100.0, size=60)
        ci = bootstrap_mean(values, seed=1)
        assert ci.lower <= ci.estimate <= ci.upper
        assert ci.estimate == pytest.approx(values.mean())

    def test_constant_sample_has_zero_width(self):
        ci = bootstrap_mean([5.0] * 10)
        assert ci.lower == ci.upper == ci.estimate == 5.0

    def test_wider_at_higher_confidence(self):
        values = np.random.default_rng(1).normal(size=50)
        narrow = bootstrap_mean(values, confidence=0.8, seed=2)
        wide = bootstrap_mean(values, confidence=0.99, seed=2)
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower)

    def test_deterministic_given_seed(self):
        values = np.random.default_rng(2).normal(size=30)
        assert bootstrap_mean(values, seed=5) == bootstrap_mean(values, seed=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.0)

    def test_contains_protocol(self):
        ci = ConfidenceInterval(5.0, 4.0, 6.0, 0.95)
        assert 5.5 in ci
        assert 7.0 not in ci

    def test_str_rendering(self):
        text = str(ConfidenceInterval(5.0, 4.0, 6.0, 0.95))
        assert "5.00" in text and "95%" in text


class TestSuccessRate:
    def test_estimate(self):
        ci = bootstrap_success_rate(30, 100)
        assert ci.estimate == pytest.approx(0.3)
        assert 0.0 <= ci.lower <= 0.3 <= ci.upper <= 1.0

    def test_extremes(self):
        assert bootstrap_success_rate(0, 10).estimate == 0.0
        assert bootstrap_success_rate(10, 10).estimate == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_success_rate(5, 0)
        with pytest.raises(ValueError):
            bootstrap_success_rate(11, 10)


class TestMeanDifference:
    def test_clear_difference_excludes_zero(self):
        rng = np.random.default_rng(3)
        a = rng.normal(10.0, 1.0, size=80)
        b = rng.normal(5.0, 1.0, size=80)
        ci = bootstrap_mean_difference(a, b, seed=4)
        assert 0.0 not in ci
        assert ci.estimate == pytest.approx(a.mean() - b.mean())

    def test_identical_samples_include_zero(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        ci = bootstrap_mean_difference(a, b, seed=6)
        assert 0.0 in ci

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_difference([], [1.0])
