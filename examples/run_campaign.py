#!/usr/bin/env python
"""Run a declarative campaign matrix and render its reports.

The campaign subsystem turns the paper's {models x attacks x budgets}
sweep into a validated spec, a kill-and-resume-safe runner, an
append-only results trendline, and Markdown/CSV/BENCH reports.  This
example drives all of it in-process against the toy 2x2 matrix
(``examples/toy_campaign.toml``); the CLI equivalent is::

    repro campaign run --spec examples/toy_campaign.toml --root camp/ --store store/
    repro campaign report --root camp/ --bench-dir camp/

Run with::

    python examples/run_campaign.py
"""

import os
import tempfile

from repro.campaign.report import campaign_markdown, write_campaign_bench
from repro.campaign.runner import campaign_status, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultsStore

HERE = os.path.dirname(os.path.abspath(__file__))


def main():
    spec = CampaignSpec.load(os.path.join(HERE, "toy_campaign.toml"))
    print(f"campaign {spec.campaign_id}: {len(spec.expand())} cells, "
          f"spec fingerprint {spec.fingerprint()}")

    with tempfile.TemporaryDirectory() as workdir:
        root = os.path.join(workdir, "campaign")
        store = ResultsStore(os.path.join(workdir, "store"))

        # 1. Run the matrix.  Every completed image and every completed
        # cell is durable before the runner moves on, so a SIGKILL here
        # resumes bit-identically (the CI smoke proves exactly that).
        run_campaign(spec, root, results_store=store, progress=print)

        # 2. Rerunning is a no-op replay: every cell restores from its
        # durable record, zero queries re-posed.
        rerun = run_campaign(spec, root, results_store=store)
        replayed = sum(1 for outcome in rerun.outcomes if outcome.replayed)
        print(f"\nrerun replayed {replayed}/{len(rerun.outcomes)} cells "
              f"without re-posing a query")
        for cell, state in campaign_status(spec, root):
            print(f"  {state:>7}  {cell.cell_id}")

        # 3. The deterministic report: a pure function of the attack
        # results (timing columns stripped), so it doubles as a
        # regression surface across commits.
        print()
        print(campaign_markdown(root, include_timing=False))

        # 4. The trendline store and the BENCH trajectory file.
        bench_path = write_campaign_bench(root, workdir)
        print(f"BENCH trajectory written to "
              f"{os.path.basename(bench_path)}")
        for identity in sorted({r["cell"] for r in store.records()}):
            points = store.trendline(spec.campaign_id, identity, "success_rate")
            print(f"  trendline {identity}: "
                  f"{[(rev, value) for _, rev, value in points]}")


if __name__ == "__main__":
    main()
