#!/usr/bin/env python
"""The defense side: detect and reverse one-pixel attacks.

Builds a one-pixel adversarial example against a toy classifier, then
runs the pixel-healing detector (OPA2D-inspired) to locate the perturbed
pixel, restore the image, and recover the original prediction.

Run with::

    python examples/detect_and_heal.py
"""

import numpy as np

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import SmoothLinearClassifier, make_toy_images
from repro.defense.healing import PixelHealingDetector


def main():
    shape = (10, 10, 3)
    classifier = SmoothLinearClassifier(
        shape, num_classes=3, seed=1, temperature=0.02
    )
    detector = PixelHealingDetector(classifier, top_k=8)
    images = make_toy_images(10, shape, seed=42)

    attacked = healed = clean_flagged = 0
    for index, image in enumerate(images):
        true_class = int(np.argmax(classifier(image)))

        # the defender should not flag the clean image
        clean_verdict = detector.detect(image)
        if clean_verdict.adversarial:
            clean_flagged += 1

        # mount the attack
        result = FixedSketchAttack().attack(classifier, image, true_class)
        if not result.success:
            print(f"image {index}: not one-pixel attackable, skipped")
            continue
        attacked += 1
        adversarial = image.copy()
        adversarial[result.location[0], result.location[1]] = result.perturbation

        # ... and defend
        verdict = detector.detect(adversarial)
        status = "missed"
        if verdict.adversarial:
            recovered = verdict.restored_class == true_class
            located = verdict.location == result.location
            if recovered:
                healed += 1
            status = (
                f"detected at {verdict.location} "
                f"(correct pixel: {located}, class restored: {recovered}, "
                f"{verdict.queries} queries)"
            )
        print(f"image {index}: attacked at {result.location} -> {status}")

    print(f"\nattacked: {attacked}, healed back to the true class: {healed}, "
          f"clean images falsely flagged: {clean_flagged}/{len(images)}")


if __name__ == "__main__":
    main()
