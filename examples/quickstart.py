#!/usr/bin/env python
"""Quickstart: synthesize a one-pixel adversarial program and attack with it.

This example uses a deliberately fragile toy classifier so it runs in
seconds; ``attack_trained_cnn.py`` shows the same flow against a real
trained convolutional network.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.sketch_attack import SketchAttack
from repro.classifier.toy import SmoothLinearClassifier, make_toy_images
from repro.core.dsl.printer import format_program
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig


def main():
    # 1. A black-box classifier: any callable (H, W, 3) -> score vector.
    # This toy model has spatially smooth weights with an off-center
    # vulnerable region -- structure the synthesized conditions can
    # genuinely exploit (real CNNs have analogous locality; see
    # Vargas & Su 2020).
    shape = (10, 10, 3)
    classifier = SmoothLinearClassifier(
        shape, num_classes=3, seed=1, temperature=0.02, hotspot=(0.85, -0.85)
    )

    # 2. A small training set of correctly-classified images.
    images = make_toy_images(15, shape, seed=2)
    training_pairs = [(img, int(np.argmax(classifier(img)))) for img in images]

    # 3. Synthesize an adversarial program (this is where queries are spent).
    oppsla = Oppsla(OppslaConfig(max_iterations=40, beta=0.05, seed=7))
    result = oppsla.synthesize(classifier, training_pairs)
    print("Synthesized program:")
    print(format_program(result.program))
    print(f"\nSynthesis spent {result.total_queries} queries over "
          f"{result.trace.iterations} iterations")
    print(f"Training avg queries: {result.best_evaluation.avg_queries:.1f} "
          f"({result.best_evaluation.successes}/"
          f"{result.best_evaluation.total_images} successes)")

    # 4. Attack fresh images with the synthesized program...
    test_images = make_toy_images(15, shape, seed=99)
    test_pairs = [(img, int(np.argmax(classifier(img)))) for img in test_images]

    synthesized = SketchAttack(result.program)
    fixed = FixedSketchAttack()  # ...and compare against the fixed ordering.

    print("\nPer-image queries (synthesized vs fixed prioritization):")
    total = {"synthesized": 0, "fixed": 0}
    for index, (image, true_class) in enumerate(test_pairs):
        a = synthesized.attack(classifier, image, true_class)
        b = fixed.attack(classifier, image, true_class)
        total["synthesized"] += a.queries
        total["fixed"] += b.queries
        print(f"  image {index}: {a.queries:4d} vs {b.queries:4d}"
              f"  (success={a.success})")
    print(f"\nTotals: synthesized={total['synthesized']}, fixed={total['fixed']}")


if __name__ == "__main__":
    main()
