#!/usr/bin/env python
"""Attack a trained convolutional network, end to end.

This mirrors the paper's main experiment at laptop scale:

1. train (or load from cache) a VGG-16-BN-style classifier on the
   CIFAR-like synthetic dataset;
2. synthesize an adversarial program for it with OPPSLA;
3. attack the correctly-classified test images and compare the query
   counts against Sparse-RS.

First run trains the network (about a minute); afterwards weights load
from ``~/.cache/repro_oppsla``.  Run with::

    python examples/attack_trained_cnn.py
"""

from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.core.dsl.printer import format_program
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig
from repro.eval.runner import attack_dataset
from repro.models.zoo import ModelZoo, ZooConfig


def main():
    # -- classifier -----------------------------------------------------------
    zoo = ModelZoo(ZooConfig(dataset="cifar", image_size=16))
    print("Training/loading vgg16bn ...")
    trained = zoo.get("vgg16bn")
    print(f"  train accuracy {trained.train_accuracy:.1%}, "
          f"test accuracy {trained.test_accuracy:.1%}")

    # -- synthesis ------------------------------------------------------------
    training_pairs = zoo.correctly_classified(
        "vgg16bn", split="train", limit=8
    ).pairs()
    print(f"\nSynthesizing a program from {len(training_pairs)} training images ...")
    oppsla = Oppsla(
        OppslaConfig(max_iterations=10, beta=0.01, per_image_budget=768, seed=0)
    )
    result = oppsla.synthesize(trained.classifier, training_pairs)
    print(format_program(result.program))
    print(f"  synthesis queries: {result.total_queries}")

    # -- attack ----------------------------------------------------------------
    test_pairs = zoo.correctly_classified("vgg16bn", split="test", limit=15).pairs()
    budget = 2048  # the full corner space of a 16x16 image

    print(f"\nAttacking {len(test_pairs)} test images (budget {budget}) ...")
    for attack in (
        SketchAttack(result.program),
        SparseRS(SparseRSConfig(seed=0)),
    ):
        summary = attack_dataset(attack, trained.classifier, test_pairs, budget=budget)
        print(f"  {summary.attack_name:12s} success {summary.success_rate:6.1%}  "
              f"avg queries {summary.avg_queries:8.1f}  "
              f"median {summary.median_queries:6.1f}")


if __name__ == "__main__":
    main()
