#!/usr/bin/env python
"""Load-generate the attack service and watch micro-batching work.

Starts an in-process ``repro.serve`` server on a loopback port, fires N
concurrent HTTP clients -- each submitting its own one-pixel attack and
polling until it finishes -- then prints per-client outcomes, aggregate
throughput, and the broker's batch-size distribution.  With enough
concurrent clients the distribution shifts visibly away from
batch-of-1: that shift is the serving layer's whole reason to exist.

Run with::

    python examples/serve_clients.py [num_clients]

Point it at an external server instead by exporting
``REPRO_SERVE_URL=http://host:port`` (start one with ``repro-serve``).
"""

import json
import os
import random
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.serve.server import ServeConfig, ServerHandle

SHAPE = (8, 8, 3)
BUDGET = 200
POLL_INTERVAL = 0.02
#: Exponential backoff for 429 (shed load) and 503 (draining, or a
#: cluster rebalancing a session between replicas): base doubles per
#: attempt, each wait jittered to avoid synchronized client stampedes.
BACKOFF_BASE = 0.1
BACKOFF_CAP = 2.0
MAX_RETRIES = 30


def _request_with_backoff(request, retry_counter, timeout=30):
    """urlopen that retries 429/503 with jittered exponential backoff.

    When the server names its own pace -- the ``Retry-After`` header an
    overload-shedding server (503) or admission control (429) attaches
    -- that wait is honored instead of the computed backoff: the server
    knows when capacity frees up, the client's exponential schedule is
    just a guess.  Any other status (or exhausting the retry budget)
    propagates: those are real errors, not transient server states.
    Increments ``retry_counter`` (a one-element list, shared per client)
    on every retried response so the report can show how often clients
    backed off.
    """
    for attempt in range(MAX_RETRIES):
        try:
            return urllib.request.urlopen(request, timeout=timeout)
        except urllib.error.HTTPError as error:
            if error.code not in (429, 503) or attempt == MAX_RETRIES - 1:
                raise
            retry_after = error.headers.get("Retry-After")
            error.close()
            retry_counter[0] += 1
            wait = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** attempt))
            if retry_after is not None:
                try:
                    wait = min(BACKOFF_CAP, float(retry_after))
                except ValueError:
                    pass
            time.sleep(wait * random.uniform(0.5, 1.0))
    raise RuntimeError("unreachable: retry loop exits via return or raise")


def submit_and_poll(base, image, true_class, seed, outcomes, retries, position):
    """One client: POST an attack, poll until it resolves.

    Both the submission and every poll ride the backoff helper, so the
    client survives admission-control sheds (429), a draining server
    (503), and a cluster tier rebalancing its session mid-flight (503).
    """
    body = json.dumps(
        {
            "attack": "random" if seed % 2 else "fixed",
            "image": image.tolist(),
            "true_class": true_class,
            "budget": BUDGET,
            "params": {"seed": seed},
        }
    ).encode()
    retry_counter = [0]
    request = urllib.request.Request(
        base + "/attacks",
        data=body,
        headers={"Content-Type": "application/json", "X-Client-Id": f"client-{seed}"},
    )
    with _request_with_backoff(request, retry_counter) as response:
        session_id = json.load(response)["id"]
    while True:
        poll = urllib.request.Request(f"{base}/attacks/{session_id}")
        try:
            with _request_with_backoff(poll, retry_counter) as response:
                status = json.load(response)
        except urllib.error.HTTPError as error:
            # A slow poller can lose its session to the TTL reaper: 410
            # (tombstoned) or 404 (tombstone itself aged out).  That is
            # an answer, not an error -- record it and stop polling.
            if error.code in (404, 410):
                error.close()
                outcomes[position] = {
                    "attack": "?",
                    "state": "reaped",
                    "queries": 0,
                    "result": None,
                }
                retries[position] = retry_counter[0]
                return
            raise
        if status["state"] in ("done", "failed", "cancelled", "expired"):
            outcomes[position] = status
            retries[position] = retry_counter[0]
            return
        time.sleep(POLL_INTERVAL)


def main():
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    external = os.environ.get("REPRO_SERVE_URL")

    handle = None
    if external:
        base = external.rstrip("/")
        print(f"using external server at {base}")
    else:
        config = ServeConfig(
            port=0, height=SHAPE[0], width=SHAPE[1], num_classes=4, seed=2,
            max_batch_size=clients, max_wait=0.002,
            rate=1000.0, burst=float(clients * 2),
        )
        handle = ServerHandle(config).start()
        host, port = handle.address
        base = f"http://{host}:{port}"
        print(f"started in-process server at {base}")

    health = json.load(urllib.request.urlopen(base + "/healthz", timeout=10))
    print(f"serving model: {health['model']}\n")

    # every client gets its own image; true class read off the model's
    # clean prediction (the usual untargeted threat model)
    rng = np.random.default_rng(11)
    jobs = []
    for seed in range(clients):
        image = rng.random(SHAPE)
        if handle is not None:
            true_class = int(np.argmax(handle.server.classifier(image)))
        else:
            true_class = 0
        jobs.append((image, true_class, seed))

    outcomes = [None] * clients
    retries = [0] * clients
    threads = [
        threading.Thread(
            target=submit_and_poll,
            args=(base, image, label, seed, outcomes, retries, seed),
        )
        for image, label, seed in jobs
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    print(
        f"{'client':>8} {'attack':>14} {'state':>7} {'success':>8} "
        f"{'queries':>8} {'retries':>8}"
    )
    for seed, status in enumerate(outcomes):
        result = status.get("result") or {}
        print(
            f"{seed:>8} {status['attack']:>14} {status['state']:>7} "
            f"{str(result.get('success')):>8} {status['queries']:>8} "
            f"{retries[seed]:>8}"
        )

    metrics = json.load(urllib.request.urlopen(base + "/metrics", timeout=10))
    broker = metrics["broker"]
    total_queries = sum(status["queries"] for status in outcomes)
    print(
        f"\n{clients} concurrent clients, {total_queries} counted queries "
        f"in {elapsed:.2f}s -> {broker['submitted'] / elapsed:.0f} submissions/s"
    )
    print(
        f"broker: {broker['flushes']} flushes, mean batch "
        f"{broker['batch_sizes']['mean']:.2f}, max {broker['batch_sizes']['max']:.0f}"
    )
    print("batch-size distribution (queries answered per flush):")
    for label, count in broker["batch_sizes"]["buckets"].items():
        if count:
            print(f"  {label:>6}: {'#' * min(count, 60)} {count}")
    cache = broker.get("cache")
    if cache:
        print(f"cache: {cache['hits']} hits / {cache['misses']} misses")
    total_retries = sum(retries)
    print(
        f"backoff retries (429/503): {total_retries} total, "
        f"max per client {max(retries)}"
    )

    if handle is not None:
        handle.stop()


if __name__ == "__main__":
    main()
