#!/usr/bin/env python
"""Where do one-pixel attacks land?  Reproducing the motivating analyses.

The condition language's features come from two published analyses the
paper cites: Alatalo et al. (2022) found successful perturbations skew
toward the image center and often brighten dark pixels; Vargas & Su
(2020) found vulnerability is spatially local.  This example mounts
attacks on a toy classifier, then recomputes the spatial and chromatic
profiles and the sketch's own execution statistics.

Run with::

    python examples/analyze_attacks.py
"""

import numpy as np

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import SmoothLinearClassifier, make_toy_images
from repro.core.dsl.library import eager_locality_program
from repro.core.instrumentation import SketchStats
from repro.core.sketch import OnePixelSketch
from repro.eval.attack_analysis import (
    chromatic_profile,
    format_profiles,
    spatial_profile,
)


def main():
    shape = (12, 12, 3)
    # a classifier whose vulnerable region sits toward the center,
    # mirroring the spatial skew Alatalo et al. observed on CIFAR-10
    classifier = SmoothLinearClassifier(
        shape, num_classes=3, seed=5, temperature=0.02, hotspot=(0.1, 0.1)
    )
    images = make_toy_images(30, shape, seed=7)

    # -- mount attacks -------------------------------------------------------
    attack = FixedSketchAttack()
    results = []
    for image in images:
        true_class = int(np.argmax(classifier(image)))
        results.append(attack.attack(classifier, image, true_class))
    successes = sum(result.success for result in results)
    print(f"attacked {len(images)} images, {successes} successes\n")

    # -- spatial / chromatic profiles ----------------------------------------
    print(format_profiles(
        spatial_profile(results, shape[:2]),
        chromatic_profile(results, list(images)),
    ))

    # -- sketch execution statistics -----------------------------------------
    # run a locality-driven program and inspect how its conditions fire
    program = eager_locality_program(push_back_below=0.01, eager_above=0.05)
    stats = SketchStats()
    sketch = OnePixelSketch(program)
    for image in images[:10]:
        true_class = int(np.argmax(classifier(image)))
        sketch.attack(classifier, image, true_class, stats=stats)
    print("\nsketch execution statistics (locality program, 10 images):")
    print(stats.summary())


if __name__ == "__main__":
    main()
