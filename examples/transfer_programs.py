#!/usr/bin/env python
"""Transferability: attack classifier B with a program synthesized for A.

Reproduces the spirit of the paper's Table 1 on two toy classifiers,
showing that a program synthesized against one network stays effective
(a small query-count increase) against another -- the property that makes
adversarial programs practical when the real target rate-limits queries.

Run with::

    python examples/transfer_programs.py
"""

import numpy as np

from repro.classifier.toy import LinearPixelClassifier, make_toy_images
from repro.core.dsl.printer import format_program
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig
from repro.eval.transfer import transfer_matrix
from repro.eval.reporting import format_transfer


def main():
    shape = (6, 6, 3)
    classifiers = {
        "net_a": LinearPixelClassifier(shape, num_classes=3, seed=10, temperature=0.05),
        "net_b": LinearPixelClassifier(shape, num_classes=3, seed=20, temperature=0.05),
    }

    # synthesize one program per classifier, each on its own training set
    programs = {}
    test_pairs = {}
    for name, classifier in classifiers.items():
        images = make_toy_images(8, shape, seed=hash(name) % 1000)
        pairs = [(img, int(np.argmax(classifier(img)))) for img in images]
        result = Oppsla(
            OppslaConfig(max_iterations=15, per_image_budget=512, seed=1)
        ).synthesize(classifier, pairs)
        programs[name] = result.program
        print(f"Program synthesized for {name}:")
        print(format_program(result.program))
        print()

        held_out = make_toy_images(12, shape, seed=5000 + hash(name) % 1000)
        test_pairs[name] = [
            (img, int(np.argmax(classifier(img)))) for img in held_out
        ]

    matrix = transfer_matrix(programs, classifiers, test_pairs, budget=512)
    print(format_transfer(matrix))
    print()
    for target in matrix.names:
        for source in matrix.names:
            if target != source:
                overhead = matrix.transfer_overhead(target, source)
                print(f"  {source} -> {target}: {overhead:.2f}x the native query count")


if __name__ == "__main__":
    main()
