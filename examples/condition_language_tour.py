#!/usr/bin/env python
"""A tour of the condition DSL: parse, print, evaluate, mutate.

The condition language (Figure 1 of the paper) is small enough to show in
full.  This example builds the paper's worked-example program, round-trips
it through the parser, evaluates its conditions against a concrete attack
context, and walks a few Metropolis-Hastings-style mutations.

Run with::

    python examples/condition_language_tour.py
"""

import numpy as np

from repro.core.context import EvalContext
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.interpreter import evaluate_condition, evaluate_function
from repro.core.dsl.mutation import mutate_program
from repro.core.dsl.parser import parse_program
from repro.core.dsl.printer import format_condition, format_program
from repro.core.pairs import Pair

PAPER_PROGRAM = """
[B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.21
[B2] max(x[l]) > 0.19
[B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.25
[B4] center(l) < 8
"""


def main():
    # -- parse the paper's example ------------------------------------------------
    program = parse_program(PAPER_PROGRAM)
    print("Parsed program (Section 3.2 of the paper):")
    print(format_program(program))

    # round trip: printing and re-parsing is the identity
    assert parse_program(format_program(program)) == program

    # -- evaluate against a concrete context ----------------------------------
    image = np.full((32, 32, 3), 0.4)
    image[10, 12] = [0.05, 0.30, 0.10]  # a dark pixel
    context = EvalContext(
        image=image,
        pair=Pair(10, 12, 7),  # perturb it to white
        clean_scores=np.array([0.80, 0.15, 0.05]),
        perturbed_scores=np.array([0.52, 0.40, 0.08]),
        true_class=0,
    )
    print("\nEvaluating each condition on a failed white-pixel write at (10, 12):")
    for index, condition in enumerate(program.conditions):
        value = evaluate_function(condition.function, context)
        verdict = evaluate_condition(condition, context)
        print(f"  [B{index + 1}] {format_condition(condition):48s}"
              f" F = {value:7.3f} -> {verdict}")

    # -- random generation and mutation -----------------------------------------
    grammar = Grammar(image_shape=(32, 32))
    rng = np.random.default_rng(0)
    candidate = grammar.random_program(rng)
    print("\nA random well-typed program:")
    print(format_program(candidate))

    print("\nThree successive tree mutations:")
    for step in range(3):
        candidate = mutate_program(candidate, grammar, rng)
        changed = format_program(candidate).splitlines()
        print(f"  step {step + 1}:")
        for line in changed:
            print(f"    {line}")


if __name__ == "__main__":
    main()
