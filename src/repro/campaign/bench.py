"""The ``BENCH_*.json`` performance-trajectory schema.

Benchmarks used to print text tables that CI forgot the moment the job
ended; this module gives every perf-bearing number a durable,
machine-readable form that re-anchors and CI can diff across commits.
One file per suite (or per campaign), schema ``repro-bench/1``::

    {
      "schema": "repro-bench/1",
      "suite": "runtime_scaling",
      "git_rev": "1f7f2a8",
      "timestamp": 1754640000.0,
      "metrics": [
        {"name": "speedup", "value": 3.25, "unit": "x"},
        ...
      ]
    }

``metrics[].name`` is a stable identifier (campaign benches namespace it
as ``<cell>/<metric>``); ``value`` is a finite float or ``None`` for
"undefined this run" (e.g. an average over zero successes); ``unit`` is
a short human label (``x``, ``s``, ``queries``, ``fraction``, ...).
Producers: ``benchmarks/conftest.py`` (suite benches) and
:mod:`repro.campaign.report` (campaign benches).  Consumers:
``benchmarks/collect_results.py``, CI artifact uploads, and the
:class:`~repro.campaign.store.ResultsStore` trendline.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from typing import Dict, Iterable, List, Optional, Sequence

BENCH_SCHEMA = "repro-bench/1"
BENCH_PREFIX = "BENCH_"


class BenchSchemaError(ValueError):
    """A payload does not conform to the ``repro-bench/1`` schema."""


def git_revision(directory: Optional[str] = None) -> str:
    """The short git revision of ``directory`` (or CWD); ``"unknown"``
    when git or the repository is unavailable -- BENCH files must still
    be writable from an exported tarball."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=directory,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def bench_metric(name: str, value, unit: str) -> Dict:
    """One schema-conforming metric entry (validated on construction)."""
    if not isinstance(name, str) or not name:
        raise BenchSchemaError(f"metric name must be a non-empty string: {name!r}")
    if value is not None:
        value = float(value)
        if not math.isfinite(value):
            # inf/nan mean "undefined this run" -- encode as null so the
            # file stays strict JSON and diffs cleanly
            value = None
    if not isinstance(unit, str) or not unit:
        raise BenchSchemaError(f"metric unit must be a non-empty string: {unit!r}")
    return {"name": name, "value": value, "unit": unit}


def bench_payload(
    suite: str,
    metrics: Iterable[Dict],
    git_rev: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict:
    """Assemble one validated ``repro-bench/1`` document."""
    payload = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "timestamp": timestamp if timestamp is not None else time.time(),
        "metrics": [
            bench_metric(m["name"], m["value"], m["unit"]) for m in metrics
        ],
    }
    validate_bench(payload)
    return payload


def validate_bench(payload: Dict) -> None:
    """Raise :class:`BenchSchemaError` unless ``payload`` conforms.

    This is the contract CI and future re-anchors diff against, so it is
    enforced on *both* sides: producers validate before writing and the
    tests validate every file the suite leaves behind.
    """
    if not isinstance(payload, dict):
        raise BenchSchemaError("payload must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("suite", "git_rev"):
        if not isinstance(payload.get(key), str) or not payload[key]:
            raise BenchSchemaError(f"{key} must be a non-empty string")
    timestamp = payload.get("timestamp")
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        raise BenchSchemaError("timestamp must be a number")
    metrics = payload.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        raise BenchSchemaError("metrics must be a non-empty list")
    seen = set()
    for metric in metrics:
        if not isinstance(metric, dict):
            raise BenchSchemaError("each metric must be an object")
        if set(metric) != {"name", "value", "unit"}:
            raise BenchSchemaError(
                f"metric keys must be exactly name/value/unit: {sorted(metric)}"
            )
        name = metric["name"]
        if not isinstance(name, str) or not name:
            raise BenchSchemaError("metric name must be a non-empty string")
        if name in seen:
            raise BenchSchemaError(f"duplicate metric name {name!r}")
        seen.add(name)
        value = metric["value"]
        if value is not None and (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not math.isfinite(value)
        ):
            raise BenchSchemaError(
                f"metric {name!r} value must be a finite number or null"
            )
        if not isinstance(metric["unit"], str) or not metric["unit"]:
            raise BenchSchemaError(f"metric {name!r} unit must be a string")


def bench_path(directory: str, suite: str) -> str:
    return os.path.join(directory, f"{BENCH_PREFIX}{suite}.json")


def write_bench(
    directory: str,
    suite: str,
    metrics: Sequence[Dict],
    git_rev: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> str:
    """Validate and write ``BENCH_<suite>.json``; returns the path."""
    payload = bench_payload(suite, metrics, git_rev=git_rev, timestamp=timestamp)
    os.makedirs(directory, exist_ok=True)
    path = bench_path(directory, suite)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def read_bench(path: str) -> Dict:
    """Load and validate one BENCH file."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchSchemaError(f"invalid JSON in {path}: {exc}") from exc
    validate_bench(payload)
    return payload


def list_bench_files(directory: str) -> List[str]:
    """All ``BENCH_*.json`` paths under ``directory``, sorted."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        os.path.join(directory, name)
        for name in names
        if name.startswith(BENCH_PREFIX) and name.endswith(".json")
    )
