"""Execute a campaign matrix cell by cell, durably and resumably.

The runner turns a validated :class:`~repro.campaign.spec.CampaignSpec`
into completed cells on top of the primitives the repo already trusts:

- each cell is one :func:`~repro.eval.runner.attack_dataset` run with
  its own :class:`~repro.runtime.checkpoint.CheckpointStore` under
  ``<root>/cells/<cell_id>/``, so a kill mid-cell resumes *within* the
  cell at per-image granularity (PR 5 semantics, unchanged);
- the campaign root is itself a checkpoint store: ``manifest.json``
  pins ``(campaign id, spec fingerprint)`` and ``records.jsonl``
  appends one durable record per *completed* cell, so a kill between
  cells skips the finished ones entirely on resume;
- per-cell summaries merge recorded per-image timings, so a resumed
  campaign reports the original latency of units that completed before
  the kill instead of zeros.

Determinism contract: every cell re-derives its randomness from
``(campaign seed, cell id)`` alone (see :func:`~repro.campaign.spec.cell_seeds`),
so a SIGKILLed-and-resumed campaign produces per-image results --
and therefore the deterministic report -- bit-identical to an
uninterrupted run.  Wall-clock fields are measurements and are excluded
from that comparison (:data:`repro.eval.runner.TIMING_KEYS`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.base import OnePixelAttack
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.campaign.bench import git_revision
from repro.campaign.spec import (
    PROGRAM_PREFIX,
    TOY_DATASET,
    CampaignSpec,
    CellSpec,
    SpecError,
)
from repro.campaign.store import ResultsStore, make_record
from repro.classifier.toy import (
    LatencyClassifier,
    LinearPixelClassifier,
    SmoothLinearClassifier,
)
from repro.eval.runner import AttackRunSummary, attack_dataset
from repro.runtime.checkpoint import (
    RECORDS_NAME,
    CheckpointStore,
    cell_record,
    load_matrix,
    matrix_manifest,
)
from repro.runtime.events import RunLog, ensure_log

Progress = Callable[[str], None]


# ----------------------------------------------------------------------
# cell inputs: model + dataset + attack from a CellSpec
# ----------------------------------------------------------------------


def build_attack(cell: CellSpec) -> OnePixelAttack:
    """Instantiate the cell's attack; its seed derives from the cell."""
    config = dict(cell.attack_config)
    kind = cell.attack
    try:
        if kind == "fixed":
            if config:
                raise SpecError(
                    f"attack 'fixed' takes no configuration, got {sorted(config)}"
                )
            return FixedSketchAttack()
        if kind == "random":
            config.setdefault("seed", cell.base_seed)
            return UniformRandomAttack(UniformRandomConfig(**config))
        if kind == "sparse-rs":
            config.setdefault("seed", cell.base_seed)
            return SparseRS(SparseRSConfig(**config))
        if kind == "su-opa":
            config.setdefault("seed", cell.base_seed)
            return SuOPA(SuOPAConfig(**config))
        if kind.startswith(PROGRAM_PREFIX):
            from repro.core.synthesis.oppsla import SynthesisResult

            path = kind[len(PROGRAM_PREFIX):]
            return SketchAttack(SynthesisResult.load_program(path))
    except TypeError as exc:
        raise SpecError(f"invalid [attack.{kind}] configuration: {exc}") from exc
    raise SpecError(f"unknown attack kind {kind!r}")  # pragma: no cover


def build_toy_model(cell: CellSpec):
    """``(classifier, latency)`` from the cell's model settings.

    ``latency`` (seconds per query, default 0) simulates a remote
    oracle; the runner wraps the classifier in a
    :class:`~repro.classifier.toy.LatencyClassifier` *after* dataset
    labeling, so scores -- and therefore results -- are unchanged.  The
    kill-and-resume harness leans on it to land a SIGKILL mid-matrix.
    """
    config = dict(cell.model_config)
    height = config.pop("height", 8)
    width = config.pop("width", 8)
    classes = config.pop("classes", 4)
    latency = config.pop("latency", 0.0)
    if not isinstance(latency, (int, float)) or latency < 0:
        raise SpecError(
            f"[model.{cell.model}] latency must be a non-negative number"
        )
    config.setdefault("seed", 0)
    shape = (height, width, 3)
    builders = {
        "toy-smooth": SmoothLinearClassifier,
        "toy-linear": LinearPixelClassifier,
    }
    builder = builders[cell.model]
    try:
        return builder(shape, num_classes=classes, **config), float(latency)
    except TypeError as exc:
        raise SpecError(
            f"invalid [model.{cell.model}] configuration: {exc}"
        ) from exc


def toy_pairs(classifier, cell: CellSpec) -> List[Tuple[np.ndarray, int]]:
    """``images`` synthetic test pairs labeled by the classifier itself.

    Derived from ``cell.data_seed`` only, so the dataset is identical on
    every (re)run of the cell regardless of execution order.
    """
    rng = np.random.default_rng(cell.data_seed)
    pairs = []
    while len(pairs) < cell.images:
        image = rng.uniform(0.0, 1.0, size=classifier.image_shape)
        pairs.append((image, int(np.argmax(classifier(image)))))
    return pairs


def build_cell_inputs(cell: CellSpec, zoo_cache_dir: Optional[str] = None):
    """``(classifier, test_pairs)`` for one cell.

    Toy cells are self-contained (classifier + synthetic dataset from
    the cell seeds); zoo cells train-or-load the registered architecture
    through the shared :class:`~repro.models.zoo.ModelZoo` cache.
    """
    if cell.dataset == TOY_DATASET:
        classifier, latency = build_toy_model(cell)
        pairs = toy_pairs(classifier, cell)
        if latency > 0:
            classifier = LatencyClassifier(classifier, latency)
        return classifier, pairs

    from repro.models.zoo import ModelZoo, ZooConfig

    config = dict(cell.model_config)
    kwargs = dict(
        dataset=cell.dataset,
        image_size=config.pop("image_size", 16),
        train_per_class=config.pop("train_per_class", 200),
        epochs=config.pop("epochs", 5),
        seed=config.pop("seed", 0),
    )
    if config:
        raise SpecError(
            f"unknown [model.{cell.model}] keys for a zoo model: "
            f"{sorted(config)}"
        )
    if zoo_cache_dir:
        kwargs["cache_dir"] = zoo_cache_dir
    zoo = ModelZoo(ZooConfig(**kwargs))
    trained = zoo.get(cell.model)
    pairs = zoo.correctly_classified(
        cell.model, split="test", limit=cell.images
    ).pairs()
    return trained.classifier, pairs


# ----------------------------------------------------------------------
# the run itself
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellOutcome:
    """One cell's durable record, plus whether it was replayed."""

    cell: CellSpec
    record: Dict
    replayed: bool

    @property
    def cell_id(self) -> str:
        return self.cell.cell_id

    @property
    def summary(self) -> Dict:
        return self.record["summary"]


@dataclass(frozen=True)
class CampaignRun:
    """A completed (or fully-resumed) campaign: spec plus cell records."""

    spec: CampaignSpec
    outcomes: List[CellOutcome]

    def records(self) -> List[Dict]:
        return [outcome.record for outcome in self.outcomes]

    def outcome(self, cell_id: str) -> CellOutcome:
        for outcome in self.outcomes:
            if outcome.cell_id == cell_id:
                return outcome
        raise KeyError(cell_id)


def cell_payload(
    cell: CellSpec,
    summary: AttackRunSummary,
    cache: Optional[Dict],
    git_rev: str,
    timestamp: float,
) -> Dict:
    """The durable record body for one freshly completed cell.

    ``summary``/``per_image`` are deterministic re-runs of the cell;
    ``timing``/``cache``/``git_rev``/``timestamp`` are measurements of
    *this* execution.  Reports select accordingly.
    """
    return {
        "spec": cell.to_dict(),
        "summary": summary.to_dict(include_timing=False),
        "per_image": [
            [result.success, result.queries, result.error]
            for result in summary.results
        ],
        "timing": {
            "attack_seconds": summary.attack_seconds,
            "total_seconds": summary.total_seconds,
            "avg_seconds_per_image": summary.avg_seconds_per_image,
        },
        "cache": cache,
        "git_rev": git_rev,
        "timestamp": timestamp,
    }


def cell_directory(root: str, cell_id: str) -> str:
    return os.path.join(root, "cells", cell_id)


def run_campaign(
    spec: CampaignSpec,
    root: str,
    executor=None,
    run_log: Optional[RunLog] = None,
    results_store: Optional[ResultsStore] = None,
    progress: Optional[Progress] = None,
    zoo_cache_dir: Optional[str] = None,
) -> CampaignRun:
    """Run (or resume) every cell of ``spec`` under ``root``.

    Kill-safe at two granularities: completed cells are skipped via the
    root store's durable records; the in-flight cell resumes from its
    own per-image checkpoint.  ``results_store`` additionally appends
    each *freshly executed* cell to the long-lived trendline store
    (replayed cells were already recorded by the run that completed
    them).
    """
    log = ensure_log(run_log)
    notify = progress if progress is not None else lambda message: None
    cells = spec.expand()
    root_store = CheckpointStore(root)
    root_store.reconcile_manifest(
        matrix_manifest(
            spec.campaign_id, spec.fingerprint(), len(cells), spec.to_dict()
        )
    )
    _, done, truncated = load_matrix(root_store)
    if done or truncated:
        notify(
            f"# resumed campaign {spec.campaign_id}: "
            f"{len(done)}/{len(cells)} cells already complete"
        )
    log.emit(
        "campaign_start",
        campaign=spec.campaign_id,
        cells=len(cells),
        completed=len(done),
        truncated=truncated,
    )

    git_rev = git_revision()
    outcomes: List[CellOutcome] = []
    for position, cell in enumerate(cells, start=1):
        identity = cell.cell_id
        if identity in done:
            record = done[identity]
            notify(
                f"[{position}/{len(cells)}] {identity}: replayed "
                f"(success {record['summary']['success_rate']:.1%})"
            )
            log.emit("campaign_cell", cell=identity, replayed=True)
            outcomes.append(CellOutcome(cell=cell, record=record, replayed=True))
            continue

        notify(f"[{position}/{len(cells)}] {identity}: running...")
        classifier, pairs = build_cell_inputs(cell, zoo_cache_dir=zoo_cache_dir)
        attack = build_attack(cell)
        cell_log = RunLog()  # in-memory: captures this cell's cache stats
        summary = attack_dataset(
            attack,
            classifier,
            pairs,
            budget=cell.budget,
            executor=executor,
            run_log=cell_log,
            cache_size=cell.cache_size,
            freeze=cell.freeze,
            checkpoint=CheckpointStore(cell_directory(root, identity)),
            base_seed=cell.base_seed,
        )
        cache_events = cell_log.of_type("cache_stats")
        cache = cache_events[-1] if cache_events else None
        if cache is not None:
            cache = {
                key: value
                for key, value in cache.items()
                if key in ("hits", "misses", "hit_rate", "scope")
            }
        payload = cell_payload(cell, summary, cache, git_rev, time.time())
        # Durable before acknowledged: the cell joins records.jsonl
        # first, so a crash right here re-runs (and re-records) at most
        # this one cell -- whose per-image checkpoint makes even that
        # re-run a replay.
        record = cell_record(identity, payload)
        root_store.append(record)
        if results_store is not None:
            results_store.append(
                make_record(
                    spec.campaign_id,
                    identity,
                    {**payload["summary"], **payload["timing"]},
                    git_rev=git_rev,
                    timestamp=payload["timestamp"],
                    extra={"cache": cache},
                )
            )
        notify(
            f"[{position}/{len(cells)}] {identity}: success "
            f"{summary.success_rate:.1%}, median queries "
            f"{summary.median_queries:g}"
        )
        log.emit(
            "campaign_cell",
            cell=identity,
            replayed=False,
            **summary.to_dict(),
        )
        outcomes.append(CellOutcome(cell=cell, record=record, replayed=False))

    log.emit(
        "campaign_end",
        campaign=spec.campaign_id,
        cells=len(cells),
        replayed=sum(1 for outcome in outcomes if outcome.replayed),
    )
    return CampaignRun(spec=spec, outcomes=outcomes)


def campaign_status(
    spec: CampaignSpec, root: str
) -> List[Tuple[CellSpec, str]]:
    """``(cell, state)`` per cell: ``done``, ``partial`` or ``pending``.

    ``partial`` means the cell's own checkpoint holds some per-image
    records but the cell never completed -- the state a kill mid-cell
    leaves behind.
    """
    root_store = CheckpointStore(root)
    _, done, _ = load_matrix(root_store)
    states = []
    for cell in spec.expand():
        if cell.cell_id in done:
            states.append((cell, "done"))
            continue
        records_path = os.path.join(
            cell_directory(root, cell.cell_id), RECORDS_NAME
        )
        partial = False
        try:
            with open(records_path, "rb") as handle:
                partial = handle.read().count(b"\n") > 0
        except FileNotFoundError:
            partial = False
        states.append((cell, "partial" if partial else "pending"))
    return states


def loaded_spec(root: str) -> CampaignSpec:
    """Rebuild the spec a campaign root was created from (its manifest)."""
    manifest = CheckpointStore(root).manifest()
    if manifest is None or "spec" not in manifest:
        raise SpecError(
            f"{root} holds no campaign manifest; run `repro campaign run` first"
        )
    return CampaignSpec.from_dict(manifest["spec"])
