"""Render a completed campaign: Markdown, CSV, and BENCH trajectory.

Two classes of output with deliberately different determinism:

- The **deterministic report** (``include_timing=False``) is a pure
  function of the per-image attack results, so a SIGKILLed-and-resumed
  campaign renders it byte-identical to an uninterrupted run -- the
  acceptance bar CI enforces.  It carries success rate, query metrics
  and cache hit rate per cell.
- The **full report** (the default) appends wall-clock columns and the
  run's git revision, which are measurements of one particular
  execution and are expected to differ between runs.

``BENCH_campaign_<id>.json`` files flatten the same numbers into the
``repro-bench/1`` metric schema (:mod:`repro.campaign.bench`) so the
campaign joins the benchmark suite's perf trajectory.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional

from repro.campaign.bench import bench_metric, write_bench
from repro.runtime.checkpoint import CheckpointStore, load_matrix

#: ``(column header, summary key, format)`` for the deterministic table.
DETERMINISTIC_COLUMNS = (
    ("images", "total_images", "{:d}"),
    ("success", "success_rate", "{:.1%}"),
    ("avg q", "avg_queries", "{:.1f}"),
    ("median q", "median_queries", "{:.1f}"),
    ("penalized q", "penalized_avg_queries", "{:.1f}"),
    ("total q", "total_queries", "{:d}"),
)
TIMING_COLUMNS = (
    ("attack s", "attack_seconds", "{:.2f}"),
    ("wall s", "total_seconds", "{:.2f}"),
)


class ReportError(RuntimeError):
    """The campaign root cannot be rendered (no manifest / no cells)."""


def load_campaign_records(root: str) -> Dict:
    """``{"manifest": ..., "cells": {cell_id: record}}`` from a root dir."""
    store = CheckpointStore(root)
    manifest, cells, _ = load_matrix(store)
    if manifest is None:
        raise ReportError(
            f"{root} holds no campaign manifest; run `repro campaign run` first"
        )
    if not cells:
        raise ReportError(
            f"campaign {manifest.get('campaign')!r} at {root} has no "
            f"completed cells yet"
        )
    return {"manifest": manifest, "cells": cells}


def _ordered_cells(manifest: Dict, cells: Dict[str, Dict]) -> List[Dict]:
    """Cell records in spec order (completed cells only)."""
    from repro.campaign.spec import CampaignSpec

    ordered = []
    spec_payload = manifest.get("spec")
    if spec_payload:
        for cell in CampaignSpec.from_dict(spec_payload).expand():
            if cell.cell_id in cells:
                ordered.append(cells[cell.cell_id])
        # cells the spec no longer expands to (should not happen under
        # the fingerprint guard) still render, at the end
        known = {record["cell"] for record in ordered}
        ordered.extend(
            cells[cell_id] for cell_id in sorted(cells) if cell_id not in known
        )
        return ordered
    return [cells[cell_id] for cell_id in sorted(cells)]


def _cell_value(record: Dict, key: str):
    if key in record.get("summary", {}):
        return record["summary"][key]
    return record.get("timing", {}).get(key)


def _format(value, pattern: str) -> str:
    if value is None:
        return "-"
    if pattern.endswith("{:d}"):
        return pattern.format(int(value))
    try:
        return pattern.format(value)
    except (TypeError, ValueError):
        return str(value)


def _cache_rate(record: Dict) -> Optional[float]:
    cache = record.get("cache")
    if not cache:
        return None
    return cache.get("hit_rate")


def campaign_markdown(
    root: str, include_timing: bool = True
) -> str:
    """The campaign report as a Markdown document."""
    loaded = load_campaign_records(root)
    manifest, cells = loaded["manifest"], loaded["cells"]
    records = _ordered_cells(manifest, cells)
    columns = list(DETERMINISTIC_COLUMNS)
    if include_timing:
        columns += list(TIMING_COLUMNS)

    lines = [f"# campaign {manifest['campaign']}", ""]
    expected = manifest.get("cells")
    lines.append(
        f"{len(records)}/{expected} cells complete"
        + (f" · spec {manifest['fingerprint']}" if manifest.get("fingerprint") else "")
    )
    if include_timing:
        revs = sorted(
            {record.get("git_rev", "unknown") for record in records}
        )
        lines.append(f"git rev(s): {', '.join(revs)}")
    lines.append("")

    header = ["cell"] + [name for name, _, _ in columns] + ["cache hit"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for record in records:
        row = [record["cell"]]
        for _, key, pattern in columns:
            row.append(_format(_cell_value(record, key), pattern))
        rate = _cache_rate(record)
        row.append("-" if rate is None else f"{rate:.1%}")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return "\n".join(lines)


def campaign_csv(root: str, include_timing: bool = True) -> str:
    """The campaign report as CSV (one row per cell)."""
    loaded = load_campaign_records(root)
    records = _ordered_cells(loaded["manifest"], loaded["cells"])
    columns = list(DETERMINISTIC_COLUMNS)
    if include_timing:
        columns += list(TIMING_COLUMNS)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["cell"] + [key for _, key, _ in columns] + ["cache_hit_rate"])
    for record in records:
        writer.writerow(
            [record["cell"]]
            + [_cell_value(record, key) for _, key, _ in columns]
            + [_cache_rate(record)]
        )
    return buffer.getvalue()


#: Per-cell summary keys flattened into BENCH metrics, with units.
BENCH_METRICS = (
    ("success_rate", "fraction"),
    ("avg_queries", "queries"),
    ("median_queries", "queries"),
    ("penalized_avg_queries", "queries"),
    ("total_queries", "queries"),
    ("attack_seconds", "s"),
    ("total_seconds", "s"),
)


def campaign_bench_metrics(root: str) -> List[Dict]:
    """Flatten every completed cell into ``<cell>/<metric>`` entries."""
    loaded = load_campaign_records(root)
    records = _ordered_cells(loaded["manifest"], loaded["cells"])
    metrics = []
    for record in records:
        for key, unit in BENCH_METRICS:
            metrics.append(
                bench_metric(
                    f"{record['cell']}/{key}", _cell_value(record, key), unit
                )
            )
        rate = _cache_rate(record)
        if rate is not None:
            metrics.append(
                bench_metric(f"{record['cell']}/cache_hit_rate", rate, "fraction")
            )
    return metrics


def write_campaign_bench(root: str, directory: str) -> str:
    """Write ``BENCH_campaign_<id>.json`` for the campaign at ``root``."""
    loaded = load_campaign_records(root)
    campaign_id = loaded["manifest"]["campaign"]
    return write_bench(
        directory,
        f"campaign_{campaign_id}",
        campaign_bench_metrics(root),
    )
