"""Declarative campaign specs: the experiment matrix as data.

The paper's evaluation is itself a cross-product -- Figure 3 and
Tables 1-2 sweep {models x attacks x datasets x query budgets} -- and a
:class:`CampaignSpec` is that cross-product written down as a TOML or
JSON document instead of an ad-hoc script::

    [campaign]
    id = "toy-2x2"
    seed = 7
    images = 6
    budget = 64

    [matrix]
    datasets = ["toy"]
    models = ["toy-smooth", "toy-linear"]
    attacks = ["fixed", "random"]
    budgets = [64]            # optional; defaults to [campaign.budget]

    [model.toy-smooth]        # optional per-model settings
    height = 8
    width = 8
    classes = 4

    [attack.random]           # optional per-attack settings (merged
    # into the attack's config dataclass; seeds derive from the cell)

    [overrides]               # optional run-wide execution settings
    cache_size = 16
    freeze = false

Everything downstream is a pure function of the spec:

- :meth:`CampaignSpec.expand` produces the cell list in a deterministic
  order, each cell carrying a **stable id** (a readable slug of its
  coordinates) and a base seed derived from
  ``SeedSequence([campaign.seed, crc32(cell_id)])`` -- so a cell's
  randomness depends only on the campaign seed and the cell's identity,
  never on its position in the matrix or on which other cells exist.
  Adding a row to the matrix does not change any existing cell's seed.
- :meth:`CampaignSpec.fingerprint` hashes the canonical spec, which is
  what the matrix checkpoint manifest pins: a checkpoint written under
  an edited spec refuses to resume instead of silently mixing cells.

Validation happens at load time (:class:`SpecError` with the offending
field named), not deep inside the runner.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.models.registry import ARCHITECTURES

#: Models runnable without the CNN zoo: deterministic toy classifiers.
TOY_MODELS = ("toy-smooth", "toy-linear")
#: Datasets: synthetic toy images, or the zoo's cached CIFAR/ImageNet-likes.
TOY_DATASET = "toy"
ZOO_DATASETS = ("cifar", "imagenet")
#: Attack kinds the runner knows how to build (see campaign.runner).
ATTACK_KINDS = ("fixed", "random", "sparse-rs", "su-opa")
PROGRAM_PREFIX = "program:"


class SpecError(ValueError):
    """A campaign spec is malformed; the message names the field."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _string_list(value, field_name: str) -> Tuple[str, ...]:
    _require(
        isinstance(value, (list, tuple)) and len(value) > 0,
        f"{field_name} must be a non-empty list",
    )
    for item in value:
        _require(
            isinstance(item, str) and item,
            f"{field_name} entries must be non-empty strings, got {item!r}",
        )
    _require(
        len(set(value)) == len(value),
        f"{field_name} entries must be unique (duplicates would produce "
        f"colliding cell ids)",
    )
    return tuple(value)


def _valid_attack(kind: str) -> bool:
    if kind in ATTACK_KINDS:
        return True
    return kind.startswith(PROGRAM_PREFIX) and len(kind) > len(PROGRAM_PREFIX)


def _slug(text: str) -> str:
    """A filesystem- and report-safe token for one axis value."""
    safe = []
    for char in text:
        safe.append(char if char.isalnum() or char in "-_." else "_")
    return "".join(safe)


@dataclass(frozen=True)
class CellSpec:
    """One fully-resolved cell of the matrix: everything a run needs.

    ``base_seed`` feeds :func:`~repro.runtime.pool.task_seed` (per-image
    attack randomness, verified on resume); ``data_seed`` generates the
    cell's toy dataset.  Both derive from the campaign seed and the cell
    id alone, so they are stable under matrix edits elsewhere.
    """

    campaign_id: str
    dataset: str
    model: str
    attack: str
    budget: int
    images: int
    base_seed: int
    data_seed: int
    model_config: Mapping = field(default_factory=dict)
    attack_config: Mapping = field(default_factory=dict)
    cache_size: Optional[int] = None
    freeze: bool = False

    @property
    def cell_id(self) -> str:
        return cell_id(self.dataset, self.model, self.attack, self.budget)

    def to_dict(self) -> Dict:
        return {
            "cell": self.cell_id,
            "dataset": self.dataset,
            "model": self.model,
            "attack": self.attack,
            "budget": self.budget,
            "images": self.images,
            "base_seed": self.base_seed,
        }


def cell_id(dataset: str, model: str, attack: str, budget: int) -> str:
    """The stable identity of one matrix coordinate."""
    return f"{_slug(dataset)}.{_slug(model)}.{_slug(attack)}.b{budget}"


def cell_seeds(campaign_seed: int, identity: str) -> Tuple[int, int]:
    """``(base_seed, data_seed)`` for a cell, from its id alone.

    ``crc32`` keys the entropy by the cell's *identity* (not its
    position), and :class:`numpy.random.SeedSequence` turns the pair
    into two well-mixed independent streams.
    """
    sequence = np.random.SeedSequence(
        [campaign_seed, zlib.crc32(identity.encode("utf-8"))]
    )
    state = sequence.generate_state(2)
    return int(state[0]), int(state[1])


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: identity, matrix axes, and overrides."""

    campaign_id: str
    seed: int
    images: int
    budget: int
    datasets: Tuple[str, ...]
    models: Tuple[str, ...]
    attacks: Tuple[str, ...]
    budgets: Tuple[int, ...]
    model_config: Mapping[str, Mapping] = field(default_factory=dict)
    attack_config: Mapping[str, Mapping] = field(default_factory=dict)
    cache_size: Optional[int] = None
    freeze: bool = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignSpec":
        """Build and validate a spec from its document form."""
        _require(isinstance(payload, Mapping), "spec must be a table/object")
        unknown = set(payload) - {"campaign", "matrix", "model", "attack", "overrides"}
        _require(not unknown, f"unknown top-level sections: {sorted(unknown)}")

        campaign = payload.get("campaign")
        _require(
            isinstance(campaign, Mapping), "missing required [campaign] section"
        )
        campaign_id = campaign.get("id")
        _require(
            isinstance(campaign_id, str) and campaign_id,
            "campaign.id must be a non-empty string",
        )
        _require(
            campaign_id == _slug(campaign_id),
            f"campaign.id {campaign_id!r} may only contain alphanumerics, "
            f"'-', '_' and '.' (it names files and BENCH metrics)",
        )
        seed = campaign.get("seed", 0)
        _require(
            isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
            "campaign.seed must be a non-negative integer",
        )
        images = campaign.get("images")
        _require(
            isinstance(images, int) and not isinstance(images, bool) and images > 0,
            "campaign.images must be a positive integer",
        )
        budget = campaign.get("budget")
        _require(
            isinstance(budget, int) and not isinstance(budget, bool) and budget > 0,
            "campaign.budget must be a positive integer",
        )

        matrix = payload.get("matrix")
        _require(isinstance(matrix, Mapping), "missing required [matrix] section")
        models = _string_list(matrix.get("models"), "matrix.models")
        attacks = _string_list(matrix.get("attacks"), "matrix.attacks")
        datasets = matrix.get("datasets", [TOY_DATASET])
        datasets = _string_list(datasets, "matrix.datasets")
        budgets = matrix.get("budgets", [budget])
        _require(
            isinstance(budgets, (list, tuple)) and len(budgets) > 0,
            "matrix.budgets must be a non-empty list",
        )
        for value in budgets:
            _require(
                isinstance(value, int)
                and not isinstance(value, bool)
                and value > 0,
                f"matrix.budgets entries must be positive integers, got {value!r}",
            )
        _require(
            len(set(budgets)) == len(budgets),
            "matrix.budgets entries must be unique",
        )

        for dataset in datasets:
            _require(
                dataset == TOY_DATASET or dataset in ZOO_DATASETS,
                f"unknown dataset {dataset!r}; known: "
                f"{[TOY_DATASET, *ZOO_DATASETS]}",
            )
        for model in models:
            _require(
                model in TOY_MODELS or model in ARCHITECTURES,
                f"unknown model {model!r}; known: "
                f"{sorted(TOY_MODELS) + sorted(ARCHITECTURES)}",
            )
        for dataset in datasets:
            for model in models:
                toy_model = model in TOY_MODELS
                toy_dataset = dataset == TOY_DATASET
                _require(
                    toy_model == toy_dataset,
                    f"model {model!r} cannot run on dataset {dataset!r}: toy "
                    f"models pair with the 'toy' dataset, registry "
                    f"architectures with 'cifar'/'imagenet'",
                )
        for attack in attacks:
            _require(
                _valid_attack(attack),
                f"unknown attack {attack!r}; known: {list(ATTACK_KINDS)} or "
                f"'program:<path>'",
            )

        model_config = payload.get("model", {})
        _require(
            isinstance(model_config, Mapping),
            "[model.*] sections must be tables",
        )
        for name in model_config:
            _require(
                name in models,
                f"[model.{name}] configures a model absent from matrix.models",
            )
        attack_config = payload.get("attack", {})
        _require(
            isinstance(attack_config, Mapping),
            "[attack.*] sections must be tables",
        )
        for name in attack_config:
            _require(
                name in attacks,
                f"[attack.{name}] configures an attack absent from "
                f"matrix.attacks",
            )

        overrides = payload.get("overrides", {})
        _require(isinstance(overrides, Mapping), "[overrides] must be a table")
        unknown = set(overrides) - {"cache_size", "freeze"}
        _require(not unknown, f"unknown overrides: {sorted(unknown)}")
        cache_size = overrides.get("cache_size")
        if cache_size is not None:
            _require(
                isinstance(cache_size, int)
                and not isinstance(cache_size, bool)
                and cache_size >= 0,
                "overrides.cache_size must be a non-negative integer",
            )
        freeze = overrides.get("freeze", False)
        _require(isinstance(freeze, bool), "overrides.freeze must be a boolean")

        return cls(
            campaign_id=campaign_id,
            seed=seed,
            images=images,
            budget=budget,
            datasets=datasets,
            models=models,
            attacks=attacks,
            budgets=tuple(budgets),
            model_config={k: dict(v) for k, v in model_config.items()},
            attack_config={k: dict(v) for k, v in attack_config.items()},
            cache_size=cache_size,
            freeze=freeze,
        )

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Parse a ``.toml`` or ``.json`` spec file."""
        extension = os.path.splitext(path)[1].lower()
        if extension == ".toml":
            try:
                import tomllib
            except ImportError as exc:  # Python < 3.11
                raise SpecError(
                    "TOML specs need Python >= 3.11 (tomllib); rewrite the "
                    "spec as JSON or upgrade the interpreter"
                ) from exc
            with open(path, "rb") as handle:
                try:
                    payload = tomllib.load(handle)
                except tomllib.TOMLDecodeError as exc:
                    raise SpecError(f"invalid TOML in {path}: {exc}") from exc
        elif extension == ".json":
            with open(path) as handle:
                try:
                    payload = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise SpecError(f"invalid JSON in {path}: {exc}") from exc
        else:
            raise SpecError(
                f"unsupported spec extension {extension!r} (use .toml or .json)"
            )
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """The canonical document form (round-trips via ``from_dict``)."""
        return {
            "campaign": {
                "id": self.campaign_id,
                "seed": self.seed,
                "images": self.images,
                "budget": self.budget,
            },
            "matrix": {
                "datasets": list(self.datasets),
                "models": list(self.models),
                "attacks": list(self.attacks),
                "budgets": list(self.budgets),
            },
            "model": {k: dict(v) for k, v in sorted(self.model_config.items())},
            "attack": {k: dict(v) for k, v in sorted(self.attack_config.items())},
            "overrides": {
                "cache_size": self.cache_size,
                "freeze": self.freeze,
            },
        }

    def fingerprint(self) -> str:
        """SHA-256 of the canonical spec; pins checkpoint identity."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------

    def expand(self) -> List[CellSpec]:
        """The matrix cross-product in deterministic (listed) order.

        Cell ids are guaranteed unique (axis entries are unique and the
        id embeds every coordinate), and each cell's seeds depend only
        on ``(campaign.seed, cell_id)`` -- see :func:`cell_seeds`.
        """
        cells: List[CellSpec] = []
        for dataset, model, attack, budget in itertools.product(
            self.datasets, self.models, self.attacks, self.budgets
        ):
            identity = cell_id(dataset, model, attack, budget)
            base_seed, data_seed = cell_seeds(self.seed, identity)
            cells.append(
                CellSpec(
                    campaign_id=self.campaign_id,
                    dataset=dataset,
                    model=model,
                    attack=attack,
                    budget=budget,
                    images=self.images,
                    base_seed=base_seed,
                    data_seed=data_seed,
                    model_config=dict(self.model_config.get(model, {})),
                    attack_config=dict(self.attack_config.get(attack, {})),
                    cache_size=self.cache_size,
                    freeze=self.freeze,
                )
            )
        return cells
