"""Append-only campaign results store: repeated runs form a trendline.

A campaign run is comparable *across time* only if its numbers outlive
the process that produced them.  :class:`ResultsStore` is the durable
side of that: one ``results.jsonl`` file accumulating a record per
``(campaign, cell, git_rev, timestamp)`` completion, plus a rebuilt
``index.json`` mapping ``campaign::cell`` keys to the line numbers of
their entries so lookups never scan the whole history.

Layout under the store directory::

    results.jsonl   # append-only; one JSON object per completed cell run
    index.json      # {"campaign::cell": [line, ...]}, atomically replaced

Records carry the *deterministic* summary (success rate, query counts)
and the wall-clock measurements side by side, so the trendline can plot
either.  The JSONL file is the source of truth; the index is derived
and is rebuilt from scratch if it is missing or stale (e.g. a crash
between the append and the index replace).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.campaign.bench import git_revision

RESULTS_NAME = "results.jsonl"
INDEX_NAME = "index.json"


class StoreError(RuntimeError):
    """The results store is corrupt beyond a torn tail."""


def result_key(campaign_id: str, cell_id: str) -> str:
    return f"{campaign_id}::{cell_id}"


def make_record(
    campaign_id: str,
    cell_id: str,
    summary: Dict,
    git_rev: Optional[str] = None,
    timestamp: Optional[float] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """One trendline entry; ``summary`` is an ``AttackRunSummary.to_dict``."""
    record = {
        "campaign": campaign_id,
        "cell": cell_id,
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "timestamp": timestamp if timestamp is not None else time.time(),
        "summary": dict(summary),
    }
    if extra:
        record.update(extra)
    return record


class ResultsStore:
    """Durable, indexed history of campaign cell results."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, RESULTS_NAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.directory, INDEX_NAME)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Durably append one record; returns its 0-based line number.

        The JSONL append lands (flushed + fsync'd) before the index is
        replaced, so a crash in between leaves a *stale* index over a
        complete log -- which :meth:`index` detects and rebuilds --
        never a dangling index entry over a missing record.
        """
        for field in ("campaign", "cell", "git_rev", "timestamp"):
            if field not in record:
                raise StoreError(f"record is missing required field {field!r}")
        line_number = self._line_count()
        with open(self.results_path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        index = self._load_index_file() or {}
        key = result_key(record["campaign"], record["cell"])
        index.setdefault(key, []).append(line_number)
        self._replace_index(index)
        return line_number

    def _line_count(self) -> int:
        try:
            with open(self.results_path, "rb") as handle:
                return handle.read().count(b"\n")
        except FileNotFoundError:
            return 0

    def _replace_index(self, index: Dict) -> None:
        temp_path = self.index_path + ".tmp"
        with open(temp_path, "w") as handle:
            json.dump(index, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.index_path)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def records(self) -> List[Dict]:
        """Every complete record, in append order.

        The final line is allowed to be torn (crash mid-append) and is
        skipped; corruption elsewhere raises :class:`StoreError`.
        """
        try:
            with open(self.results_path) as handle:
                lines = [line.strip() for line in handle if line.strip()]
        except FileNotFoundError:
            return []
        records = []
        for position, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if position == len(lines) - 1:
                    break
                raise StoreError(
                    f"corrupt record at {self.results_path}:{position + 1}: {exc}"
                ) from exc
        return records

    def _load_index_file(self) -> Optional[Dict]:
        try:
            with open(self.index_path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return None  # derived data: rebuild rather than fail

    def index(self) -> Dict[str, List[int]]:
        """The ``campaign::cell -> [line, ...]`` map, rebuilt if stale.

        Staleness check: the index must reference exactly the lines the
        log holds for each key.  A missing, corrupt, or stale index is
        reconstructed from ``results.jsonl`` (the source of truth) and
        re-persisted.
        """
        records = self.records()
        fresh: Dict[str, List[int]] = {}
        for line_number, record in enumerate(records):
            key = result_key(record["campaign"], record["cell"])
            fresh.setdefault(key, []).append(line_number)
        existing = self._load_index_file()
        if existing != fresh:
            self._replace_index(fresh)
        return fresh

    def query(
        self,
        campaign_id: Optional[str] = None,
        cell_id: Optional[str] = None,
    ) -> List[Dict]:
        """Records filtered by campaign and/or cell, in append order."""
        selected = []
        for record in self.records():
            if campaign_id is not None and record.get("campaign") != campaign_id:
                continue
            if cell_id is not None and record.get("cell") != cell_id:
                continue
            selected.append(record)
        return selected

    def campaigns(self) -> List[str]:
        """Distinct campaign ids present in the store, sorted."""
        return sorted({record["campaign"] for record in self.records()})

    def trendline(
        self, campaign_id: str, cell_id: str, metric: str
    ) -> List[Tuple[float, str, Optional[float]]]:
        """``(timestamp, git_rev, value)`` per run, oldest first.

        ``metric`` names a key inside each record's ``summary`` dict
        (e.g. ``success_rate``, ``median_queries``, ``attack_seconds``);
        runs whose summary lacks the key contribute ``None`` so gaps in
        the trend stay visible instead of silently vanishing.
        """
        points = [
            (
                float(record["timestamp"]),
                str(record["git_rev"]),
                record.get("summary", {}).get(metric),
            )
            for record in self.query(campaign_id, cell_id)
        ]
        return sorted(points, key=lambda point: point[0])
