"""Config-driven experiment matrices with durable, comparable results.

The paper's evaluation sweeps {models x attacks x datasets x budgets};
this package makes that cross-product a first-class, declarative object
instead of a folder of ad-hoc scripts:

- :mod:`repro.campaign.spec` -- the TOML/JSON campaign spec, validated,
  with deterministic cell expansion (stable ids, seed-sequence seeds);
- :mod:`repro.campaign.runner` -- executes cells over
  :func:`~repro.eval.runner.attack_dataset` + checkpoint stores,
  kill-and-resume safe at both cell and per-image granularity;
- :mod:`repro.campaign.store` -- an append-only results store whose
  entries, keyed by (campaign, cell, git rev, timestamp), form a
  performance trendline across commits;
- :mod:`repro.campaign.report` -- Markdown/CSV reports and
  ``BENCH_campaign_*.json`` trajectory files;
- :mod:`repro.campaign.bench` -- the shared ``repro-bench/1`` schema the
  benchmark suite also emits.

Entry point: ``repro campaign run|report|list`` (see ``repro.cli``).
"""

from repro.campaign.bench import (
    BENCH_SCHEMA,
    BenchSchemaError,
    bench_metric,
    bench_payload,
    git_revision,
    list_bench_files,
    read_bench,
    validate_bench,
    write_bench,
)
from repro.campaign.report import (
    ReportError,
    campaign_bench_metrics,
    campaign_csv,
    campaign_markdown,
    write_campaign_bench,
)
from repro.campaign.runner import (
    CampaignRun,
    CellOutcome,
    build_attack,
    build_cell_inputs,
    campaign_status,
    loaded_spec,
    run_campaign,
)
from repro.campaign.spec import (
    ATTACK_KINDS,
    TOY_MODELS,
    CampaignSpec,
    CellSpec,
    SpecError,
    cell_id,
    cell_seeds,
)
from repro.campaign.store import ResultsStore, StoreError, make_record, result_key

__all__ = [
    "ATTACK_KINDS",
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "CampaignRun",
    "CampaignSpec",
    "CellOutcome",
    "CellSpec",
    "ReportError",
    "ResultsStore",
    "SpecError",
    "StoreError",
    "TOY_MODELS",
    "bench_metric",
    "bench_payload",
    "build_attack",
    "build_cell_inputs",
    "campaign_bench_metrics",
    "campaign_csv",
    "campaign_markdown",
    "campaign_status",
    "cell_id",
    "cell_seeds",
    "git_revision",
    "list_bench_files",
    "loaded_spec",
    "make_record",
    "read_bench",
    "result_key",
    "run_campaign",
    "validate_bench",
    "write_bench",
    "write_campaign_bench",
]
