"""A VGG-16-BN-style architecture at reduced scale.

The defining features of the family are preserved: homogeneous stacks of
3x3 conv + batch-norm + ReLU, doubling channel width across stages, and
max-pool downsampling between stages.  A global average pool replaces the
original fully connected head so one model definition serves both the
32x32 CIFAR-like and 48x48 ImageNet-like inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers.activation import ReLU
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import GlobalAvgPool2d, MaxPool2d
from repro.nn.module import Module


def conv_bn_relu(
    in_channels: int, out_channels: int, rng: np.random.Generator, stride: int = 1
) -> Sequential:
    """The VGG building block: 3x3 conv (no bias) + BN + ReLU."""
    return Sequential(
        Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        ),
        BatchNorm2d(out_channels),
        ReLU(),
    )


class MiniVGG(Module):
    """VGG-16-BN-style network.

    Parameters
    ----------
    num_classes:
        Output dimension.
    stage_channels:
        Channel width of each stage (each stage is ``convs_per_stage``
        conv-BN-ReLU blocks followed by a 2x2 max pool).
    convs_per_stage:
        Blocks per stage (VGG-16 uses 2-3; default 2).
    seed:
        Weight initialization seed.
    """

    def __init__(
        self,
        num_classes: int = 10,
        stage_channels: Sequence[int] = (16, 32, 64),
        convs_per_stage: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        body = Sequential()
        in_channels = 3
        for width in stage_channels:
            for _ in range(convs_per_stage):
                body.append(conv_bn_relu(in_channels, width, rng))
                in_channels = width
            body.append(MaxPool2d(2))
        body.append(GlobalAvgPool2d())
        self.features = body
        self.head = Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.head.backward(grad_output))
