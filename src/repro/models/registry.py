"""Architecture registry mapping paper names to builders.

The names mirror the paper's evaluation: ``vgg16bn``, ``resnet18`` and
``googlenet`` are the CIFAR-10 classifiers; ``densenet121`` and
``resnet50`` are the ImageNet classifiers.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.densenet import MiniDenseNet
from repro.models.googlenet import MiniGoogLeNet
from repro.models.resnet import MiniResNet, MiniResNetBottleneck
from repro.models.vgg import MiniVGG
from repro.nn.module import Module

ARCHITECTURES: Dict[str, Callable[..., Module]] = {
    "vgg16bn": MiniVGG,
    "resnet18": MiniResNet,
    "googlenet": MiniGoogLeNet,
    "densenet121": MiniDenseNet,
    "resnet50": MiniResNetBottleneck,
}

CIFAR_ARCHITECTURES = ("googlenet", "resnet18", "vgg16bn")
IMAGENET_ARCHITECTURES = ("densenet121", "resnet50")


def build_model(name: str, num_classes: int, seed: int = 0) -> Module:
    """Instantiate a registered architecture by name."""
    try:
        builder = ARCHITECTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        ) from None
    return builder(num_classes=num_classes, seed=seed)
