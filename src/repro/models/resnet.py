"""ResNet-style architectures at reduced scale.

:class:`MiniResNet` uses the basic (two 3x3 convs) block of ResNet18;
:class:`MiniResNetBottleneck` uses the 1x1-3x3-1x1 bottleneck block of
ResNet50.  Both keep the family's defining identity-shortcut structure
with a projection shortcut where shape changes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.vgg import conv_bn_relu
from repro.nn.layers.activation import ReLU
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import GlobalAvgPool2d
from repro.nn.module import Module


def _projection(
    in_channels: int, out_channels: int, stride: int, rng: np.random.Generator
) -> Sequential:
    """1x1 strided conv + BN shortcut used when the block changes shape."""
    return Sequential(
        Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
        BatchNorm2d(out_channels),
    )


def basic_block(
    in_channels: int, out_channels: int, stride: int, rng: np.random.Generator
) -> Sequential:
    """ResNet18 basic block: [3x3 conv-BN-ReLU, 3x3 conv-BN] + skip, ReLU."""
    body = Sequential(
        Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        ),
        BatchNorm2d(out_channels),
        ReLU(),
        Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(out_channels),
    )
    shortcut = None
    if stride != 1 or in_channels != out_channels:
        shortcut = _projection(in_channels, out_channels, stride, rng)
    return Sequential(Residual(body, shortcut), ReLU())


def bottleneck_block(
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
    reduction: int = 4,
) -> Sequential:
    """ResNet50 bottleneck block: 1x1 reduce, 3x3, 1x1 expand + skip, ReLU."""
    mid = max(out_channels // reduction, 4)
    body = Sequential(
        Conv2d(in_channels, mid, 1, bias=False, rng=rng),
        BatchNorm2d(mid),
        ReLU(),
        Conv2d(mid, mid, 3, stride=stride, padding=1, bias=False, rng=rng),
        BatchNorm2d(mid),
        ReLU(),
        Conv2d(mid, out_channels, 1, bias=False, rng=rng),
        BatchNorm2d(out_channels),
    )
    shortcut = None
    if stride != 1 or in_channels != out_channels:
        shortcut = _projection(in_channels, out_channels, stride, rng)
    return Sequential(Residual(body, shortcut), ReLU())


class _ResNetBase(Module):
    """Shared stem / stage / head assembly for both block types."""

    def __init__(
        self,
        block_fn,
        num_classes: int,
        stage_channels: Sequence[int],
        blocks_per_stage: int,
        seed: int,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        body = Sequential(conv_bn_relu(3, stage_channels[0], rng))
        in_channels = stage_channels[0]
        for stage, width in enumerate(stage_channels):
            for block in range(blocks_per_stage):
                stride = 2 if (stage > 0 and block == 0) else 1
                body.append(block_fn(in_channels, width, stride, rng))
                in_channels = width
        body.append(GlobalAvgPool2d())
        self.features = body
        self.head = Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.head.backward(grad_output))


class MiniResNet(_ResNetBase):
    """ResNet18-style network with basic blocks."""

    def __init__(
        self,
        num_classes: int = 10,
        stage_channels: Sequence[int] = (16, 32, 64),
        blocks_per_stage: int = 2,
        seed: int = 0,
    ):
        super().__init__(
            basic_block, num_classes, stage_channels, blocks_per_stage, seed
        )


class MiniResNetBottleneck(_ResNetBase):
    """ResNet50-style network with bottleneck blocks."""

    def __init__(
        self,
        num_classes: int = 10,
        stage_channels: Sequence[int] = (16, 32, 64),
        blocks_per_stage: int = 2,
        seed: int = 0,
    ):
        super().__init__(
            bottleneck_block, num_classes, stage_channels, blocks_per_stage, seed
        )
