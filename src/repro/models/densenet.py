"""A DenseNet-style architecture at reduced scale.

Keeps the family's defining dense connectivity: each layer in a dense
block receives the concatenation of all earlier feature maps, and blocks
are separated by 1x1-conv + average-pool transitions.
"""

from __future__ import annotations

import numpy as np

from repro.models.vgg import conv_bn_relu
from repro.nn.layers.activation import ReLU
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import AvgPool2d, GlobalAvgPool2d
from repro.nn.module import Module


class DenseLayer(Module):
    """BN-ReLU-3x3conv producing ``growth`` channels, concatenated to input."""

    def __init__(self, in_channels: int, growth: int, rng: np.random.Generator):
        super().__init__()
        self.body = Sequential(
            BatchNorm2d(in_channels),
            ReLU(),
            Conv2d(in_channels, growth, 3, padding=1, bias=False, rng=rng),
        )
        self._in_channels = in_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        new = self.body(x)
        return np.concatenate([x, new], axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_x = grad_output[:, : self._in_channels]
        grad_new = np.ascontiguousarray(grad_output[:, self._in_channels :])
        return grad_x + self.body.backward(grad_new)


class DenseBlock(Sequential):
    """``num_layers`` dense layers; output width grows by ``growth`` each."""

    def __init__(
        self, in_channels: int, num_layers: int, growth: int, rng: np.random.Generator
    ):
        layers = []
        channels = in_channels
        for _ in range(num_layers):
            layers.append(DenseLayer(channels, growth, rng))
            channels += growth
        super().__init__(*layers)
        self.out_channels = channels


def transition(
    in_channels: int, out_channels: int, rng: np.random.Generator
) -> Sequential:
    """DenseNet transition: BN-ReLU-1x1conv then 2x2 average pool."""
    return Sequential(
        BatchNorm2d(in_channels),
        ReLU(),
        Conv2d(in_channels, out_channels, 1, bias=False, rng=rng),
        AvgPool2d(2),
    )


class MiniDenseNet(Module):
    """DenseNet121-style network: stem, dense blocks with transitions, GAP."""

    def __init__(
        self,
        num_classes: int = 10,
        stem_channels: int = 16,
        block_layers=(3, 3, 3),
        growth: int = 8,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        body = Sequential(conv_bn_relu(3, stem_channels, rng))
        channels = stem_channels
        for index, num_layers in enumerate(block_layers):
            block = DenseBlock(channels, num_layers, growth, rng)
            body.append(block)
            channels = block.out_channels
            if index < len(block_layers) - 1:
                out = max(channels // 2, 8)
                body.append(transition(channels, out, rng))
                channels = out
        body.append(BatchNorm2d(channels))
        body.append(ReLU())
        body.append(GlobalAvgPool2d())
        self.features = body
        self.head = Linear(channels, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.head.backward(grad_output))
