"""A GoogLeNet-style architecture at reduced scale.

Keeps the family's defining inception module: four parallel branches
(1x1; 1x1 -> 3x3; 1x1 -> 5x5; 3x3 max-pool -> 1x1) concatenated along the
channel axis.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.models.vgg import conv_bn_relu
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.activation import ReLU
from repro.nn.layers.pool import GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.shape import Concat
from repro.nn.module import Module


def _conv_bn_relu_k(
    in_channels: int,
    out_channels: int,
    kernel: int,
    rng: np.random.Generator,
) -> Sequential:
    padding = kernel // 2
    return Sequential(
        Conv2d(in_channels, out_channels, kernel, padding=padding, bias=False, rng=rng),
        BatchNorm2d(out_channels),
        ReLU(),
    )


def inception_module(
    in_channels: int,
    branch_channels: Tuple[int, int, int, int],
    rng: np.random.Generator,
) -> Concat:
    """An inception module with per-branch output widths.

    ``branch_channels = (c1, c3, c5, cp)`` are the widths of the 1x1,
    3x3, 5x5 and pool-projection branches; the module outputs their sum.
    """
    c1, c3, c5, cp = branch_channels
    mid3 = max(c3 // 2, 4)
    mid5 = max(c5 // 2, 4)
    branches = [
        _conv_bn_relu_k(in_channels, c1, 1, rng),
        Sequential(
            _conv_bn_relu_k(in_channels, mid3, 1, rng),
            _conv_bn_relu_k(mid3, c3, 3, rng),
        ),
        Sequential(
            _conv_bn_relu_k(in_channels, mid5, 1, rng),
            _conv_bn_relu_k(mid5, c5, 5, rng),
        ),
        Sequential(
            MaxPool2d(3, stride=1, padding=1),
            _conv_bn_relu_k(in_channels, cp, 1, rng),
        ),
    ]
    return Concat(branches)


class MiniGoogLeNet(Module):
    """GoogLeNet-style network: stem, stacked inception modules, GAP head."""

    def __init__(
        self,
        num_classes: int = 10,
        stem_channels: int = 16,
        module_specs: Sequence[Tuple[int, int, int, int]] = (
            (8, 12, 4, 4),
            (12, 16, 8, 8),
            (16, 24, 8, 8),
        ),
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        body = Sequential(conv_bn_relu(3, stem_channels, rng))
        in_channels = stem_channels
        for index, spec in enumerate(module_specs):
            body.append(inception_module(in_channels, spec, rng))
            in_channels = sum(spec)
            if index < len(module_specs) - 1:
                body.append(MaxPool2d(2))
        body.append(GlobalAvgPool2d())
        self.features = body
        self.head = Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.head.backward(grad_output))
