"""Model zoo: train-on-first-use classifiers with on-disk weight caching.

The paper attacks *pretrained* networks.  Offline, we reproduce that by
training each scaled architecture once on the synthetic dataset and
caching the weights (plus accuracy metadata) under a cache directory, so
that every experiment and test after the first run loads instantly and
all runs see byte-identical classifiers.

The cache key encodes every input that affects the trained weights
(dataset, architecture, image size, training-set size, epochs, seed), so
changing any experiment knob retrains rather than silently reusing stale
weights.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.classifier.blackbox import NetworkClassifier
from repro.data.cifar_like import make_cifar_like
from repro.data.dataset import Dataset
from repro.data.imagenet_like import make_imagenet_like
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.nn.serialization import load_state, save_state
from repro.nn.trainer import TrainConfig, Trainer

_DATASET_FACTORIES = {
    "cifar": (make_cifar_like, 10),
    "imagenet": (make_imagenet_like, 11),
}

# Offsets keeping train/test generator streams disjoint.
_TEST_SEED_OFFSET = 100_000


def default_cache_dir() -> str:
    """The weight cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro_oppsla")


@dataclass(frozen=True)
class ZooConfig:
    """Everything that determines a trained classifier's weights.

    The defaults are sized for CPU training in a couple of minutes per
    architecture while leaving the classifiers accurate (>90% on the
    synthetic test sets) and realistically attackable.
    """

    dataset: str = "cifar"
    image_size: int = 16
    train_per_class: int = 200
    test_per_class: int = 100
    epochs: int = 5
    batch_size: int = 64
    lr: float = 2e-3
    label_smoothing: float = 0.0
    ambiguity: float = 1.0
    blend_lo: float = 0.25
    blend_hi: float = 0.55
    seed: int = 0
    cache_dir: str = field(default_factory=default_cache_dir)

    def __post_init__(self):
        if self.dataset not in _DATASET_FACTORIES:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; known: {sorted(_DATASET_FACTORIES)}"
            )

    @property
    def num_classes(self) -> int:
        return _DATASET_FACTORIES[self.dataset][1]

    def cache_key(self, arch: str) -> str:
        return (
            f"{self.dataset}_{arch}_s{self.image_size}"
            f"_n{self.train_per_class}_e{self.epochs}"
            f"_a{self.ambiguity:g}-{self.blend_lo:g}-{self.blend_hi:g}"
            f"_seed{self.seed}"
        )


@dataclass
class TrainedModel:
    """A trained classifier plus its provenance."""

    arch: str
    model: Module
    classifier: NetworkClassifier
    train_accuracy: float
    test_accuracy: float
    config: ZooConfig

    def frozen_classifier(self, dtype=None) -> NetworkClassifier:
        """A fast-path classifier over a private copy of the weights.

        The copy matters: freezing (or casting) the shared :attr:`model`
        in place would silently move :attr:`classifier` -- and every
        experiment holding it -- off the bit-exact eval path.  The
        returned classifier folds batch norms, reuses inference buffers,
        and optionally computes in ``dtype`` (``numpy.float32`` for the
        fastest CPU serving configuration); its scores are
        decision-identical and float-tolerance-close to
        :attr:`classifier`'s.
        """
        return NetworkClassifier(
            copy.deepcopy(self.model), dtype=dtype, freeze=True
        )


class ModelZoo:
    """Builds, trains, caches and serves the paper's classifiers."""

    def __init__(self, config: ZooConfig = None):
        self.config = config or ZooConfig()
        self._models: Dict[str, TrainedModel] = {}
        self._datasets: Dict[str, Dataset] = {}

    # -- datasets ------------------------------------------------------------

    def dataset(self, split: str) -> Dataset:
        """The train or test split (cached in memory, deterministic)."""
        if split not in ("train", "test"):
            raise ValueError("split must be 'train' or 'test'")
        if split not in self._datasets:
            factory, _ = _DATASET_FACTORIES[self.config.dataset]
            if split == "train":
                count = self.config.train_per_class
                seed = self.config.seed
            else:
                count = self.config.test_per_class
                seed = self.config.seed + _TEST_SEED_OFFSET
            self._datasets[split] = factory(
                num_per_class=count,
                size=self.config.image_size,
                seed=seed,
                ambiguity=self.config.ambiguity,
                blend_range=(self.config.blend_lo, self.config.blend_hi),
            )
        return self._datasets[split]

    # -- models ----------------------------------------------------------------

    def get(self, arch: str, force_retrain: bool = False) -> TrainedModel:
        """Return the trained model for ``arch``, training it if needed."""
        if arch in self._models and not force_retrain:
            return self._models[arch]
        model = build_model(
            arch, num_classes=self.config.num_classes, seed=self.config.seed
        )
        key = self.config.cache_key(arch)
        weights_path = os.path.join(self.config.cache_dir, f"{key}.npz")
        meta_path = os.path.join(self.config.cache_dir, f"{key}.json")
        if not force_retrain and os.path.exists(weights_path) and os.path.exists(
            meta_path
        ):
            load_state(model, weights_path)
            with open(meta_path) as handle:
                meta = json.load(handle)
            trained = TrainedModel(
                arch=arch,
                model=model,
                classifier=NetworkClassifier(model),
                train_accuracy=meta["train_accuracy"],
                test_accuracy=meta["test_accuracy"],
                config=self.config,
            )
        else:
            trained = self._train(arch, model)
            save_state(model, weights_path)
            with open(meta_path, "w") as handle:
                json.dump(
                    {
                        "train_accuracy": trained.train_accuracy,
                        "test_accuracy": trained.test_accuracy,
                        "arch": arch,
                        "cache_key": key,
                    },
                    handle,
                    indent=2,
                )
        self._models[arch] = trained
        return trained

    def _train(self, arch: str, model: Module) -> TrainedModel:
        config = self.config
        train_set = self.dataset("train")
        test_set = self.dataset("test")
        trainer = Trainer(
            model,
            TrainConfig(
                epochs=config.epochs,
                batch_size=config.batch_size,
                lr=config.lr,
                label_smoothing=config.label_smoothing,
                seed=config.seed,
            ),
        )
        trainer.fit(train_set.to_nchw(), train_set.labels)
        train_acc = trainer.evaluate(train_set.to_nchw(), train_set.labels)
        test_acc = trainer.evaluate(test_set.to_nchw(), test_set.labels)
        return TrainedModel(
            arch=arch,
            model=model,
            classifier=NetworkClassifier(model),
            train_accuracy=train_acc,
            test_accuracy=test_acc,
            config=config,
        )

    def correctly_classified(
        self, arch: str, split: str = "test", limit: Optional[int] = None,
        label: Optional[int] = None,
    ) -> Dataset:
        """Images of ``split`` that ``arch`` classifies correctly.

        The paper discards misclassified images before attacking; this is
        the helper every experiment uses to do the same.
        """
        trained = self.get(arch)
        dataset = self.dataset(split)
        if label is not None:
            dataset = dataset.of_class(label)
        scores = trained.classifier.batch(dataset.images)
        correct = np.flatnonzero(scores.argmax(axis=1) == dataset.labels)
        if limit is not None:
            correct = correct[:limit]
        return dataset.subset(correct)
