"""Scaled-down versions of the paper's classifier architectures.

The paper attacks pretrained VGG-16-BN, ResNet18 and GoogLeNet on CIFAR-10
and DenseNet121 and ResNet50 on ImageNet.  This package provides the same
architectural *families* at a width/depth budget trainable on CPU with the
numpy framework, plus a model zoo that trains-on-first-use and caches
weights on disk.
"""

from repro.models.densenet import MiniDenseNet
from repro.models.googlenet import MiniGoogLeNet
from repro.models.registry import ARCHITECTURES, build_model
from repro.models.resnet import MiniResNet, MiniResNetBottleneck
from repro.models.vgg import MiniVGG
from repro.models.zoo import ModelZoo, TrainedModel, ZooConfig

__all__ = [
    "MiniVGG",
    "MiniResNet",
    "MiniResNetBottleneck",
    "MiniGoogLeNet",
    "MiniDenseNet",
    "ARCHITECTURES",
    "build_model",
    "ModelZoo",
    "TrainedModel",
    "ZooConfig",
]
