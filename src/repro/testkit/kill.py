"""Kill-and-resume harness: prove checkpointed runs survive SIGKILL.

The other testkit pillars inject faults *inside* a live process; this one
kills the process itself.  A small, fully deterministic toy campaign
(:func:`toy_campaign`) runs as a subprocess (``python -m
repro.testkit.kill``) writing per-image records into a
:class:`~repro.runtime.checkpoint.CheckpointStore`; the parent
(:func:`kill_and_resume_campaign`) watches ``records.jsonl`` grow,
SIGKILLs the child mid-campaign -- no cleanup handlers run, exactly like
an OOM kill -- resumes the campaign, and compares the resumed summary
against an uninterrupted golden run.  Bit-identical is the bar: same
per-image successes, query counts, and aggregate summary.

Both the pytest suite and the CI smoke step drive this module, so the
crash scenario exercised in CI is byte-for-byte the one tested locally.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from typing import Dict, Optional

import numpy as np

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import SmoothLinearClassifier
from repro.eval.runner import AttackRunSummary, attack_dataset
from repro.runtime.checkpoint import RECORDS_NAME


def _delayed(classifier, delay: float):
    """Wrap a classifier with a per-query sleep (child-side throttle)."""
    if delay <= 0:
        return classifier

    def slow(image):
        time.sleep(delay)
        return classifier(image)

    return slow


def toy_campaign(
    checkpoint: Optional[str] = None,
    images: int = 12,
    budget: int = 64,
    seed: int = 0,
    delay: float = 0.0,
) -> AttackRunSummary:
    """A deterministic miniature attack campaign.

    ``images`` random 8x8 images are attacked with the fixed-sketch
    baseline against the toy classifier; every input derives from
    ``seed``, so two runs with the same arguments are bit-identical --
    which is what lets the harness compare a killed-and-resumed run
    against an uninterrupted one.  ``delay`` throttles each query so the
    parent process has time to aim its SIGKILL.
    """
    classifier = SmoothLinearClassifier(
        image_shape=(8, 8, 3), num_classes=4, seed=seed
    )
    rng = np.random.default_rng(seed)
    pairs = []
    while len(pairs) < images:
        image = rng.uniform(0.0, 1.0, size=(8, 8, 3))
        pairs.append((image, int(np.argmax(classifier(image)))))
    return attack_dataset(
        FixedSketchAttack(),
        _delayed(classifier, delay),
        pairs,
        budget=budget,
        checkpoint=checkpoint,
        base_seed=seed,
    )


def summary_fingerprint(summary: AttackRunSummary) -> Dict:
    """Everything two campaign runs must agree on, JSON-safe.

    Aggregates plus the full per-image ``(success, queries, error)``
    sequence -- a resumed run that merely matches the averages but
    shuffled per-image outcomes still fails the comparison.
    """
    return {
        "summary": summary.to_dict(),
        "per_image": [
            [result.success, result.queries, result.error]
            for result in summary.results
        ],
    }


def _record_count(records_path: str) -> int:
    """Complete records currently on disk (a torn tail does not count)."""
    try:
        with open(records_path, "rb") as handle:
            return handle.read().count(b"\n")
    except FileNotFoundError:
        return 0


def kill_and_resume_campaign(
    checkpoint_dir: str,
    kill_after: int = 3,
    images: int = 12,
    budget: int = 64,
    seed: int = 0,
    delay: float = 0.05,
    timeout: float = 60.0,
) -> Dict:
    """SIGKILL a checkpointed campaign mid-run, resume it, compare.

    Spawns :func:`toy_campaign` as a subprocess writing into
    ``checkpoint_dir``, SIGKILLs it once ``kill_after`` records are
    durable, resumes the campaign in-process, and returns::

        {
            "golden": <fingerprint of an uninterrupted run>,
            "resumed": <fingerprint of the killed-then-resumed run>,
            "records_at_kill": <completed units when the kill landed>,
            "identical": <golden == resumed>,
        }

    The child inherits the environment plus a ``PYTHONPATH`` entry for
    this source tree, so the helper works from a plain checkout.
    """
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    args = [
        sys.executable,
        "-m",
        "repro.testkit.kill",
        "--checkpoint",
        checkpoint_dir,
        "--images",
        str(images),
        "--budget",
        str(budget),
        "--seed",
        str(seed),
        "--delay",
        str(delay),
    ]
    records_path = os.path.join(checkpoint_dir, RECORDS_NAME)
    child = subprocess.Popen(
        args, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    deadline = time.monotonic() + timeout
    try:
        while (
            _record_count(records_path) < kill_after
            and child.poll() is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        records_at_kill = _record_count(records_path)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
    finally:
        child.wait(timeout=timeout)

    resumed = summary_fingerprint(
        toy_campaign(
            checkpoint=checkpoint_dir, images=images, budget=budget, seed=seed
        )
    )
    golden = summary_fingerprint(
        toy_campaign(checkpoint=None, images=images, budget=budget, seed=seed)
    )
    return {
        "golden": golden,
        "resumed": resumed,
        "records_at_kill": records_at_kill,
        "identical": golden == resumed,
    }


def main(argv=None) -> int:
    """Child entry point: run the toy campaign, print its fingerprint."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit.kill",
        description="deterministic toy campaign for kill-and-resume tests",
    )
    parser.add_argument("--checkpoint", default=None, metavar="DIR")
    parser.add_argument("--images", type=int, default=12)
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="seconds to sleep per classifier query (lets a parent aim "
        "its SIGKILL between durable records)",
    )
    args = parser.parse_args(argv)
    summary = toy_campaign(
        checkpoint=args.checkpoint,
        images=args.images,
        budget=args.budget,
        seed=args.seed,
        delay=args.delay,
    )
    json.dump(summary_fingerprint(summary), sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
