"""Kill-and-resume harness: prove checkpointed runs survive SIGKILL.

The other testkit pillars inject faults *inside* a live process; this one
kills the process itself.  A small, fully deterministic toy campaign
(:func:`toy_campaign`) runs as a subprocess (``python -m
repro.testkit.kill``) writing per-image records into a
:class:`~repro.runtime.checkpoint.CheckpointStore`; the parent
(:func:`kill_and_resume_campaign`) watches ``records.jsonl`` grow,
SIGKILLs the child mid-campaign -- no cleanup handlers run, exactly like
an OOM kill -- resumes the campaign, and compares the resumed summary
against an uninterrupted golden run.  Bit-identical is the bar: same
per-image successes, query counts, and aggregate summary.

Both the pytest suite and the CI smoke step drive this module, so the
crash scenario exercised in CI is byte-for-byte the one tested locally.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from typing import Dict, Optional

import numpy as np

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.classifier.toy import SmoothLinearClassifier
from repro.eval.runner import AttackRunSummary, attack_dataset
from repro.runtime.checkpoint import RECORDS_NAME


def _delayed(classifier, delay: float):
    """Wrap a classifier with a per-query sleep (child-side throttle)."""
    if delay <= 0:
        return classifier

    def slow(image):
        time.sleep(delay)
        return classifier(image)

    return slow


def toy_campaign(
    checkpoint: Optional[str] = None,
    images: int = 12,
    budget: int = 64,
    seed: int = 0,
    delay: float = 0.0,
) -> AttackRunSummary:
    """A deterministic miniature attack campaign.

    ``images`` random 8x8 images are attacked with the fixed-sketch
    baseline against the toy classifier; every input derives from
    ``seed``, so two runs with the same arguments are bit-identical --
    which is what lets the harness compare a killed-and-resumed run
    against an uninterrupted one.  ``delay`` throttles each query so the
    parent process has time to aim its SIGKILL.
    """
    classifier = SmoothLinearClassifier(
        image_shape=(8, 8, 3), num_classes=4, seed=seed
    )
    rng = np.random.default_rng(seed)
    pairs = []
    while len(pairs) < images:
        image = rng.uniform(0.0, 1.0, size=(8, 8, 3))
        pairs.append((image, int(np.argmax(classifier(image)))))
    return attack_dataset(
        FixedSketchAttack(),
        _delayed(classifier, delay),
        pairs,
        budget=budget,
        checkpoint=checkpoint,
        base_seed=seed,
    )


def summary_fingerprint(summary: AttackRunSummary) -> Dict:
    """Everything two campaign runs must agree on, JSON-safe.

    Aggregates plus the full per-image ``(success, queries, error)``
    sequence -- a resumed run that merely matches the averages but
    shuffled per-image outcomes still fails the comparison.  Wall-clock
    timing is excluded (``include_timing=False``): it is a measurement,
    not a function of the results, so two bit-identical runs never agree
    on it.
    """
    return {
        "summary": summary.to_dict(include_timing=False),
        "per_image": [
            [result.success, result.queries, result.error]
            for result in summary.results
        ],
    }


def _record_count(records_path: str) -> int:
    """Complete records currently on disk (a torn tail does not count)."""
    try:
        with open(records_path, "rb") as handle:
            return handle.read().count(b"\n")
    except FileNotFoundError:
        return 0


def kill_and_resume_campaign(
    checkpoint_dir: str,
    kill_after: int = 3,
    images: int = 12,
    budget: int = 64,
    seed: int = 0,
    delay: float = 0.05,
    timeout: float = 60.0,
) -> Dict:
    """SIGKILL a checkpointed campaign mid-run, resume it, compare.

    Spawns :func:`toy_campaign` as a subprocess writing into
    ``checkpoint_dir``, SIGKILLs it once ``kill_after`` records are
    durable, resumes the campaign in-process, and returns::

        {
            "golden": <fingerprint of an uninterrupted run>,
            "resumed": <fingerprint of the killed-then-resumed run>,
            "records_at_kill": <completed units when the kill landed>,
            "identical": <golden == resumed>,
        }

    The child inherits the environment plus a ``PYTHONPATH`` entry for
    this source tree, so the helper works from a plain checkout.
    """
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    args = [
        sys.executable,
        "-m",
        "repro.testkit.kill",
        "--checkpoint",
        checkpoint_dir,
        "--images",
        str(images),
        "--budget",
        str(budget),
        "--seed",
        str(seed),
        "--delay",
        str(delay),
    ]
    records_path = os.path.join(checkpoint_dir, RECORDS_NAME)
    child = subprocess.Popen(
        args, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    deadline = time.monotonic() + timeout
    try:
        while (
            _record_count(records_path) < kill_after
            and child.poll() is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        records_at_kill = _record_count(records_path)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
    finally:
        child.wait(timeout=timeout)

    resumed = summary_fingerprint(
        toy_campaign(
            checkpoint=checkpoint_dir, images=images, budget=budget, seed=seed
        )
    )
    golden = summary_fingerprint(
        toy_campaign(checkpoint=None, images=images, budget=budget, seed=seed)
    )
    return {
        "golden": golden,
        "resumed": resumed,
        "records_at_kill": records_at_kill,
        "identical": golden == resumed,
    }


# ----------------------------------------------------------------------
# matrix-level kill-and-resume (campaign subsystem)
# ----------------------------------------------------------------------


def toy_matrix_spec(
    images: int = 4,
    budget: int = 64,
    seed: int = 7,
    latency: float = 0.0,
    campaign_id: str = "toy-2x2",
) -> Dict:
    """A 2x2 toy campaign spec payload (models x attacks), JSON-safe.

    ``latency`` is seconds per classifier query; the matrix harness uses
    it to slow the child down enough to aim a SIGKILL between durable
    records.  It never affects scores, so a throttled and an unthrottled
    run produce identical deterministic reports.
    """
    model = {"height": 6, "width": 6, "classes": 3}
    if latency > 0:
        model = {**model, "latency": latency}
    return {
        "campaign": {
            "id": campaign_id,
            "seed": seed,
            "images": images,
            "budget": budget,
        },
        "matrix": {
            "models": ["toy-smooth", "toy-linear"],
            "attacks": ["fixed", "random"],
            "datasets": ["toy"],
        },
        "model": {"toy-smooth": model, "toy-linear": model},
    }


def _matrix_record_count(root: str) -> int:
    """Durable records across the campaign root and every cell store."""
    import glob

    total = _record_count(os.path.join(root, RECORDS_NAME))
    pattern = os.path.join(root, "cells", "*", RECORDS_NAME)
    for records_path in glob.glob(pattern):
        total += _record_count(records_path)
    return total


def matrix_fingerprint(root: str) -> Dict:
    """Everything two campaign-matrix runs must agree on, JSON-safe.

    The deterministic Markdown report (``include_timing=False``) plus
    each cell's full per-image outcome sequence.  Timing, git revisions
    and timestamps are measurements of one execution and are excluded.
    """
    from repro.campaign.report import campaign_markdown
    from repro.runtime.checkpoint import CheckpointStore, load_matrix

    _, cells, _ = load_matrix(CheckpointStore(root))
    return {
        "report": campaign_markdown(root, include_timing=False),
        "cells": {
            cell_id: {
                "summary": record["summary"],
                "per_image": record["per_image"],
            }
            for cell_id, record in cells.items()
        },
    }


def kill_and_resume_matrix(
    workdir: str,
    kill_after: int = 6,
    images: int = 4,
    budget: int = 64,
    seed: int = 7,
    latency: float = 0.01,
    timeout: float = 120.0,
) -> Dict:
    """SIGKILL a ``repro campaign run`` mid-matrix, resume it, compare.

    Drives the real CLI as the child (``python -m repro.cli campaign
    run``) against a 2x2 toy matrix under ``<workdir>/campaign``,
    SIGKILLs it once ``kill_after`` durable records exist across the
    root and cell stores, resumes the campaign in-process, renders the
    deterministic report, and compares it against an uninterrupted
    golden run under ``<workdir>/golden``.  Returns::

        {
            "golden": <matrix fingerprint of the uninterrupted run>,
            "resumed": <matrix fingerprint of the killed-then-resumed run>,
            "records_at_kill": <durable records when the kill landed>,
            "identical": <golden == resumed>,
        }
    """
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import CampaignSpec

    import repro

    os.makedirs(workdir, exist_ok=True)
    payload = toy_matrix_spec(
        images=images, budget=budget, seed=seed, latency=latency
    )
    spec_path = os.path.join(workdir, "spec.json")
    with open(spec_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    root = os.path.join(workdir, "campaign")
    golden_root = os.path.join(workdir, "golden")
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "run",
            "--spec",
            spec_path,
            "--root",
            root,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout
    try:
        while (
            _matrix_record_count(root) < kill_after
            and child.poll() is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        records_at_kill = _matrix_record_count(root)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
    finally:
        child.wait(timeout=timeout)

    # Resume (and golden-run) under the *same* spec the child used: the
    # matrix manifest pins the spec fingerprint, and the latency knob
    # only adds sleep -- scores, and therefore the deterministic report,
    # are unaffected.
    spec = CampaignSpec.from_dict(payload)
    run_campaign(spec, root)
    run_campaign(spec, golden_root)
    golden = matrix_fingerprint(golden_root)
    resumed = matrix_fingerprint(root)
    return {
        "golden": golden,
        "resumed": resumed,
        "records_at_kill": records_at_kill,
        "identical": golden == resumed,
    }


# ----------------------------------------------------------------------
# cluster-level worker kill and rebalance (cluster subsystem)
# ----------------------------------------------------------------------


#: Image seeds whose ``default_rng(seed)`` 6x6 image the fixed-sketch
#: attack never cracks against the seed-1 three-class toy model: every
#: one exhausts the full 288-query pair space.  Distinct hard images
#: matter when many sessions must do *independent* work -- the broker
#: coalesces identical in-flight queries, so sessions attacking the
#: same image would share model passes and fake any scaling number.
HARD_IMAGE_SEEDS = (
    1, 8, 20, 26, 28, 31, 43, 48, 54, 55, 57, 62, 69, 72, 85, 96,
)


def hard_cluster_spec(image_seed: int = 1) -> Dict:
    """A HARD_SEED attack submission, as a wire-format spec.

    Every ``image_seed`` from :data:`HARD_IMAGE_SEEDS` yields a session
    that deterministically runs exactly 288 queries: long-lived enough
    to kill a worker under, with a single golden final query count to
    differential-check against.
    """
    image = np.random.default_rng(image_seed).random((6, 6, 3))
    classifier = SmoothLinearClassifier(
        image_shape=(6, 6, 3), num_classes=3, seed=1
    )
    return {
        "attack": "fixed",
        "image": image.tolist(),
        "true_class": int(np.argmax(classifier(image))),
        "budget": 100000,
    }


def _cluster_submit(address, spec: Dict) -> Dict:
    from repro.cluster.workers import http_json

    status, payload = http_json(
        address, "POST", "/attacks", body=json.dumps(spec).encode("utf-8")
    )
    if status != 202:
        raise RuntimeError(f"cluster refused the submission: {status} {payload}")
    return payload


def _cluster_poll(address, session_id: str) -> Optional[Dict]:
    """One poll; ``None`` during rebalance windows (503) or hiccups."""
    from repro.cluster.workers import http_json

    try:
        status, payload = http_json(address, "GET", f"/attacks/{session_id}")
    except OSError:
        return None
    return payload if status == 200 else None


def _wait_session(address, session_id: str, predicate, timeout: float) -> Dict:
    deadline = time.monotonic() + timeout
    payload = None
    while time.monotonic() < deadline:
        payload = _cluster_poll(address, session_id)
        if payload is not None and predicate(payload):
            return payload
        time.sleep(0.05)
    raise TimeoutError(
        f"session {session_id} did not reach the awaited state in "
        f"{timeout}s; last payload: {payload}"
    )


def kill_worker_and_rebalance(
    workers: int = 2,
    latency: float = 0.02,
    progress_queries: int = 5,
    timeout: float = 120.0,
) -> Dict:
    """SIGKILL the worker owning a live session; prove nothing is lost.

    Runs the deterministic HARD_SEED session twice through real cluster
    tiers: once uninterrupted (the golden run), and once on a
    ``workers``-replica tier where the owning worker is SIGKILLed after
    the session has answered at least ``progress_queries`` queries.  The
    router must detect the death, rebalance the session onto a survivor,
    and finish it with *exactly* the golden final query count -- the
    paper-faithful accounting invariant.  Both tiers exit through the
    SIGTERM drain path.  Returns::

        {
            "golden_queries": <uninterrupted final count>,
            "rebalanced_queries": <killed-and-rebalanced final count>,
            "identical": <the two counts match>,
            "submitted_on": <worker that first owned the session>,
            "finished_on": <worker that completed it>,
            "deaths": <worker deaths the router recorded>,
            "rebalanced_sessions": <sessions the router re-placed>,
        }
    """
    from repro.cluster.config import ClusterConfig
    from repro.cluster.router import ClusterHandle

    spec = hard_cluster_spec()
    base = dict(
        port=0, height=6, width=6, num_classes=3, seed=1,
        heartbeat=0.2, backoff=0.2,
    )

    with ClusterHandle(ClusterConfig(workers=1, **base)) as tier:
        accepted = _cluster_submit(tier.address, spec)
        final = _wait_session(
            tier.address, accepted["id"],
            lambda p: p["state"] in ("done", "failed"), timeout,
        )
        golden = final["result"]["queries"]

    with ClusterHandle(
        ClusterConfig(workers=workers, latency=latency, **base)
    ) as tier:
        accepted = _cluster_submit(tier.address, spec)
        owner = accepted["worker"]
        _wait_session(
            tier.address, accepted["id"],
            lambda p: p.get("queries", 0) >= progress_queries, timeout,
        )
        tier.router.worker_named(owner).kill()
        final = _wait_session(
            tier.address, accepted["id"],
            lambda p: p["state"] in ("done", "failed"), timeout,
        )
        rebalanced = final["result"]["queries"]
        finisher = final["worker"]
        deaths = tier.router.deaths
        moved = tier.router.rebalanced_sessions

    return {
        "golden_queries": golden,
        "rebalanced_queries": rebalanced,
        "identical": golden == rebalanced,
        "submitted_on": owner,
        "finished_on": finisher,
        "deaths": deaths,
        "rebalanced_sessions": moved,
    }


def cancel_and_kill_cluster(
    workers: int = 2,
    latency: float = 0.02,
    progress_queries: int = 5,
    timeout: float = 120.0,
    workdir: Optional[str] = None,
) -> Dict:
    """Cancel one session, SIGKILL another's owner; the ledger must close.

    The cluster half of the lifecycle fidelity story
    (:mod:`repro.testkit.lifecycle` proves the in-process half).  Two
    deterministic HARD_SEED sessions (288 golden queries each) run on a
    checkpointed ``workers``-replica tier:

    - session A is cancelled mid-attack with ``DELETE /attacks/<id>``
      once it has charged at least ``progress_queries`` queries; the
      router must forward the DELETE to the sticky owner and A must
      settle as ``cancelled`` reporting exactly the count a budget-``k``
      local run reports (query-count fidelity across the wire);
    - session B's owning worker is then SIGKILLed; the router must
      rebalance B onto a survivor and finish it with the golden 288.

    After the tier drains, the ledger must hold **no open records** --
    cancellation closes A, completion closes B -- and a second tier
    resuming from the same checkpoint must restore zero sessions
    (``--resume`` re-runs neither).  Returns a verdict dict whose
    ``ok`` key ands every invariant.
    """
    import tempfile

    from repro.cluster.config import ClusterConfig
    from repro.cluster.router import ClusterHandle, open_sessions_from_records
    from repro.cluster.workers import http_json
    from repro.runtime.checkpoint import CheckpointStore
    from repro.testkit.lifecycle import toy_lifecycle_runner

    workdir = workdir or tempfile.mkdtemp(prefix="repro-lifecycle-")
    checkpoint = os.path.join(workdir, "ledger")
    base = dict(
        port=0, height=6, width=6, num_classes=3, seed=1,
        heartbeat=0.2, backoff=0.2,
    )
    victim_seed, survivor_seed = HARD_IMAGE_SEEDS[0], HARD_IMAGE_SEEDS[1]

    with ClusterHandle(
        ClusterConfig(
            workers=workers, latency=latency, checkpoint=checkpoint, **base
        )
    ) as tier:
        victim = _cluster_submit(tier.address, hard_cluster_spec(victim_seed))
        survivor = _cluster_submit(
            tier.address, hard_cluster_spec(survivor_seed)
        )
        _wait_session(
            tier.address, victim["id"],
            lambda p: p.get("queries", 0) >= progress_queries, timeout,
        )
        cancel_status, _ = http_json(
            tier.address, "DELETE", f"/attacks/{victim['id']}"
        )
        cancelled = _wait_session(
            tier.address, victim["id"],
            lambda p: p["state"] == "cancelled", timeout,
        )
        cancelled_k = (cancelled.get("result") or {}).get("queries")
        owner = survivor["worker"]
        tier.router.worker_named(owner).kill()
        final = _wait_session(
            tier.address, survivor["id"],
            lambda p: p["state"] in ("done", "failed"), timeout,
        )
        survivor_queries = final["result"]["queries"]
        finisher = final["worker"]
        cancelled_counter = tier.router.cancelled_sessions

    records, _ = CheckpointStore(checkpoint).records()
    still_open = open_sessions_from_records(records)

    with ClusterHandle(
        ClusterConfig(workers=1, checkpoint=checkpoint, resume=True, **base)
    ) as resumed_tier:
        _, listing = resumed_tier.router.list_sessions()
        resumed_sessions = len(listing.get("sessions", []))

    # local budget-k differential: a scalar run of the same attack on the
    # same image under budget=k must report exactly the cancelled count
    exact = False
    if isinstance(cancelled_k, int) and cancelled_k > 0:
        golden = toy_lifecycle_runner().run_golden(victim_seed, cancelled_k)
        exact = (
            golden.result is not None
            and golden.result.queries == cancelled_k
            and not golden.result.success
        )

    return {
        "cancel_status": cancel_status,
        "cancelled_queries": cancelled_k,
        "cancelled_exact": exact,
        "cancelled_counter": cancelled_counter,
        "survivor_queries": survivor_queries,
        "survivor_golden": 288,
        "submitted_on": owner,
        "finished_on": finisher,
        "open_after_drain": sorted(still_open),
        "resumed_sessions": resumed_sessions,
        "ok": (
            cancel_status in (200, 202)
            and exact
            and cancelled_counter >= 1
            and survivor_queries == 288
            and not still_open
            and resumed_sessions == 0
        ),
    }


def main(argv=None) -> int:
    """Child entry point: run the toy campaign, print its fingerprint.

    With ``--cluster-workers N`` the module instead drives the cluster
    worker-kill harness (:func:`kill_worker_and_rebalance`), prints its
    verdict as JSON, and exits non-zero unless the rebalanced session
    matched the golden query count -- which is what the CI cluster smoke
    step asserts.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit.kill",
        description="deterministic toy campaign for kill-and-resume tests",
    )
    parser.add_argument("--checkpoint", default=None, metavar="DIR")
    parser.add_argument("--images", type=int, default=12)
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="seconds to sleep per classifier query (lets a parent aim "
        "its SIGKILL between durable records)",
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=0,
        metavar="N",
        help="run the cluster worker-kill harness against an N-worker "
        "tier instead of the toy campaign",
    )
    parser.add_argument(
        "--lifecycle",
        action="store_true",
        help="with --cluster-workers: run the cancel+kill lifecycle "
        "harness (DELETE one session mid-attack, SIGKILL the other's "
        "owner, assert the ledger closes and --resume re-runs neither)",
    )
    args = parser.parse_args(argv)
    if args.cluster_workers and args.lifecycle:
        verdict = cancel_and_kill_cluster(workers=args.cluster_workers)
        json.dump(verdict, sys.stdout, indent=2)
        print()
        return 0 if verdict["ok"] else 1
    if args.cluster_workers:
        verdict = kill_worker_and_rebalance(workers=args.cluster_workers)
        json.dump(verdict, sys.stdout, indent=2)
        print()
        return 0 if verdict["identical"] else 1
    summary = toy_campaign(
        checkpoint=args.checkpoint,
        images=args.images,
        budget=args.budget,
        seed=args.seed,
        delay=args.delay,
    )
    json.dump(summary_fingerprint(summary), sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
