"""Differential oracles: prove the execution paths bit-identical.

The repo runs every attack through several supposedly equivalent paths:

- ``direct``  -- the classic ``attack(classifier, ...)`` call;
- ``stepped`` -- the generator protocol driven by
  :func:`~repro.core.stepping.drive_steps`;
- ``threaded`` -- the :func:`~repro.core.stepping.threaded_steps`
  adapter (attack on a helper thread, queries forwarded);
- ``pooled``  -- the :class:`~repro.runtime.pool.WorkerPool` engine via
  :class:`~repro.runtime.tasks.AttackTaskRunner`;
- ``served``  -- an :class:`~repro.serve.sessions.AttackSession` over a
  :class:`~repro.serve.broker.MicroBatchBroker`.

Their equivalence is the foundation the query-count reproduction stands
on (a silent divergence in counting or queue ordering corrupts the
paper's headline metric), so :class:`DifferentialRunner` checks it
*exhaustively*: a sweep over N seeds x paths x {cache on, cache off}
asserting a bit-identical :class:`~repro.attacks.base.AttackResult` in
every cell, and -- because "the final result differs" is a terrible
debugging starting point -- reporting the **first diverging query
event** (via golden traces) whenever a cell disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackResult
from repro.core.stepping import drive_steps, threaded_steps
from repro.runtime.cache import CachedClassifier, QueryCache
from repro.runtime.pool import WorkerPool
from repro.runtime.tasks import AttackTaskRunner
from repro.serve.broker import MicroBatchBroker
from repro.serve.sessions import SessionManager
from repro.testkit.trace import TraceEvent, TraceRecorder, diff_events

#: All execution paths the oracle knows how to drive.
PATH_DIRECT = "direct"
PATH_STEPPED = "stepped"
PATH_THREADED = "threaded"
PATH_POOLED = "pooled"
PATH_SERVED = "served"
DEFAULT_PATHS = (PATH_DIRECT, PATH_STEPPED, PATH_THREADED, PATH_POOLED, PATH_SERVED)

#: Default in-cell query cache size (big enough never to evict in tests,
#: so cached cells exercise hits rather than churn).
DEFAULT_CACHE_SIZE = 1024


def result_fingerprint(result: Optional[AttackResult]) -> Tuple:
    """An exact, hashable identity of an :class:`AttackResult`.

    Arrays are reduced to ``(dtype, shape, bytes)`` so comparison is
    bit-for-bit, not approximate.  ``None`` (a path that produced no
    result, e.g. a failed session) fingerprints distinctly.
    """
    if result is None:
        return ("<no result>",)
    if result.perturbation is None:
        perturbation = None
    else:
        array = np.asarray(result.perturbation)
        perturbation = (str(array.dtype), array.shape, array.tobytes())
    return (
        result.success,
        result.queries,
        None if result.location is None else tuple(result.location),
        perturbation,
        result.adversarial_class,
        result.error,
    )


def results_equal(a: Optional[AttackResult], b: Optional[AttackResult]) -> bool:
    """Bit-identical equality of two attack results."""
    return result_fingerprint(a) == result_fingerprint(b)


@dataclass(frozen=True)
class Cell:
    """One point of the sweep grid."""

    seed: int
    path: str
    cached: bool

    def label(self) -> str:
        cache = "cache" if self.cached else "nocache"
        return f"seed={self.seed} path={self.path} {cache}"


@dataclass
class Divergence:
    """One cell that disagreed with its seed's baseline."""

    cell: Cell
    baseline: Tuple
    observed: Tuple
    first_query: Optional[Dict] = None  # from trace.diff_events, if traceable

    def describe(self) -> str:
        lines = [
            f"divergence at {self.cell.label()}:",
            f"  baseline result: {self.baseline}",
            f"  observed result: {self.observed}",
        ]
        if self.first_query is not None:
            lines.append(f"  first diverging query: {self.first_query}")
        return "\n".join(lines)


@dataclass
class DifferentialReport:
    """Everything a sweep learned."""

    cells_run: int = 0
    seeds: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        if self.ok:
            return (
                f"differential sweep OK: {self.cells_run} cells over "
                f"{self.seeds} seeds, zero divergences"
            )
        body = "\n".join(d.describe() for d in self.divergences)
        return (
            f"differential sweep FAILED: {len(self.divergences)} of "
            f"{self.cells_run} cells diverged\n{body}"
        )


class _TracingClassifier:
    """Forward queries, reporting ``(image, scores)`` to a recorder.

    The classifier-level trace hook for paths that do not expose the
    steppable protocol to the oracle (``direct``, inline ``pooled``):
    every logical query is recorded as counted, which is fine for
    divergence *localization* (digests and scores are compared, counted
    flags are not -- see :func:`~repro.testkit.trace.diff_events`).
    """

    def __init__(self, classifier, recorder: TraceRecorder):
        self._classifier = classifier
        self._recorder = recorder

    def __call__(self, image: np.ndarray) -> np.ndarray:
        scores = self._classifier(image)
        self._recorder(image, scores)
        return scores


class DifferentialRunner:
    """Sweep seeds x execution paths x cache modes and compare results.

    Parameters
    ----------
    attack_factory:
        ``seed -> OnePixelAttack``.  Called once per cell so no attack
        instance state can leak between cells.
    classifier_factory:
        ``seed -> classifier``.  Must return a *deterministic*
        classifier; a fresh instance per cell keeps cells independent.
    case_factory:
        ``seed -> (image, true_class)``.
    seeds:
        The seed sweep; acceptance-grade runs use at least 20.
    budget:
        Query budget applied in every cell.
    paths / cache_modes:
        The grid axes; defaults cover all five paths, cache off and on.
    pool_workers:
        Worker processes for the ``pooled`` path.  The default ``0``
        runs the engine inline (same code path minus process transport)
        which is what CI sweeps use for speed; nightly runs set 2.
    broker_factory:
        ``(classifier, cache) -> MicroBatchBroker`` override for the
        ``served`` path.  Exists so negative tests can substitute a
        deliberately broken broker and prove the oracle catches it.
    """

    def __init__(
        self,
        attack_factory: Callable[[int], object],
        classifier_factory: Callable[[int], Callable],
        case_factory: Callable[[int], Tuple[np.ndarray, int]],
        seeds: Iterable[int],
        budget: Optional[int] = None,
        paths: Sequence[str] = DEFAULT_PATHS,
        cache_modes: Sequence[bool] = (False, True),
        pool_workers: int = 0,
        broker_factory: Optional[Callable] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        unknown = set(paths) - set(DEFAULT_PATHS)
        if unknown:
            raise ValueError(f"unknown execution paths: {sorted(unknown)}")
        self.attack_factory = attack_factory
        self.classifier_factory = classifier_factory
        self.case_factory = case_factory
        self.seeds = list(seeds)
        self.budget = budget
        self.paths = tuple(paths)
        self.cache_modes = tuple(cache_modes)
        self.pool_workers = pool_workers
        self.broker_factory = broker_factory
        self.cache_size = cache_size

    # -- cell execution ----------------------------------------------------

    def run_cell(
        self, cell: Cell
    ) -> Tuple[Optional[AttackResult], List[TraceEvent]]:
        """Execute one grid cell: ``(result, trace_events)``.

        Public so targeted tests can compare single cells *across*
        runners -- e.g. the inference-fast-path acceptance test runs the
        stepped baseline of a frozen-classifier runner against the same
        cell of an unfrozen runner and asserts decision-identity.
        """
        return self._run_cell(cell)

    def _run_cell(
        self, cell: Cell
    ) -> Tuple[Optional[AttackResult], List[TraceEvent]]:
        attack = self.attack_factory(cell.seed)
        classifier = self.classifier_factory(cell.seed)
        image, true_class = self.case_factory(cell.seed)
        recorder = TraceRecorder(clean_image=image)

        if cell.path == PATH_SERVED:
            return self._run_served(cell, attack, classifier, image, true_class)

        if cell.cached and cell.path in (PATH_DIRECT, PATH_STEPPED, PATH_THREADED):
            # inside the attack's counting boundary, like the engine does
            classifier = CachedClassifier(classifier, maxsize=self.cache_size)

        if cell.path == PATH_DIRECT:
            traced = _TracingClassifier(classifier, recorder)
            result = attack.attack(traced, image, true_class, budget=self.budget)
        elif cell.path == PATH_STEPPED:
            result = drive_steps(
                attack.steps(image, true_class, budget=self.budget),
                classifier,
                observer=recorder,
            )
        elif cell.path == PATH_THREADED:
            result = drive_steps(
                threaded_steps(attack, image, true_class, budget=self.budget),
                classifier,
                observer=recorder,
            )
        elif cell.path == PATH_POOLED:
            result = self._run_pooled(
                cell, attack, classifier, image, true_class, recorder
            )
        else:  # pragma: no cover - guarded in __init__
            raise ValueError(f"unknown path {cell.path}")
        return result, recorder.events

    def _run_pooled(self, cell, attack, classifier, image, true_class, recorder):
        if self.pool_workers == 0:
            # inline engine: the tracing wrapper stays in-process
            classifier = _TracingClassifier(classifier, recorder)
        runner = AttackTaskRunner(
            attack,
            classifier,
            budget=self.budget,
            cache_size=self.cache_size if cell.cached else None,
        )
        pool = WorkerPool(workers=self.pool_workers)
        outcomes = pool.map(
            runner, [(image, true_class)], task_name=f"diff:{cell.label()}"
        )
        outcome = outcomes[0]
        if not outcome.ok:
            return None
        return outcome.value.result

    def _run_served(self, cell, attack, classifier, image, true_class):
        cache = QueryCache(self.cache_size) if cell.cached else None
        if self.broker_factory is not None:
            broker = self.broker_factory(classifier, cache)
        else:
            broker = MicroBatchBroker(classifier, cache=cache)
        recorder = TraceRecorder(clean_image=image)
        manager = SessionManager(broker, max_workers=1)
        try:
            session = manager.create(
                attack, image, true_class, budget=self.budget, observer=recorder
            )
            manager.run_cooperative([session])
        finally:
            manager.shutdown()
        return session.result, recorder.events

    # -- the sweep ---------------------------------------------------------

    def run(self) -> DifferentialReport:
        """Execute the full grid; every cell is compared to its seed's
        baseline (the uncached ``stepped`` path, the thinnest driver)."""
        report = DifferentialReport(seeds=len(self.seeds))
        for seed in self.seeds:
            baseline_cell = Cell(seed=seed, path=PATH_STEPPED, cached=False)
            baseline_result, baseline_trace = self._run_cell(baseline_cell)
            report.cells_run += 1
            baseline_print = result_fingerprint(baseline_result)
            for path in self.paths:
                for cached in self.cache_modes:
                    cell = Cell(seed=seed, path=path, cached=cached)
                    if cell == baseline_cell:
                        continue
                    result, trace = self._run_cell(cell)
                    report.cells_run += 1
                    observed = result_fingerprint(result)
                    if observed == baseline_print:
                        continue
                    first = None
                    if trace:
                        first = diff_events(baseline_trace, trace)
                    report.divergences.append(
                        Divergence(
                            cell=cell,
                            baseline=baseline_print,
                            observed=observed,
                            first_query=first,
                        )
                    )
        return report


def _alternating_attack_factory():
    """``seed -> attack``: the sketch attack on even seeds, the seeded
    uniform-random baseline on odd ones, so sweeps cover both a
    score-driven and an RNG-driven query stream."""
    from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
    from repro.attacks.sketch_attack import SketchAttack
    from repro.core.dsl.parser import parse_program

    program = parse_program(
        """
        [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.05
        [B2] max(x[l]) > 0.5
        [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.1
        [B4] center(l) < 2
        """
    )

    def attack_factory(seed: int):
        if seed % 2 == 0:
            return SketchAttack(program)
        return UniformRandomAttack(UniformRandomConfig(seed=seed))

    return attack_factory


def toy_runner(
    seeds: Iterable[int] = range(20),
    budget: int = 40,
    shape: Tuple[int, int, int] = (5, 5, 3),
    num_classes: int = 3,
    **kwargs,
) -> DifferentialRunner:
    """The standard toy-classifier sweep used by CI and the nightly job.

    Alternates the paper's sketch attack (even seeds) with the seeded
    uniform-random baseline (odd seeds), over smooth toy images on a
    fragile linear classifier, so the sweep covers both a deterministic
    and an RNG-driven query stream.  Any keyword argument of
    :class:`DifferentialRunner` can be overridden.
    """
    from repro.classifier.toy import LinearPixelClassifier, make_toy_images

    attack_factory = _alternating_attack_factory()

    def classifier_factory(seed: int):
        return LinearPixelClassifier(
            shape, num_classes=num_classes, seed=7, temperature=0.05
        )

    def case_factory(seed: int):
        image = make_toy_images(1, shape, seed=seed)[0]
        true_class = int(np.argmax(classifier_factory(seed)(image)))
        return image, true_class

    return DifferentialRunner(
        attack_factory,
        classifier_factory,
        case_factory,
        seeds=seeds,
        budget=budget,
        **kwargs,
    )


def tiny_network_classifier(
    image_size: int = 8,
    num_classes: int = 3,
    frozen: bool = False,
    dtype=None,
    seed: int = 7,
):
    """A deterministic conv+BN :class:`NetworkClassifier` for sweeps.

    Builds a minimal Conv-BN-ReLU-pool network, warms the batch-norm
    running statistics with a few fixed training batches (so freeze-time
    folding has non-trivial scale/shift to fold), and switches to eval
    mode.  ``frozen=True`` returns it on the inference fast path --
    batch norms folded into the convolutions, backward caches skipped.
    Every call with the same arguments yields a bit-identical
    classifier, which is what lets differential cells stay independent
    yet comparable.
    """
    from repro.classifier.blackbox import NetworkClassifier
    from repro.nn import (
        BatchNorm2d,
        Conv2d,
        GlobalAvgPool2d,
        Linear,
        MaxPool2d,
        ReLU,
        Sequential,
    )

    rng = np.random.default_rng(seed)
    model = Sequential(
        Conv2d(3, 8, 3, padding=1, rng=rng),
        BatchNorm2d(8),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 8, 3, padding=1, rng=rng),
        BatchNorm2d(8),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(8, num_classes, rng=rng),
    )
    model.train()
    warmup = np.random.default_rng(seed + 1)
    for _ in range(3):
        model(warmup.normal(0.45, 0.25, size=(8, 3, image_size, image_size)))
    model.eval()
    return NetworkClassifier(model, dtype=dtype, freeze=frozen)


def network_runner(
    seeds: Iterable[int] = range(8),
    budget: int = 24,
    image_size: int = 8,
    num_classes: int = 3,
    frozen: bool = False,
    dtype=None,
    **kwargs,
) -> DifferentialRunner:
    """A differential sweep against a real (tiny) convolutional network.

    The toy sweep (:func:`toy_runner`) exercises the execution paths;
    this one additionally exercises the :mod:`repro.nn` forward stack
    behind :class:`~repro.classifier.blackbox.NetworkClassifier` --
    including, with ``frozen=True``, the inference fast path (folded
    batch norms, reused im2col workspaces, skipped backward caches).
    A frozen sweep must still be internally bit-identical across every
    path x cache cell: freezing changes *how* scores are computed, not
    the determinism of a given classifier instance.  Cross-checking a
    frozen sweep against an unfrozen one is decision-level only; see
    the fast-path acceptance tests.
    """
    from repro.classifier.toy import make_toy_images

    attack_factory = _alternating_attack_factory()

    def classifier_factory(seed: int):
        return tiny_network_classifier(
            image_size=image_size,
            num_classes=num_classes,
            frozen=frozen,
            dtype=dtype,
        )

    shape = (image_size, image_size, 3)

    def case_factory(seed: int):
        image = make_toy_images(1, shape, seed=seed)[0]
        true_class = int(np.argmax(classifier_factory(seed)(image)))
        return image, true_class

    return DifferentialRunner(
        attack_factory,
        classifier_factory,
        case_factory,
        seeds=seeds,
        budget=budget,
        **kwargs,
    )
