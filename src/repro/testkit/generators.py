"""Property-based generators (hypothesis strategies) for the testkit.

The differential oracles and DSL round-trip properties need *varied*
inputs, not hand-picked ones: images, budgets, and well-typed DSL
programs drawn from the whole search space.  This module packages them
as `hypothesis <https://hypothesis.readthedocs.io>`_ strategies so the
properties shrink to minimal counterexamples on failure.

Everything is importable without hypothesis installed (the strategies
just raise at *use* time), so ``repro.testkit`` never makes the core
package depend on a test library.

Programs are generated directly from typed components rather than by
seeding :class:`~repro.core.dsl.grammar.Grammar`'s sampler, so
hypothesis can shrink each condition independently; the constants are
drawn from exactly the grammar's typed ranges, keeping every generated
program inside the synthesizer's search space (and therefore accepted
by :func:`~repro.core.dsl.typecheck.check_program`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    Constant,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.geometry import max_center_distance

try:  # hypothesis is a test-only dependency; degrade, don't die
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    st = None
    HAVE_HYPOTHESIS = False

#: Default score_diff threshold range, matching Grammar's default.
SCORE_DIFF_RANGE = 0.5


def _require_hypothesis():
    if not HAVE_HYPOTHESIS:  # pragma: no cover
        raise RuntimeError(
            "repro.testkit.generators needs the 'hypothesis' package "
            "(install the [dev] extra)"
        )


def seeds(max_seed: int = 2**31 - 1):
    """Integer seeds for deriving deterministic inputs."""
    _require_hypothesis()
    return st.integers(min_value=0, max_value=max_seed)


def images(shape: Tuple[int, int, int] = (4, 4, 3)):
    """Float64 images in ``[0, 1)``, derived deterministically from a seed.

    Seed-derived rather than element-wise so a drawn image is compact to
    report and exactly reproducible from its shrunk seed.
    """
    _require_hypothesis()
    return st.builds(
        lambda seed: np.random.default_rng(seed).random(shape), seeds()
    )


def budgets(max_budget: int = 64):
    """Query budgets: ``None`` (uncapped) or a small non-negative int."""
    _require_hypothesis()
    return st.one_of(st.none(), st.integers(min_value=0, max_value=max_budget))


def _finite(low: float, high: float):
    return st.floats(
        min_value=low, max_value=high, allow_nan=False, allow_infinity=False
    )


def conditions(
    image_shape: Tuple[int, int] = (6, 6),
    score_diff_range: float = SCORE_DIFF_RANGE,
    allow_literals: bool = False,
):
    """Well-typed conditions with constants in the function's typed range.

    ``allow_literals=True`` mixes in ``true``/``false`` literal
    conditions (the ablation-baseline extension), for properties that
    must hold over *everything* the AST can represent, not just the
    synthesizable space.
    """
    _require_hypothesis()
    max_center = max_center_distance(image_shape)
    pixel_function = st.builds(
        lambda maker, pixel: maker(pixel),
        st.sampled_from([Max, Min, Avg]),
        st.sampled_from([PixelRef.ORIGINAL, PixelRef.PERTURBATION]),
    )
    typed = st.one_of(
        st.tuples(pixel_function, _finite(0.0, 1.0)),
        st.tuples(st.just(ScoreDiff()), _finite(-score_diff_range, score_diff_range)),
        st.tuples(st.just(Center()), _finite(0.0, float(max_center))),
    )
    strategy = st.builds(
        lambda comparison, pair: Condition(comparison, pair[0], Constant(pair[1])),
        st.sampled_from([Comparison.GT, Comparison.LT]),
        typed,
    )
    if allow_literals:
        strategy = st.one_of(strategy, st.builds(ConstantCondition, st.booleans()))
    return strategy


def programs(
    image_shape: Tuple[int, int] = (6, 6),
    score_diff_range: float = SCORE_DIFF_RANGE,
    allow_literals: bool = False,
):
    """Full four-condition programs from the typed search space."""
    _require_hypothesis()
    condition = conditions(image_shape, score_diff_range, allow_literals)
    return st.builds(Program, condition, condition, condition, condition)


def attack_cases(
    shape: Tuple[int, int, int] = (4, 4, 3),
    num_classes: int = 3,
    classifier_factory=None,
):
    """``(image, true_class)`` pairs; the label is the classifier's own
    argmax when a factory is given (the paper's setting: attacks start
    from correctly-classified images), else drawn uniformly."""
    _require_hypothesis()
    if classifier_factory is None:
        return st.tuples(
            images(shape), st.integers(min_value=0, max_value=num_classes - 1)
        )

    def build(seed: int):
        image = np.random.default_rng(seed).random(shape)
        classifier = classifier_factory()
        return image, int(np.argmax(classifier(image)))

    return st.builds(build, seeds())
