"""Differential batch-equivalence oracle: batched stepping == scalar.

Batch-native stepping (DESIGN §14) lets attacks speculate several
queries per vectorized forward pass while keeping the paper-faithful
query accounting: answers are *consumed* in scalar order and each
consumption is charged against the budget exactly as a scalar
``submit`` would be.  That equivalence is a bit-for-bit claim --
identical :class:`~repro.attacks.base.AttackResult`, identical query
counts, identical consumption-order trace -- and this module checks it
the same way :mod:`repro.testkit.differential` checks path equivalence:
exhaustively, over a seed grid, with first-diverging-query localization
when a cell disagrees.

The grid is ``seeds x modes x {scalar, batched}`` where a *mode* is an
execution environment the batched protocol must round-trip through:

- ``direct``  -- :func:`~repro.core.stepping.drive_steps` on the bare
  classifier (``batch_scores`` fallback for scalar-only classifiers);
- ``broker``  -- an :class:`~repro.serve.sessions.AttackSession` over a
  :class:`~repro.serve.broker.MicroBatchBroker` (``submit_many`` path,
  consumption-time session accounting);
- ``frozen``  -- the inference fast path: a frozen
  :class:`~repro.classifier.blackbox.NetworkClassifier` whose native
  batch method answers the whole speculative batch in one forward;
- ``cached``  -- :class:`~repro.runtime.cache.CachedClassifier`
  (batched misses assembled through ``CachedClassifier.batch``; cache
  hits inside a batch still charged).

Within each ``(seed, mode)`` pair the scalar run is the baseline and
the batched run must match it exactly -- including the per-query
``counted`` flags, because charging a probe that the scalar path treats
as free (or vice versa) corrupts the headline metric even when the
final result happens to agree.

:class:`ReorderingBroker` is the suite's negative control: a broker
that silently reverses every multi-query batch it evaluates.  A sweep
over it MUST report divergences -- if it does not, the oracle itself is
broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackResult
from repro.core.stepping import drive_steps
from repro.runtime.cache import CachedClassifier, QueryCache
from repro.serve.broker import MicroBatchBroker
from repro.serve.sessions import SessionManager
from repro.testkit.differential import (
    DEFAULT_CACHE_SIZE,
    result_fingerprint,
    tiny_network_classifier,
)
from repro.testkit.trace import TraceEvent, TraceRecorder, diff_events

#: All execution modes the oracle sweeps the batched protocol through.
MODE_DIRECT = "direct"
MODE_BROKER = "broker"
MODE_FROZEN = "frozen"
MODE_CACHED = "cached"
DEFAULT_MODES = (MODE_DIRECT, MODE_BROKER, MODE_FROZEN, MODE_CACHED)

#: Default speculative window; intentionally not a divisor of common
#: budgets so truncated tail batches are exercised by default.
DEFAULT_WINDOW = 5


@dataclass(frozen=True)
class BatchCell:
    """One point of the sweep grid."""

    seed: int
    mode: str
    batched: bool

    def label(self) -> str:
        stepping = "batched" if self.batched else "scalar"
        return f"seed={self.seed} mode={self.mode} {stepping}"


@dataclass
class BatchDivergence:
    """One batched cell that disagreed with its scalar baseline."""

    cell: BatchCell
    baseline: Tuple
    observed: Tuple
    first_query: Optional[Dict] = None  # from trace.diff_events, if traceable
    detail: Optional[str] = None  # counted-flag / session-accounting breakage

    def describe(self) -> str:
        lines = [
            f"batch divergence at {self.cell.label()}:",
            f"  scalar result:  {self.baseline}",
            f"  batched result: {self.observed}",
        ]
        if self.first_query is not None:
            lines.append(f"  first diverging query: {self.first_query}")
        if self.detail is not None:
            lines.append(f"  detail: {self.detail}")
        return "\n".join(lines)


@dataclass
class BatchEquivalenceReport:
    """Everything a sweep learned."""

    cells_run: int = 0
    seeds: int = 0
    divergences: List[BatchDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        if self.ok:
            return (
                f"batch-equivalence sweep OK: {self.cells_run} cells over "
                f"{self.seeds} seeds, zero divergences"
            )
        body = "\n".join(d.describe() for d in self.divergences)
        return (
            f"batch-equivalence sweep FAILED: {len(self.divergences)} of "
            f"{self.cells_run} cells diverged\n{body}"
        )


class ReorderingBroker(MicroBatchBroker):
    """Negative control: silently reverses every multi-query batch.

    A single-query batch passes through untouched, so scalar stepping
    over this broker stays correct -- exactly the bug class the batched
    oracle exists to catch (answers attributed to the wrong speculative
    member).
    """

    def evaluate(self, images):
        rows = super().evaluate(images)
        if len(rows) > 1:
            return list(reversed(rows))
        return rows


def _counted_flags(events: Sequence[TraceEvent]) -> Tuple[bool, ...]:
    return tuple(event.counted for event in events)


class BatchEquivalenceRunner:
    """Sweep seeds x modes x {scalar, batched} and compare bit-for-bit.

    Parameters
    ----------
    attack_factory:
        ``seed -> OnePixelAttack``; called once per cell so no attack
        state leaks between cells.
    classifier_factory:
        ``(seed, mode) -> classifier``.  Must be deterministic per
        ``(seed, mode)``; the mode argument lets the ``frozen`` cell
        substitute a fast-path network while the toy modes share a
        cheap linear classifier.
    case_factory:
        ``seed -> image``.  The true class is derived per cell as the
        argmax of that cell's own classifier on the clean image, so a
        mode-specific classifier still attacks its own decision.
    seeds / budget / modes:
        The grid axes.  ``budget`` applies to every cell.
    window:
        Speculative batch size for batched cells (scalar cells pin
        ``batch_size=0``).
    broker_factory:
        ``(classifier, cache) -> MicroBatchBroker`` override for the
        ``broker`` mode -- how negative tests substitute
        :class:`ReorderingBroker` and prove the oracle catches it.
    """

    def __init__(
        self,
        attack_factory: Callable[[int], object],
        classifier_factory: Callable[[int, str], Callable],
        case_factory: Callable[[int], np.ndarray],
        seeds: Iterable[int],
        budget: Optional[int] = None,
        modes: Sequence[str] = DEFAULT_MODES,
        window: int = DEFAULT_WINDOW,
        broker_factory: Optional[Callable] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        unknown = set(modes) - set(DEFAULT_MODES)
        if unknown:
            raise ValueError(f"unknown execution modes: {sorted(unknown)}")
        if window <= 0:
            raise ValueError("window must be a positive batch size")
        self.attack_factory = attack_factory
        self.classifier_factory = classifier_factory
        self.case_factory = case_factory
        self.seeds = list(seeds)
        self.budget = budget
        self.modes = tuple(modes)
        self.window = window
        self.broker_factory = broker_factory
        self.cache_size = cache_size

    # -- cell execution ------------------------------------------------------

    def run_cell(
        self, cell: BatchCell
    ) -> Tuple[Optional[AttackResult], List[TraceEvent], Optional[str]]:
        """Execute one grid cell: ``(result, trace_events, detail)``.

        ``detail`` is ``None`` unless the cell violated an invariant
        that the result fingerprint cannot express (currently: session
        query accounting in ``broker`` mode).
        """
        attack = self.attack_factory(cell.seed)
        classifier = self.classifier_factory(cell.seed, cell.mode)
        image = np.asarray(self.case_factory(cell.seed))
        true_class = int(np.argmax(classifier(image)))
        recorder = TraceRecorder(clean_image=image)
        window = self.window if cell.batched else 0

        if cell.mode == MODE_BROKER:
            return self._run_broker(
                cell, attack, classifier, image, true_class, recorder, window
            )

        if cell.mode == MODE_CACHED:
            classifier = CachedClassifier(classifier, maxsize=self.cache_size)
        result = drive_steps(
            attack.steps(
                image, true_class, budget=self.budget, batch_size=window
            ),
            classifier,
            observer=recorder,
        )
        return result, recorder.events, None

    def _run_broker(
        self, cell, attack, classifier, image, true_class, recorder, window
    ):
        cache = QueryCache(self.cache_size)
        if self.broker_factory is not None:
            broker = self.broker_factory(classifier, cache)
        else:
            broker = MicroBatchBroker(classifier, cache=cache)
        manager = SessionManager(broker, max_workers=1)
        try:
            session = manager.create(
                attack,
                image,
                true_class,
                budget=self.budget,
                observer=recorder,
                batch_size=window,
            )
            manager.run_cooperative([session])
        finally:
            manager.shutdown()
        detail = None
        result = session.result
        if result is not None and session.queries != result.queries:
            detail = (
                f"session accounting drifted: session counted "
                f"{session.queries} queries, result reports {result.queries}"
            )
        return result, recorder.events, detail

    # -- the sweep -------------------------------------------------------------

    def run(self) -> BatchEquivalenceReport:
        """Execute the grid; each ``(seed, mode)``'s batched run is
        compared bit-for-bit -- result, trace, counted flags -- to its
        scalar baseline."""
        report = BatchEquivalenceReport(seeds=len(self.seeds))
        for seed in self.seeds:
            for mode in self.modes:
                scalar_cell = BatchCell(seed=seed, mode=mode, batched=False)
                batched_cell = BatchCell(seed=seed, mode=mode, batched=True)
                baseline, baseline_trace, base_detail = self.run_cell(scalar_cell)
                observed, trace, detail = self.run_cell(batched_cell)
                report.cells_run += 2
                baseline_print = result_fingerprint(baseline)
                observed_print = result_fingerprint(observed)
                problems = []
                if base_detail:
                    problems.append(f"scalar baseline: {base_detail}")
                if detail:
                    problems.append(detail)
                if _counted_flags(baseline_trace) != _counted_flags(trace):
                    problems.append(
                        "counted flags differ between scalar and batched traces"
                    )
                if observed_print == baseline_print and not problems:
                    continue
                first = None
                if trace:
                    first = diff_events(baseline_trace, trace)
                report.divergences.append(
                    BatchDivergence(
                        cell=batched_cell,
                        baseline=baseline_print,
                        observed=observed_print,
                        first_query=first,
                        detail="; ".join(problems) if problems else None,
                    )
                )
        return report


def _three_way_attack_factory():
    """``seed -> attack`` rotating all three batch-native generators:
    the sketch attack (with a reordering program, so speculation gets
    invalidated mid-run), the seeded uniform-random baseline, and a
    small differential-evolution SU-OPA."""
    from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
    from repro.attacks.sketch_attack import SketchAttack
    from repro.attacks.su_opa import SuOPA, SuOPAConfig
    from repro.core.dsl.parser import parse_program

    program = parse_program(
        """
        [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.05
        [B2] max(x[l]) > 0.5
        [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.1
        [B4] center(l) < 2
        """
    )

    def attack_factory(seed: int):
        if seed % 3 == 0:
            return SketchAttack(program)
        if seed % 3 == 1:
            return UniformRandomAttack(UniformRandomConfig(seed=seed))
        return SuOPA(
            SuOPAConfig(population_size=6, max_generations=3, seed=seed)
        )

    return attack_factory


def toy_batch_runner(
    seeds: Iterable[int] = range(20),
    budget: int = 40,
    shape: Tuple[int, int, int] = (5, 5, 3),
    num_classes: int = 3,
    **kwargs,
) -> BatchEquivalenceRunner:
    """The standard batch-equivalence sweep used by CI and the nightly.

    Rotates sketch / uniform-random / SU-OPA by seed so the sweep covers
    all three batch-native query generators, over smooth toy images.
    The ``frozen`` mode swaps in a frozen tiny conv network (the
    fast-path substrate); the other modes share a fragile linear
    classifier.  Any :class:`BatchEquivalenceRunner` keyword can be
    overridden.
    """
    from repro.classifier.toy import LinearPixelClassifier, make_toy_images

    attack_factory = _three_way_attack_factory()

    def classifier_factory(seed: int, mode: str):
        if mode == MODE_FROZEN:
            return tiny_network_classifier(
                image_size=shape[0], num_classes=num_classes, frozen=True
            )
        return LinearPixelClassifier(
            shape, num_classes=num_classes, seed=7, temperature=0.05
        )

    def case_factory(seed: int):
        return make_toy_images(1, shape, seed=seed)[0]

    return BatchEquivalenceRunner(
        attack_factory,
        classifier_factory,
        case_factory,
        seeds=seeds,
        budget=budget,
        **kwargs,
    )
