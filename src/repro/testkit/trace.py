"""Golden-trace record and replay for attack runs.

The paper's headline metric is the number of classifier queries, so the
sequence of queries an attack poses *is* its observable behaviour.  A
**golden trace** captures that sequence once -- every query event the
steppable protocol (:mod:`repro.core.stepping`) produces, as
``(image digest, location, perturbation, scores, counted)`` -- into a
canonical JSONL file.  From then on:

- :class:`ReplayClassifier` serves the recorded scores back in order,
  verifying each submitted image against the recorded digest, so attack
  *logic* can be regression-tested with **zero model forward passes**
  (and any drift in query order is caught at the exact diverging query
  instead of as a mysteriously different final result);
- :func:`diff_events` localizes the first divergence between two traces,
  which is how the differential oracle explains a failed equivalence
  sweep.

Golden file format (one JSON object per line):

- line 1 -- header: ``{"format": "repro-golden-trace", "version": 1,
  "attack": ..., "true_class": ..., "budget": ...}``;
- every further line -- one event: ``{"index": 1-based query index,
  "digest": hex SHA-1 of the submitted image, "counted": bool,
  "location": [row, col] | null, "perturbation": [r, g, b] | null,
  "scores": [...]}``.

``location``/``perturbation`` are derived by diffing the submitted image
against the clean image: for one-pixel attacks every counted submission
differs from the clean image in exactly one pixel, and the clean probe
(``counted=false``) differs in none.  Multi-pixel submissions record
``null`` -- the digest still pins them exactly.

Regenerate goldens by re-running the recorder (see DESIGN §9); a golden
only needs regenerating when the *attack logic* intentionally changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stepping import Query, drive_steps
from repro.runtime.cache import image_digest


class TraceMismatch(AssertionError):
    """Replayed execution diverged from the golden trace.

    Carries the 1-based query ``index`` of the first divergence so test
    failures point at the exact query, not just the final result.
    """

    def __init__(self, index: int, message: str):
        super().__init__(f"query {index}: {message}")
        self.index = index


@dataclass(frozen=True)
class TraceEvent:
    """One recorded query event."""

    index: int  # 1-based position in the query stream
    digest: str  # hex SHA-1 of the submitted image
    counted: bool
    scores: Tuple[float, ...]
    location: Optional[Tuple[int, int]] = None
    perturbation: Optional[Tuple[float, ...]] = None

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "digest": self.digest,
            "counted": self.counted,
            "location": None if self.location is None else list(self.location),
            "perturbation": (
                None if self.perturbation is None else list(self.perturbation)
            ),
            "scores": list(self.scores),
        }

    @staticmethod
    def from_dict(payload: Dict) -> "TraceEvent":
        return TraceEvent(
            index=int(payload["index"]),
            digest=str(payload["digest"]),
            counted=bool(payload["counted"]),
            scores=tuple(float(s) for s in payload["scores"]),
            location=(
                None
                if payload.get("location") is None
                else tuple(int(v) for v in payload["location"])
            ),
            perturbation=(
                None
                if payload.get("perturbation") is None
                else tuple(float(v) for v in payload["perturbation"])
            ),
        )


def pixel_diff(
    clean: np.ndarray, submitted: np.ndarray
) -> Tuple[Optional[Tuple[int, int]], Optional[Tuple[float, ...]]]:
    """The single changed pixel between two images, if there is one.

    Returns ``(location, written value)`` when exactly one pixel
    differs, ``(None, None)`` otherwise (identical images -- the clean
    probe -- or multi-pixel writes).
    """
    if clean.shape != submitted.shape:
        return None, None
    changed = np.argwhere((clean != submitted).any(axis=2))
    if len(changed) != 1:
        return None, None
    row, col = (int(v) for v in changed[0])
    return (row, col), tuple(float(v) for v in submitted[row, col])


class TraceRecorder:
    """Capture every query event of a driven attack into a trace.

    Usable two ways:

    - :meth:`record` drives ``attack.steps`` to completion against a
      real classifier (via :func:`~repro.core.stepping.drive_steps`)
      and captures the full event stream;
    - as a bare ``observer(query, scores)`` callback, pluggable into
      :func:`~repro.core.stepping.drive_steps`, an
      :class:`~repro.serve.sessions.AttackSession`, or a
      :class:`~repro.serve.broker.MicroBatchBroker`, for tracing
      executions the recorder does not itself drive.
    """

    def __init__(self, clean_image: Optional[np.ndarray] = None):
        self.clean_image = clean_image
        self.events: List[TraceEvent] = []
        self.header: Dict = {"format": "repro-golden-trace", "version": 1}

    # -- observer interface ------------------------------------------------

    def __call__(self, query, scores) -> None:
        """Record one answered query (observer-callback form).

        Accepts either a :class:`~repro.core.stepping.Query` or a bare
        image array (the broker hook passes images).
        """
        if isinstance(query, Query):
            image, counted = query.image, query.counted
        else:
            image, counted = np.asarray(query), True
        location = perturbation = None
        if self.clean_image is not None:
            location, perturbation = pixel_diff(self.clean_image, image)
        self.events.append(
            TraceEvent(
                index=len(self.events) + 1,
                digest=image_digest(image).hex(),
                counted=counted,
                scores=tuple(float(s) for s in np.asarray(scores).ravel()),
                location=location,
                perturbation=perturbation,
            )
        )

    # -- recording driver --------------------------------------------------

    def record(
        self,
        attack,
        classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        batch_size: Optional[int] = None,
    ):
        """Run ``attack`` once, capturing its golden trace; returns the result.

        ``batch_size`` records through batch-native stepping.  Batched
        observers fire per *consumed* member in scalar order, so the
        captured trace is identical to a scalar recording of the same
        attack -- scalar-recorded goldens replay batched and vice versa.
        """
        self.clean_image = image
        self.events = []
        self.header.update(
            attack=getattr(attack, "name", type(attack).__name__),
            true_class=int(true_class),
            budget=budget,
        )
        kwargs = {}
        if batch_size is not None:
            kwargs["batch_size"] = batch_size
        return drive_steps(
            attack.steps(
                image, true_class, budget=budget, target_class=target_class,
                **kwargs,
            ),
            classifier,
            observer=self,
        )

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        """Write the canonical golden JSONL file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")


def load_trace(path) -> Tuple[Dict, List[TraceEvent]]:
    """Read a golden file back as ``(header, events)``."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"empty golden trace: {path}")
    header = json.loads(lines[0])
    if header.get("format") != "repro-golden-trace":
        raise ValueError(f"{path} is not a golden trace (bad header)")
    return header, [TraceEvent.from_dict(json.loads(line)) for line in lines[1:]]


class ReplayClassifier:
    """Serve a recorded trace's scores back, verifying every submission.

    Strictly sequential: the ``k``-th call must submit an image whose
    digest matches the ``k``-th recorded event, else
    :class:`TraceMismatch` pinpoints the divergence.  Calling past the
    end of the trace is likewise a mismatch (the replayed logic posed
    *more* queries than the golden run).  No model is ever touched.

    Batched submissions (:meth:`batch`) are served by digest lookup
    instead: a speculative batch legitimately poses members in a
    different order than the golden run consumed them, and may pose
    members the golden run never consumed at all (those are answered
    with NaN fillers).  Verification of a batched replay therefore
    lives in the consumption-order :class:`TraceVerifier` observer, not
    here; the classifier remembers each batch's digests so a mismatch
    can be localized to the posing batch member.
    """

    def __init__(self, events: Sequence[TraceEvent]):
        self.events = list(events)
        self.position = 0  # events served so far (scalar path)
        self.last_batch: List[str] = []  # digests of the last posed batch
        self._by_digest: Optional[Dict[str, np.ndarray]] = None

    @property
    def remaining(self) -> int:
        return len(self.events) - self.position

    def __call__(self, image: np.ndarray) -> np.ndarray:
        index = self.position + 1
        if self.position >= len(self.events):
            raise TraceMismatch(
                index, f"trace exhausted after {len(self.events)} events"
            )
        event = self.events[self.position]
        digest = image_digest(image).hex()
        if digest != event.digest:
            raise TraceMismatch(
                index,
                f"submitted image {digest[:12]} != recorded {event.digest[:12]}",
            )
        self.position += 1
        return np.array(event.scores, dtype=np.float64)

    def batch(self, images) -> np.ndarray:
        """Serve one speculative batch by digest (see class docstring).

        Duplicate digests across events are safe: a deterministic
        classifier gives the same scores for the same image, so first
        occurrence wins.
        """
        if self._by_digest is None:
            self._by_digest = {}
            for event in self.events:
                self._by_digest.setdefault(
                    event.digest, np.array(event.scores, dtype=np.float64)
                )
        width = len(self.events[0].scores) if self.events else 1
        rows: List[np.ndarray] = []
        self.last_batch = []
        for image in list(images):
            digest = image_digest(np.asarray(image)).hex()
            self.last_batch.append(digest)
            scores = self._by_digest.get(digest)
            if scores is None:
                # a speculative member the golden run never consumed --
                # harmless unless the replay tries to consume it, which
                # the TraceVerifier then reports as a NaN-scores event
                rows.append(np.full(width, np.nan))
            else:
                rows.append(scores.copy())
        return np.stack(rows) if rows else np.zeros((0, width))


class TraceVerifier:
    """Consumption-order observer checking a replay against its golden.

    Plugged into :func:`~repro.core.stepping.drive_steps` (or a
    session), it receives every *consumed* query in scalar order --
    batched or not -- and asserts the digest and scores of the ``k``-th
    consumption match the ``k``-th recorded event.  When the replay
    runs batched, a mismatch is additionally localized to the member of
    the last posed batch that produced the offending image.
    """

    def __init__(
        self,
        events: Sequence[TraceEvent],
        classifier: Optional[ReplayClassifier] = None,
    ):
        self.events = list(events)
        self.classifier = classifier
        self.cursor = 0  # events verified so far

    def _locate(self, digest: str) -> str:
        if self.classifier is not None and digest in self.classifier.last_batch:
            member = self.classifier.last_batch.index(digest)
            return f" (batch member {member} of the last posed batch)"
        return ""

    def __call__(self, query, scores) -> None:
        index = self.cursor + 1
        image = query.image if isinstance(query, Query) else np.asarray(query)
        digest = image_digest(image).hex()
        if self.cursor >= len(self.events):
            raise TraceMismatch(
                index,
                f"trace exhausted after {len(self.events)} events; replay "
                f"consumed extra query {digest[:12]}" + self._locate(digest),
            )
        event = self.events[self.cursor]
        if digest != event.digest:
            raise TraceMismatch(
                index,
                f"consumed image {digest[:12]} != recorded "
                f"{event.digest[:12]}" + self._locate(digest),
            )
        got = tuple(float(s) for s in np.asarray(scores).ravel())
        if got != event.scores:
            detail = (
                "speculative member missing from the golden trace"
                if any(np.isnan(got))
                else f"scores {got} != recorded {event.scores}"
            )
            raise TraceMismatch(index, detail + self._locate(digest))
        self.cursor += 1


def replay(
    attack,
    events: Sequence[TraceEvent],
    image: np.ndarray,
    true_class: int,
    budget: Optional[int] = None,
    target_class: Optional[int] = None,
    batch_size: Optional[int] = None,
):
    """Re-run ``attack`` against a recorded trace; returns its result.

    Raises :class:`TraceMismatch` at the first query that differs from
    the golden run.  A clean replay whose result equals the recorded
    run's proves the attack logic unchanged, at zero forward passes.

    ``batch_size`` replays through batch-native stepping: the recorded
    consumption-order trace answers the speculative batches by digest,
    and a :class:`TraceVerifier` re-checks every consumption in order.
    Because batched observers fire in scalar consumption order, a
    scalar-recorded golden replays batched and a batch-recorded golden
    replays scalar, interchangeably.
    """
    classifier = ReplayClassifier(events)
    if batch_size:
        verifier = TraceVerifier(events, classifier)
        result = drive_steps(
            attack.steps(
                image, true_class, budget=budget, target_class=target_class,
                batch_size=batch_size,
            ),
            classifier,
            observer=verifier,
        )
        if verifier.cursor != len(events):
            raise TraceMismatch(
                verifier.cursor + 1,
                f"replay ended with {len(events) - verifier.cursor} recorded "
                "events never consumed",
            )
        return result
    result = drive_steps(
        attack.steps(image, true_class, budget=budget, target_class=target_class),
        classifier,
    )
    if classifier.remaining:
        raise TraceMismatch(
            classifier.position + 1,
            f"replay ended with {classifier.remaining} recorded events unserved",
        )
    return result


def diff_events(
    baseline: Sequence[TraceEvent], other: Sequence[TraceEvent]
) -> Optional[Dict]:
    """The first query event where two traces diverge, or ``None``.

    Compares image digests and scores (the cross-path invariants;
    ``counted`` flags legitimately differ between native and
    thread-adapted generators, so they are reported but not compared).
    """
    for position, (a, b) in enumerate(zip(baseline, other)):
        if a.digest != b.digest or a.scores != b.scores:
            return {
                "index": position + 1,
                "baseline": a.to_dict(),
                "other": b.to_dict(),
            }
    if len(baseline) != len(other):
        shorter = min(len(baseline), len(other))
        longer = baseline if len(baseline) > len(other) else other
        return {
            "index": shorter + 1,
            "baseline": longer[shorter].to_dict() if longer is baseline else None,
            "other": longer[shorter].to_dict() if longer is other else None,
        }
    return None
