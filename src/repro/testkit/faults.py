"""Deterministic fault-injection classifier wrappers.

Production hardening (the worker pool's fault containment, the broker's
error propagation, graceful budget degradation) is only trustworthy if
it is exercised *systematically*, not by whatever faults happen to occur
in the wild.  This module simulates a misbehaving classifier backend
with faults drawn from a **seeded schedule**, so every fault scenario is
exactly reproducible:

- :class:`FlakyClassifier` raises :class:`InjectedFault` (or
  :class:`InjectedTimeout`) at scheduled query indices -- a backend that
  intermittently errors or times out;
- :class:`SlowClassifier` charges a *virtual* latency per query against
  an optional deadline, raising :class:`InjectedTimeout` when the
  simulated clock overruns -- latency spikes without real sleeping, so
  the fault matrix stays fast and can never hang the suite;
- :class:`CorruptScoresClassifier` deterministically perturbs the score
  vector at scheduled indices -- a backend returning wrong-but-plausible
  answers, for testing that oracles actually notice.

All wrappers are plain ``(H, W, 3) -> (C,)`` callables, so they compose
under :class:`~repro.classifier.blackbox.CountingClassifier` in either
order; putting the counting boundary *outside* the injector makes budget
accounting under faults itself testable (a fault on query ``k`` must
leave ``count == k``).  None of them define a ``batch`` method, so
:func:`~repro.classifier.blackbox.batch_scores` falls back to per-image
calls and the injection schedule indexes individual queries on every
execution path, including broker-batched ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

import numpy as np

Classifier = Callable[[np.ndarray], np.ndarray]


class InjectedFault(RuntimeError):
    """A deliberate, schedule-driven failure of the classifier backend.

    ``index`` is the 1-based query index the fault fired on.
    """

    def __init__(self, index: int, kind: str = "fault"):
        super().__init__(f"injected {kind} on query {index}")
        self.index = index
        self.kind = kind


class InjectedTimeout(InjectedFault):
    """An injected fault representing a timed-out backend call."""

    def __init__(self, index: int):
        super().__init__(index, kind="timeout")


@dataclass(frozen=True)
class FaultSchedule:
    """Which 1-based query indices a fault fires on.

    Two modes, both deterministic and independent of call interleaving:

    - :meth:`at` pins an explicit set of indices;
    - :meth:`bernoulli` derives an independent coin flip per index from
      ``(seed, index)`` via ``numpy``'s ``SeedSequence`` spawning, so
      whether query ``k`` faults never depends on how many queries were
      posed before it or on any shared RNG stream.
    """

    indices: Optional[FrozenSet[int]] = None
    seed: Optional[int] = None
    rate: float = 0.0
    start: int = 1

    def __post_init__(self):
        if self.indices is None and self.seed is None:
            raise ValueError("schedule needs explicit indices or a seed")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.start < 1:
            raise ValueError("query indices are 1-based")

    @staticmethod
    def at(*indices: int) -> "FaultSchedule":
        """Fire exactly on the given 1-based query indices."""
        if any(index < 1 for index in indices):
            raise ValueError("query indices are 1-based")
        return FaultSchedule(indices=frozenset(indices))

    @staticmethod
    def bernoulli(seed: int, rate: float, start: int = 1) -> "FaultSchedule":
        """Fire each query from ``start`` on with probability ``rate``."""
        return FaultSchedule(seed=seed, rate=rate, start=start)

    @staticmethod
    def never() -> "FaultSchedule":
        """The empty schedule (useful as a matrix control cell)."""
        return FaultSchedule(indices=frozenset())

    def fires(self, index: int) -> bool:
        """Whether the fault fires on 1-based query ``index``."""
        if self.indices is not None:
            return index in self.indices
        if index < self.start or self.rate == 0.0:
            return False
        draw = np.random.default_rng([int(self.seed), int(index)]).random()
        return bool(draw < self.rate)


class _FaultInjector:
    """Shared per-query indexing for the fault wrappers."""

    def __init__(self, classifier: Classifier, schedule: FaultSchedule):
        self._classifier = classifier
        self.schedule = schedule
        self.calls = 0  # queries posed to this wrapper, faulted or not
        self.injected = 0  # faults actually fired

    def __call__(self, image: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.schedule.fires(self.calls):
            self.injected += 1
            return self._inject(image)
        return self._forward(image)

    def _forward(self, image: np.ndarray) -> np.ndarray:
        return self._classifier(image)

    def _inject(self, image: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class FlakyClassifier(_FaultInjector):
    """Raise on scheduled queries instead of answering.

    ``timeout=True`` raises :class:`InjectedTimeout` (a backend deadline
    blown) rather than the generic :class:`InjectedFault` (a backend
    exception); both derive from ``RuntimeError`` so production code
    that catches attack-level exceptions treats them like real faults.
    """

    def __init__(
        self,
        classifier: Classifier,
        schedule: FaultSchedule,
        timeout: bool = False,
    ):
        super().__init__(classifier, schedule)
        self.timeout = timeout

    def _inject(self, image: np.ndarray) -> np.ndarray:
        if self.timeout:
            raise InjectedTimeout(self.calls)
        raise InjectedFault(self.calls)


class SlowClassifier(_FaultInjector):
    """Charge simulated latency per query against an optional deadline.

    Every query costs ``base_latency`` virtual seconds; scheduled
    queries additionally cost ``spike``.  The accumulated virtual time
    is exposed as :attr:`elapsed`; when ``deadline`` is set and a query
    would push :attr:`elapsed` past it, the query raises
    :class:`InjectedTimeout` *instead of executing* -- the deterministic
    analogue of a caller-side timeout firing mid-run.  With no deadline
    the wrapper only measures, never fails, and is bit-transparent.

    Pass ``sleep=time.sleep`` to also spend the latency in real time
    (used by throughput-style tests); the default is purely virtual so
    fault matrices cannot slow the suite down or hang it.
    """

    def __init__(
        self,
        classifier: Classifier,
        schedule: FaultSchedule,
        base_latency: float = 0.0,
        spike: float = 0.1,
        deadline: Optional[float] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if base_latency < 0 or spike < 0:
            raise ValueError("latencies must be non-negative")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        super().__init__(classifier, schedule)
        self.base_latency = base_latency
        self.spike = spike
        self.deadline = deadline
        self.elapsed = 0.0
        self._sleep = sleep

    def __call__(self, image: np.ndarray) -> np.ndarray:
        self.calls += 1
        cost = self.base_latency
        if self.schedule.fires(self.calls):
            self.injected += 1
            cost += self.spike
        if self._sleep is not None and cost > 0:
            self._sleep(cost)
        if self.deadline is not None and self.elapsed + cost > self.deadline:
            self.elapsed = self.deadline
            raise InjectedTimeout(self.calls)
        self.elapsed += cost
        return self._forward(image)


class CorruptScoresClassifier(_FaultInjector):
    """Deterministically perturb scores on scheduled queries.

    The perturbation is derived from ``(noise_seed, query index)``, so a
    corrupted run is itself exactly reproducible -- the property the
    differential oracle's negative tests rely on (a corruption must be
    *detected*, not smeared into flakiness).  Perturbed scores are
    clipped to ``[0, 1]`` and renormalized so they still look like a
    confidence vector to code that sanity-checks its inputs.
    """

    def __init__(
        self,
        classifier: Classifier,
        schedule: FaultSchedule,
        scale: float = 0.25,
        noise_seed: int = 0,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        super().__init__(classifier, schedule)
        self.scale = scale
        self.noise_seed = noise_seed

    def _forward(self, image: np.ndarray) -> np.ndarray:
        return self._classifier(image)

    def _inject(self, image: np.ndarray) -> np.ndarray:
        scores = np.asarray(self._classifier(image), dtype=np.float64)
        rng = np.random.default_rng([int(self.noise_seed), int(self.calls)])
        noisy = np.clip(scores + rng.normal(0.0, self.scale, scores.shape), 0, 1)
        total = noisy.sum()
        if total > 0:
            noisy = noisy / total
        return noisy
