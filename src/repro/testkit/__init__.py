"""repro.testkit: the verification harness for the execution stack.

Four pillars, built to make aggressive refactoring of the runtime and
serving layers cheap to validate (see DESIGN §9):

- :mod:`~repro.testkit.faults` -- deterministic fault-injection
  classifier wrappers (flaky, slow, score-corrupting) driven by seeded
  schedules;
- :mod:`~repro.testkit.trace` -- golden-trace record/replay: capture
  every query event of an attack run, replay it with zero model forward
  passes, localize the first diverging query;
- :mod:`~repro.testkit.differential` -- the equivalence oracle sweeping
  seeds x execution paths x cache modes and asserting bit-identical
  :class:`~repro.attacks.base.AttackResult` everywhere;
- :mod:`~repro.testkit.batching` -- the batch-equivalence oracle
  proving batch-native stepping (DESIGN §14) bit-identical to the
  scalar protocol across seeds x execution modes;
- :mod:`~repro.testkit.matrix` -- the fault matrix proving every fault
  kind degrades gracefully on every execution path;
- :mod:`~repro.testkit.kill` -- the kill-and-resume harness: SIGKILL a
  checkpointed campaign subprocess mid-run, resume it, and assert the
  summary is bit-identical to an uninterrupted run;
- :mod:`~repro.testkit.lifecycle` -- the lifecycle oracle proving a
  session cancelled or expired after ``k`` charged queries reports
  exactly ``k`` (bit-identical to a budget-``k`` scalar run), swept
  across stepping modes, drive paths, and park verdicts;
- :mod:`~repro.testkit.generators` -- hypothesis strategies for images,
  budgets, and DSL programs (present only when hypothesis is installed).
"""

from repro.testkit.batching import (
    DEFAULT_MODES,
    BatchCell,
    BatchDivergence,
    BatchEquivalenceReport,
    BatchEquivalenceRunner,
    ReorderingBroker,
    toy_batch_runner,
)
from repro.testkit.differential import (
    DEFAULT_PATHS,
    Cell,
    DifferentialReport,
    DifferentialRunner,
    Divergence,
    network_runner,
    result_fingerprint,
    results_equal,
    tiny_network_classifier,
    toy_runner,
)
from repro.testkit.faults import (
    CorruptScoresClassifier,
    FaultSchedule,
    FlakyClassifier,
    InjectedFault,
    InjectedTimeout,
    SlowClassifier,
)
from repro.testkit.kill import (
    kill_and_resume_campaign,
    kill_and_resume_matrix,
    matrix_fingerprint,
    summary_fingerprint,
    toy_campaign,
    toy_matrix_spec,
)
from repro.testkit.lifecycle import (
    DEFAULT_LIFECYCLE_KINDS,
    DEFAULT_LIFECYCLE_PATHS,
    FlightDroppingBroker,
    LifecycleCell,
    LifecycleDivergence,
    LifecycleEquivalenceRunner,
    LifecycleReport,
    cancel_during_flight,
    toy_lifecycle_runner,
)
from repro.testkit.sharedcache import (
    L2_MODES,
    InMemorySharedCache,
    live_shared_cache_smoke,
    shared_cache_sweep,
    tiered_broker_factory,
)
from repro.testkit.matrix import (
    DEFAULT_KINDS,
    DEFAULT_MATRIX_PATHS,
    FaultCell,
    run_fault_matrix,
)
from repro.testkit.trace import (
    ReplayClassifier,
    TraceEvent,
    TraceMismatch,
    TraceRecorder,
    TraceVerifier,
    diff_events,
    load_trace,
    pixel_diff,
    replay,
)

__all__ = [
    "DEFAULT_KINDS",
    "DEFAULT_LIFECYCLE_KINDS",
    "DEFAULT_LIFECYCLE_PATHS",
    "DEFAULT_MATRIX_PATHS",
    "DEFAULT_MODES",
    "DEFAULT_PATHS",
    "BatchCell",
    "BatchDivergence",
    "BatchEquivalenceReport",
    "BatchEquivalenceRunner",
    "Cell",
    "CorruptScoresClassifier",
    "DifferentialReport",
    "DifferentialRunner",
    "Divergence",
    "FaultCell",
    "FaultSchedule",
    "FlakyClassifier",
    "InMemorySharedCache",
    "InjectedFault",
    "FlightDroppingBroker",
    "InjectedTimeout",
    "L2_MODES",
    "LifecycleCell",
    "LifecycleDivergence",
    "LifecycleEquivalenceRunner",
    "LifecycleReport",
    "ReorderingBroker",
    "ReplayClassifier",
    "SlowClassifier",
    "TraceEvent",
    "TraceMismatch",
    "TraceRecorder",
    "TraceVerifier",
    "cancel_during_flight",
    "diff_events",
    "kill_and_resume_campaign",
    "kill_and_resume_matrix",
    "live_shared_cache_smoke",
    "matrix_fingerprint",
    "toy_matrix_spec",
    "load_trace",
    "network_runner",
    "pixel_diff",
    "replay",
    "result_fingerprint",
    "results_equal",
    "run_fault_matrix",
    "shared_cache_sweep",
    "summary_fingerprint",
    "tiered_broker_factory",
    "tiny_network_classifier",
    "toy_batch_runner",
    "toy_campaign",
    "toy_lifecycle_runner",
    "toy_runner",
]
