"""Shared-cache oracles: prove the L2 tier changes cost, never results.

The two-tier query cache (DESIGN §15) must be invisible to the paper's
metrics: an attack served with the shared L2 enabled, disabled, warm,
or failing mid-run must produce a bit-identical
:class:`~repro.attacks.base.AttackResult` and per-session query count,
because cache hits -- local or remote -- are still counted queries and
the classifier is deterministic.  This module pins that claim from two
directions:

- :func:`shared_cache_sweep` -- an in-process differential sweep riding
  :class:`~repro.testkit.differential.DifferentialRunner`'s ``served``
  path with its ``broker_factory`` hook: every cell's broker cache is
  wrapped in a :class:`~repro.runtime.cache.TieredQueryCache` over an
  :class:`InMemorySharedCache` (fresh, pre-warmed, fault-injected after
  N operations, or dead from the first), and every cell must match the
  private-cache baseline exactly.  The warm mode also proves the tier
  *works*: its second pass over a seed must score zero model-fresh
  queries beyond what L2 misses explain (``hits > 0``).
- :func:`live_shared_cache_smoke` -- the CI tier smoke: a real
  2-worker cluster with ``--shared-cache``, the deterministic
  HARD_SEED session submitted until two distinct replicas have served
  it, every final query count checked against the uninterrupted golden
  count, and the cluster ``/metrics`` rollup required to report
  ``l2_hits > 0``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.runtime.cache import TieredQueryCache
from repro.serve.broker import MicroBatchBroker
from repro.testkit.differential import (
    PATH_SERVED,
    Cell,
    result_fingerprint,
    toy_runner,
)

#: The L2 behaviours the sweep proves equivalent to the private baseline.
L2_MODES = ("off", "fresh", "warm", "faulted", "dead")


class InMemorySharedCache:
    """A dict-backed stand-in for the HTTP shared-cache client.

    Implements the same ``lookup``/``store`` contract as
    :class:`~repro.cluster.cacheservice.HttpSharedCacheClient`, plus
    deterministic fault injection: after ``fail_after`` successful
    operations (lookups + stores), every further operation raises
    :class:`OSError` -- exactly the transport-failure signal
    :class:`~repro.runtime.cache.TieredQueryCache` degrades on.
    ``fail_after=0`` is a dead L2 from the first round trip.
    """

    def __init__(self, fail_after: Optional[int] = None):
        self._store: Dict[bytes, np.ndarray] = {}
        self._lock = threading.Lock()
        self.fail_after = fail_after
        self.operations = 0
        self.hits = 0
        self.misses = 0
        self.stored = 0

    def _tick(self) -> None:
        if self.fail_after is not None and self.operations >= self.fail_after:
            raise OSError("injected L2 transport failure")
        self.operations += 1

    def lookup(self, keys: Iterable[bytes]) -> Dict[bytes, np.ndarray]:
        with self._lock:
            self._tick()
            found: Dict[bytes, np.ndarray] = {}
            for key in keys:
                scores = self._store.get(key)
                if scores is None:
                    self.misses += 1
                else:
                    self.hits += 1
                    found[key] = np.array(scores, copy=True)
            return found

    def store(self, entries: Mapping[bytes, np.ndarray]) -> None:
        with self._lock:
            self._tick()
            for key, scores in entries.items():
                self._store[key] = np.array(scores, copy=True)
                self.stored += 1


def tiered_broker_factory(
    shared: InMemorySharedCache, cooldown: float = 0.0
) -> Callable:
    """A ``DifferentialRunner`` ``broker_factory`` wiring in an L2.

    Wraps each served cell's private :class:`QueryCache` (the L1) in a
    :class:`TieredQueryCache` over ``shared``.  Uncached cells stay
    uncached -- no L1 means no tier to promote into.  ``cooldown=0``
    retries a failing L2 on every batch, the most adversarial setting
    for the degraded path (every evaluation re-probes and re-fails).
    """

    def factory(classifier, cache):
        tiered = (
            None
            if cache is None
            else TieredQueryCache(cache, shared, cooldown=cooldown)
        )
        return MicroBatchBroker(classifier, cache=tiered)

    return factory


def shared_cache_sweep(
    seeds: Iterable[int] = range(12),
    budget: int = 40,
    modes: Sequence[str] = L2_MODES,
    fail_after: int = 3,
) -> Dict:
    """Differential proof: every L2 mode matches the private baseline.

    For each seed, the private-cache ``served`` cell is the baseline;
    then per mode:

    - ``off``     -- plain private cache (control: equals baseline);
    - ``fresh``   -- an empty L2 per cell (write-through, no hits);
    - ``warm``    -- one L2 shared across *two* runs of the cell: the
      first warms it, the second must serve L1 misses from it
      (``warm_hits > 0`` proves cross-session sharing) and still match;
    - ``faulted`` -- the L2 dies after ``fail_after`` operations,
      mid-run, and the cell silently degrades;
    - ``dead``    -- the L2 fails from the very first round trip.

    Returns a JSON-safe report; ``report["ok"]`` requires zero
    divergences *and* nonzero warm hits.
    """
    unknown = set(modes) - set(L2_MODES)
    if unknown:
        raise ValueError(f"unknown L2 modes: {sorted(unknown)}")
    seeds = list(seeds)
    divergences: List[Dict] = []
    cells = 0
    warm_hits = 0

    def run_with(factory, seed: int):
        runner = toy_runner(
            seeds=[seed],
            budget=budget,
            paths=(PATH_SERVED,),
            cache_modes=(True,),
            broker_factory=factory,
        )
        result, _trace = runner.run_cell(
            Cell(seed=seed, path=PATH_SERVED, cached=True)
        )
        return result_fingerprint(result)

    for seed in seeds:
        baseline = run_with(None, seed)
        cells += 1
        observations: List = []
        if "off" in modes:
            observations.append(("off", run_with(None, seed)))
        if "fresh" in modes:
            observations.append(
                ("fresh", run_with(tiered_broker_factory(InMemorySharedCache()), seed))
            )
        if "warm" in modes:
            shared = InMemorySharedCache()
            factory = tiered_broker_factory(shared)
            observations.append(("warm(1)", run_with(factory, seed)))
            before = shared.hits
            observations.append(("warm(2)", run_with(factory, seed)))
            warm_hits += shared.hits - before
        if "faulted" in modes:
            observations.append(
                (
                    "faulted",
                    run_with(
                        tiered_broker_factory(
                            InMemorySharedCache(fail_after=fail_after)
                        ),
                        seed,
                    ),
                )
            )
        if "dead" in modes:
            observations.append(
                (
                    "dead",
                    run_with(
                        tiered_broker_factory(InMemorySharedCache(fail_after=0)),
                        seed,
                    ),
                )
            )
        for mode, observed in observations:
            cells += 1
            if observed != baseline:
                divergences.append(
                    {
                        "seed": seed,
                        "mode": mode,
                        "baseline": repr(baseline),
                        "observed": repr(observed),
                    }
                )
    return {
        "seeds": len(seeds),
        "cells": cells,
        "modes": list(modes),
        "divergences": divergences,
        "warm_hits": warm_hits,
        "ok": not divergences and ("warm" not in modes or warm_hits > 0),
    }


# ----------------------------------------------------------------------
# live cluster smoke (CI)
# ----------------------------------------------------------------------


def live_shared_cache_smoke(
    workers: int = 2,
    max_submissions: int = 10,
    timeout: float = 120.0,
) -> Dict:
    """Real-tier proof: two replicas share hits, query counts stay golden.

    Boots a ``workers``-replica cluster with ``--shared-cache`` and
    submits the deterministic HARD_SEED session (golden final count
    from an uninterrupted private-cache single-worker run) repeatedly
    -- sequentially, each to completion -- until at least two distinct
    replicas have served it.  Every session must finish with exactly
    the golden query count (cache hits are still counted), and the
    cluster ``/metrics`` rollup must report ``l2_hits > 0``: the second
    replica's misses were answered by the first replica's
    write-through.
    """
    from repro.cluster.config import ClusterConfig
    from repro.cluster.router import ClusterHandle
    from repro.cluster.workers import http_json
    from repro.testkit.kill import (
        _cluster_submit,
        _wait_session,
        hard_cluster_spec,
    )

    spec = hard_cluster_spec()
    base = dict(
        port=0, height=6, width=6, num_classes=3, seed=1,
        heartbeat=0.2, backoff=0.2,
    )

    with ClusterHandle(ClusterConfig(workers=1, **base)) as tier:
        accepted = _cluster_submit(tier.address, spec)
        final = _wait_session(
            tier.address, accepted["id"],
            lambda p: p["state"] in ("done", "failed"), timeout,
        )
        golden = final["result"]["queries"]

    sessions: List[Dict] = []
    with ClusterHandle(
        ClusterConfig(workers=workers, shared_cache=True, **base)
    ) as tier:
        served_by = set()
        for _ in range(max_submissions):
            accepted = _cluster_submit(tier.address, spec)
            final = _wait_session(
                tier.address, accepted["id"],
                lambda p: p["state"] in ("done", "failed"), timeout,
            )
            sessions.append(
                {
                    "id": accepted["id"],
                    "worker": final["worker"],
                    "queries": final["result"]["queries"],
                }
            )
            served_by.add(final["worker"])
            if len(served_by) >= 2:
                break
        deadline = time.monotonic() + 10.0
        l2_hits = 0
        while time.monotonic() < deadline:
            _status, rollup = http_json(tier.address, "GET", "/metrics")
            cluster_cache = (rollup.get("cache") or {}).get("cluster") or {}
            l2_hits = cluster_cache.get("l2_hits", 0)
            if l2_hits > 0:
                break
            time.sleep(0.2)
        shared_slot = (rollup.get("shared_cache") or {}).get("slot")

    counts_golden = all(s["queries"] == golden for s in sessions)
    return {
        "golden_queries": golden,
        "sessions": sessions,
        "distinct_workers": sorted(served_by),
        "l2_hits": l2_hits,
        "shared_cache_slot": shared_slot,
        "identical": counts_golden,
        "ok": counts_golden and len(served_by) >= 2 and l2_hits > 0,
    }


def main(argv=None) -> int:
    """CI entry point: run a harness, print its verdict, gate on ``ok``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit.sharedcache",
        description="shared L2 cache differential sweep and live tier smoke",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="boot a real 2-worker tier with --shared-cache instead of "
        "the in-process differential sweep",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seeds", type=int, default=12,
                        help="sweep seeds (in-process mode)")
    args = parser.parse_args(argv)
    if args.live:
        verdict = live_shared_cache_smoke(workers=args.workers)
    else:
        verdict = shared_cache_sweep(seeds=range(args.seeds))
    json.dump(verdict, sys.stdout, indent=2)
    print()
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
