"""The fault-injection matrix: every fault kind on every execution path.

Hardening claims ("a faulted task degrades to a failed result at full
budget", "a broker error cannot hang a session") are cheap to state and
expensive to trust.  :func:`run_fault_matrix` earns the trust by
actually running the grid: ``{exception, timeout, latency} x {direct,
pooled, served}``, with faults injected from a deterministic schedule
(:mod:`repro.testkit.faults`), and returns one :class:`FaultCell` per
grid point so a test can assert, cell by cell, that the run

- produced a **failed** :class:`~repro.attacks.base.AttackResult`
  charged the **full budget** (the engine's degradation contract,
  shared via :func:`repro.eval.runner.degraded_result`),
- did not hang (the served path drives the real threaded broker under
  a hard join deadline), and
- did not miscount (a :class:`~repro.classifier.blackbox.
  CountingClassifier` sits *outside* the injector, so the query count
  at the moment of the fault is observable and exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.attacks.base import AttackResult
from repro.classifier.blackbox import CountingClassifier
from repro.eval.runner import degraded_result
from repro.runtime.pool import WorkerPool
from repro.runtime.tasks import AttackTaskRunner
from repro.serve.broker import BatchPolicy, MicroBatchBroker
from repro.serve.sessions import SessionManager
from repro.testkit.faults import (
    FaultSchedule,
    FlakyClassifier,
    InjectedFault,
    SlowClassifier,
)

FAULT_EXCEPTION = "exception"
FAULT_TIMEOUT = "timeout"
FAULT_LATENCY = "latency"
DEFAULT_KINDS = (FAULT_EXCEPTION, FAULT_TIMEOUT, FAULT_LATENCY)

MATRIX_DIRECT = "direct"
MATRIX_POOLED = "pooled"
MATRIX_SERVED = "served"
DEFAULT_MATRIX_PATHS = (MATRIX_DIRECT, MATRIX_POOLED, MATRIX_SERVED)

#: Hard deadline for the served cell's session thread; a hang here is a
#: genuine bug, and the matrix must fail loudly instead of wedging CI.
_SERVE_JOIN_TIMEOUT = 60.0


def make_injector(kind: str, classifier, fault_index: int):
    """The fault wrapper for one matrix cell.

    ``exception`` / ``timeout`` raise on the ``fault_index``-th query;
    ``latency`` charges virtual time per query with a spike at
    ``fault_index`` sized to blow the (virtual) deadline exactly there.
    """
    schedule = FaultSchedule.at(fault_index)
    if kind == FAULT_EXCEPTION:
        return FlakyClassifier(classifier, schedule)
    if kind == FAULT_TIMEOUT:
        return FlakyClassifier(classifier, schedule, timeout=True)
    if kind == FAULT_LATENCY:
        # base traffic is comfortably inside the deadline; the scheduled
        # spike alone pushes the virtual clock over it
        return SlowClassifier(
            classifier,
            schedule,
            base_latency=0.001,
            spike=10.0,
            deadline=5.0,
        )
    raise ValueError(f"unknown fault kind {kind!r}")


@dataclass
class FaultCell:
    """What one grid point produced."""

    kind: str
    path: str
    result: Optional[AttackResult]
    posed: int  # queries the counting boundary saw (incl. the faulted one)
    injected: int  # faults the schedule actually fired


def _run_direct(attack, counting, image, true_class, budget) -> AttackResult:
    try:
        return attack.attack(counting, image, true_class, budget=budget)
    except InjectedFault as exc:
        return degraded_result(f"injected:{exc.kind}", budget)


def _run_pooled(
    attack, counting, image, true_class, budget, workers
) -> AttackResult:
    runner = AttackTaskRunner(attack, counting, budget=budget)
    outcome = WorkerPool(workers=workers).map(
        runner, [(image, true_class)], task_name="fault-matrix"
    )[0]
    if outcome.ok:
        return outcome.value.result
    return degraded_result(
        outcome.error.tag if outcome.error is not None else None, budget
    )


def _run_served(attack, counting, image, true_class, budget) -> AttackResult:
    broker = MicroBatchBroker(
        counting, policy=BatchPolicy(max_batch_size=1, max_wait=0.001)
    )
    manager = SessionManager(broker, max_workers=1)
    try:
        with broker:
            session = manager.create(attack, image, true_class, budget=budget)
            future = manager.start(session)
            session = future.result(timeout=_SERVE_JOIN_TIMEOUT)
    finally:
        manager.shutdown()
    if session.result is not None:
        return session.result
    return degraded_result(session.error, budget)


def run_fault_matrix(
    attack_factory: Callable[[], object],
    classifier_factory: Callable[[], Callable],
    case: Tuple[np.ndarray, int],
    budget: int,
    kinds: Iterable[str] = DEFAULT_KINDS,
    paths: Iterable[str] = DEFAULT_MATRIX_PATHS,
    fault_index: int = 3,
    pool_workers: int = 0,
) -> Dict[Tuple[str, str], FaultCell]:
    """Run every ``(fault kind, execution path)`` cell of the matrix.

    Each cell gets a fresh attack, classifier, injector, and counting
    boundary (``CountingClassifier(injector(classifier))``), runs the
    attack to its (degraded) end, and records the outcome.  The
    ``pooled`` cells keep everything in-process when ``pool_workers=0``
    so the counting boundary stays observable; nightly runs use real
    worker processes.
    """
    image, true_class = case
    cells: Dict[Tuple[str, str], FaultCell] = {}
    for kind in kinds:
        for path in paths:
            injector = make_injector(kind, classifier_factory(), fault_index)
            counting = CountingClassifier(injector)
            attack = attack_factory()
            if path == MATRIX_DIRECT:
                result = _run_direct(attack, counting, image, true_class, budget)
            elif path == MATRIX_POOLED:
                result = _run_pooled(
                    attack, counting, image, true_class, budget, pool_workers
                )
            elif path == MATRIX_SERVED:
                result = _run_served(attack, counting, image, true_class, budget)
            else:
                raise ValueError(f"unknown matrix path {path!r}")
            cells[(kind, path)] = FaultCell(
                kind=kind,
                path=path,
                result=result,
                posed=counting.count,
                injected=injector.injected,
            )
    return cells
