"""Differential lifecycle oracle: cancelled/expired == budget-k.

Session lifecycle control (DESIGN §16) parks a session at a query
boundary by throwing
:class:`~repro.classifier.blackbox.QueryBudgetExceeded` into its attack
generator -- the *same* exception, at the same program point, a
:class:`~repro.core.stepping.StepCounter` raises when a budget runs
dry.  The fidelity claim is therefore differential: a session cancelled
or expired after ``k`` charged queries must report **exactly** ``k``
and carry an :class:`~repro.attacks.base.AttackResult` bit-identical to
a fresh budget-``k`` scalar run of the same attack (same degraded
result, same perturbation state, same error).  This module checks that
claim the way :mod:`repro.testkit.batching` checks batch equivalence:
exhaustively, over a grid of

``seeds x {scalar, batched} stepping x {direct, broker} paths x
{cancel, expire} verdicts``

using the HARD_IMAGE_SEEDS cases (deterministic 288-query runs that
never succeed, so the park point is never racing a success).  The
cluster path of the same invariant is exercised end-to-end by
:func:`repro.testkit.kill.cancel_and_kill_cluster`, which DELETEs a
session on a real tier and compares the parked count against a local
budget-``k`` run.

:func:`cancel_during_flight` covers the concurrency half of the
tentpole: cancellation racing a mid-flight ``submit_many`` batch must
leave co-batched sessions untouched (they still finish with their
golden query counts).  :class:`FlightDroppingBroker` is its negative
control -- a broker that abandons flights after a cancellation MUST be
caught as poisoning, or the check has no teeth.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackResult
from repro.core.stepping import QueryBatch
from repro.runtime.cache import QueryCache
from repro.serve.broker import BrokerStopped, MicroBatchBroker
from repro.serve.sessions import (
    CANCELLED,
    DONE,
    EXPIRED,
    AttackSession,
    SessionManager,
)
from repro.testkit.differential import DEFAULT_CACHE_SIZE, result_fingerprint

#: Drive paths the parked session is swept through.
PATH_DIRECT = "direct"
PATH_BROKER = "broker"
DEFAULT_LIFECYCLE_PATHS = (PATH_DIRECT, PATH_BROKER)

#: Park verdicts under test.
KIND_CANCEL = "cancel"
KIND_EXPIRE = "expire"
DEFAULT_LIFECYCLE_KINDS = (KIND_CANCEL, KIND_EXPIRE)


@dataclass(frozen=True)
class LifecycleCell:
    """One point of the sweep grid."""

    seed: int
    path: str
    batched: bool
    kind: str
    k_target: int

    def label(self) -> str:
        stepping = "batched" if self.batched else "scalar"
        return (
            f"seed={self.seed} path={self.path} {stepping} "
            f"{self.kind}@{self.k_target}"
        )


@dataclass
class LifecycleDivergence:
    """One parked cell that disagreed with its budget-k golden run."""

    cell: LifecycleCell
    golden: Tuple
    observed: Tuple
    detail: Optional[str] = None

    def describe(self) -> str:
        lines = [
            f"lifecycle divergence at {self.cell.label()}:",
            f"  budget-k golden: {self.golden}",
            f"  parked session:  {self.observed}",
        ]
        if self.detail is not None:
            lines.append(f"  detail: {self.detail}")
        return "\n".join(lines)


@dataclass
class LifecycleReport:
    """Everything a sweep learned."""

    cells_run: int = 0
    seeds: int = 0
    divergences: List[LifecycleDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        if self.ok:
            return (
                f"lifecycle sweep OK: {self.cells_run} cells over "
                f"{self.seeds} seeds, zero divergences"
            )
        body = "\n".join(d.describe() for d in self.divergences)
        return (
            f"lifecycle sweep FAILED: {len(self.divergences)} of "
            f"{self.cells_run} cells diverged\n{body}"
        )


class _DirectScorer:
    """The bare-classifier drive path (no broker, no threads)."""

    def __init__(self, classifier):
        self.classifier = classifier

    def submit(self, image: np.ndarray) -> np.ndarray:
        return self.classifier(image)

    def submit_many(self, images: Sequence[np.ndarray]) -> List[np.ndarray]:
        return [self.classifier(image) for image in images]

    def close(self) -> None:
        pass


class _BrokerScorer:
    """The serving drive path: a started micro-batch broker."""

    def __init__(self, classifier, cache_size: int):
        self.broker = MicroBatchBroker(
            classifier, cache=QueryCache(cache_size)
        )
        self.broker.start()

    def submit(self, image: np.ndarray) -> np.ndarray:
        return self.broker.submit(image)

    def submit_many(self, images: Sequence[np.ndarray]) -> List[np.ndarray]:
        return self.broker.submit_many(images)

    def close(self) -> None:
        self.broker.stop()


class LifecycleEquivalenceRunner:
    """Sweep the park-at-boundary invariant across the lifecycle grid.

    Each cell drives an :class:`AttackSession` with the same boundary
    checks as :meth:`SessionManager.drive`, triggers its verdict
    (``cancel``: the DELETE flag; ``expire``: a deadline already in the
    past) once at least ``k_target`` queries are charged, parks it, and
    compares the parked result fingerprint against a fresh scalar
    session of the same attack driven under ``budget=k`` where ``k`` is
    the exact charged count at the park boundary.  The factories follow
    :class:`~repro.testkit.batching.BatchEquivalenceRunner`.
    """

    def __init__(
        self,
        attack_factory: Callable[[int], object],
        classifier_factory: Callable[[int], Callable],
        case_factory: Callable[[int], np.ndarray],
        seeds: Iterable[int],
        k_target: Callable[[int], int] = lambda seed: 7 + (seed % 40),
        budget: Optional[int] = None,
        paths: Sequence[str] = DEFAULT_LIFECYCLE_PATHS,
        kinds: Sequence[str] = DEFAULT_LIFECYCLE_KINDS,
        window: int = 5,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        unknown = set(paths) - set(DEFAULT_LIFECYCLE_PATHS)
        if unknown:
            raise ValueError(f"unknown drive paths: {sorted(unknown)}")
        unknown = set(kinds) - set(DEFAULT_LIFECYCLE_KINDS)
        if unknown:
            raise ValueError(f"unknown park kinds: {sorted(unknown)}")
        if window <= 0:
            raise ValueError("window must be a positive batch size")
        self.attack_factory = attack_factory
        self.classifier_factory = classifier_factory
        self.case_factory = case_factory
        self.seeds = list(seeds)
        self.k_target = k_target
        self.budget = budget
        self.paths = tuple(paths)
        self.kinds = tuple(kinds)
        self.window = window
        self.cache_size = cache_size

    # -- cell execution ------------------------------------------------------

    def _case(self, seed: int):
        classifier = self.classifier_factory(seed)
        image = np.asarray(self.case_factory(seed))
        true_class = int(np.argmax(classifier(image)))
        return classifier, image, true_class

    def run_parked(self, cell: LifecycleCell) -> AttackSession:
        """Drive one session to its park boundary and park it there."""
        classifier, image, true_class = self._case(cell.seed)
        session = AttackSession(
            f"lc-{cell.seed}",
            self.attack_factory(cell.seed),
            image,
            true_class,
            budget=self.budget,
            batch_size=self.window if cell.batched else 0,
        )
        scorer = (
            _BrokerScorer(classifier, self.cache_size)
            if cell.path == PATH_BROKER
            else _DirectScorer(classifier)
        )
        try:
            request = session.start()
            while request is not None:
                # the same per-boundary check SessionManager.drive runs
                if session.queries >= cell.k_target:
                    if cell.kind == KIND_CANCEL:
                        session.request_cancel()
                    else:
                        session.deadline_at = time.monotonic() - 1.0
                    verdict = session.lifecycle_verdict()
                    session.park(verdict)
                    break
                if isinstance(request, QueryBatch):
                    scores = scorer.submit_many(request.images())
                else:
                    scores = scorer.submit(request.image)
                request = session.advance(scores)
        finally:
            scorer.close()
        return session

    def run_golden(self, seed: int, k: int) -> AttackSession:
        """A fresh scalar session of the same attack under ``budget=k``."""
        classifier, image, true_class = self._case(seed)
        session = AttackSession(
            f"golden-{seed}",
            self.attack_factory(seed),
            image,
            true_class,
            budget=k,
            batch_size=0,
        )
        request = session.start()
        while request is not None:
            request = session.advance(classifier(request.image))
        return session

    # -- the sweep -----------------------------------------------------------

    def run(self) -> LifecycleReport:
        report = LifecycleReport(seeds=len(self.seeds))
        expected_state = {KIND_CANCEL: CANCELLED, KIND_EXPIRE: EXPIRED}
        for seed in self.seeds:
            for path in self.paths:
                for batched in (False, True):
                    for kind in self.kinds:
                        cell = LifecycleCell(
                            seed=seed,
                            path=path,
                            batched=batched,
                            kind=kind,
                            k_target=self.k_target(seed),
                        )
                        report.cells_run += 1
                        parked = self.run_parked(cell)
                        problems = []
                        if parked.state != expected_state[kind]:
                            problems.append(
                                f"parked into {parked.state!r}, expected "
                                f"{expected_state[kind]!r}"
                            )
                        observed_k = parked.queries
                        if (
                            parked.result is not None
                            and parked.result.queries != observed_k
                        ):
                            problems.append(
                                f"session counted {observed_k} queries but "
                                f"its result reports {parked.result.queries}"
                            )
                        golden = self.run_golden(seed, observed_k)
                        golden_print = result_fingerprint(golden.result)
                        observed_print = result_fingerprint(parked.result)
                        if golden.queries != observed_k:
                            problems.append(
                                f"budget-{observed_k} golden charged "
                                f"{golden.queries} queries"
                            )
                        if observed_print == golden_print and not problems:
                            continue
                        report.divergences.append(
                            LifecycleDivergence(
                                cell=cell,
                                golden=golden_print,
                                observed=observed_print,
                                detail=(
                                    "; ".join(problems) if problems else None
                                ),
                            )
                        )
        return report


def toy_lifecycle_runner(
    seeds: Iterable[int] = (1, 8, 20, 26),
    budget: int = 100000,
    **kwargs,
) -> LifecycleEquivalenceRunner:
    """The standard lifecycle sweep used by CI and the nightly.

    Every seed names a HARD_IMAGE_SEEDS case: a 6x6 image the
    fixed-sketch attack deterministically probes for 288 queries against
    the seed-1 three-class toy model without ever succeeding -- so every
    park boundary is reachable and never racing a success at exactly
    ``k`` (the one inherently ambiguous boundary, documented in
    :meth:`~repro.serve.sessions.AttackSession.park`).
    """
    from repro.attacks.fixed_sketch import FixedSketchAttack
    from repro.classifier.toy import SmoothLinearClassifier

    def classifier_factory(seed: int):
        return SmoothLinearClassifier(
            image_shape=(6, 6, 3), num_classes=3, seed=1
        )

    def case_factory(seed: int):
        return np.random.default_rng(seed).random((6, 6, 3))

    return LifecycleEquivalenceRunner(
        lambda seed: FixedSketchAttack(),
        classifier_factory,
        case_factory,
        seeds=seeds,
        budget=budget,
        **kwargs,
    )


# ----------------------------------------------------------------------
# cancellation racing a mid-flight broker batch
# ----------------------------------------------------------------------


class FlightDroppingBroker(MicroBatchBroker):
    """Negative control: abandon every flight once :attr:`drop` is set.

    Models the bug class the co-batch settlement check exists to catch:
    a cancellation path that tears down broker work other sessions are
    riding on.  After ``drop.set()`` every evaluation raises, so any
    co-batched session fails instead of settling -- a harness that does
    not flag that as poisoning is not checking anything.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.drop = threading.Event()

    def evaluate(self, images):
        if self.drop.is_set():
            raise BrokerStopped("flight dropped after cancellation")
        return super().evaluate(images)


def cancel_during_flight(
    broker_cls=MicroBatchBroker,
    drop_on_cancel: bool = False,
    progress_queries: int = 5,
    timeout: float = 60.0,
) -> Dict:
    """Cancel one of two co-batched sessions mid-flight; both must settle.

    Two deterministic HARD_IMAGE_SEEDS sessions (288 golden queries
    each) run concurrently over one broker with a latency-padded
    classifier, so their queries genuinely co-batch.  Once session A has
    charged at least ``progress_queries``, it is cancelled (and, for the
    negative control, the broker starts dropping flights).  Returns::

        {
            "cancelled_state":   A's terminal state,
            "cancelled_queries": A's charged count at the park boundary,
            "cancelled_exact":   A's parked result == budget-k golden,
            "survivor_state":    B's terminal state,
            "survivor_queries":  B's final count,
            "survivor_golden":   288,
            "settled":           B finished with the golden count,
        }

    The positive check asserts ``settled`` and ``cancelled_exact``; the
    negative control (``broker_cls=FlightDroppingBroker,
    drop_on_cancel=True``) asserts ``settled`` is False.
    """
    from repro.classifier.toy import SmoothLinearClassifier
    from repro.serve.server import PerImageLatencyClassifier
    from repro.testkit.kill import HARD_IMAGE_SEEDS

    classifier = PerImageLatencyClassifier(
        SmoothLinearClassifier(image_shape=(6, 6, 3), num_classes=3, seed=1),
        latency=0.002,
    )
    broker = broker_cls(classifier, cache=None)
    broker.start()
    manager = SessionManager(broker, max_workers=4)
    try:
        from repro.attacks.fixed_sketch import FixedSketchAttack

        sessions = []
        for image_seed in HARD_IMAGE_SEEDS[:2]:
            image = np.random.default_rng(image_seed).random((6, 6, 3))
            sessions.append(
                manager.create(
                    FixedSketchAttack(),
                    image,
                    int(np.argmax(classifier(image))),
                    budget=100000,
                )
            )
        victim, survivor = sessions
        futures = [manager.start(session) for session in sessions]
        deadline = time.monotonic() + timeout
        while victim.queries < progress_queries:
            if time.monotonic() > deadline:
                raise TimeoutError("victim session made no progress")
            time.sleep(0.005)
        victim.request_cancel()
        if drop_on_cancel and hasattr(broker, "drop"):
            broker.drop.set()
        for future in futures:
            future.result(timeout=timeout)
    finally:
        manager.shutdown()
        broker.stop()

    cancelled_exact = False
    if victim.result is not None:
        golden = toy_lifecycle_runner().run_golden(
            HARD_IMAGE_SEEDS[0], victim.queries
        )
        cancelled_exact = result_fingerprint(
            victim.result
        ) == result_fingerprint(golden.result)
    survivor_queries = (
        survivor.result.queries if survivor.result is not None else None
    )
    return {
        "cancelled_state": victim.state,
        "cancelled_queries": victim.queries,
        "cancelled_exact": cancelled_exact,
        "survivor_state": survivor.state,
        "survivor_queries": survivor_queries,
        "survivor_golden": 288,
        "settled": survivor.state == DONE and survivor_queries == 288,
    }
