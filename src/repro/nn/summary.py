"""Human-readable model summaries."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Module


def describe(model: Module, max_depth: int = 3) -> str:
    """An indented tree of the model's modules and parameter counts.

    Example output::

        MiniVGG  (23,466 params)
          features: Sequential  (23,136 params)
            layer0: Sequential  (448 params)
            ...
          head: Linear  (330 params)
    """
    lines: List[str] = []

    def visit(module: Module, name: str, depth: int) -> None:
        count = module.num_parameters()
        label = f"{name}: " if name else ""
        lines.append(
            f"{'  ' * depth}{label}{type(module).__name__}"
            f"  ({count:,} params)"
        )
        if depth >= max_depth:
            return
        for child_name, child in module._modules.items():
            visit(child, child_name, depth + 1)

    visit(model, "", 0)
    return "\n".join(lines)


def parameter_table(model: Module) -> str:
    """Every named parameter with its shape and size."""
    rows = []
    total = 0
    for name, param in model.named_parameters():
        size = int(np.prod(param.shape))
        total += size
        rows.append(f"{name:50s} {str(param.shape):20s} {size:>10,}")
    rows.append(f"{'total':50s} {'':20s} {total:>10,}")
    return "\n".join(rows)
