"""Stateless tensor operations shared by layers and losses.

Convolutions are implemented with im2col / col2im so that the heavy lifting
is a single matrix multiply, which is the only way to get acceptable CPU
throughput out of numpy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size {out} for input {size}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out


class Im2colWorkspace:
    """Reusable buffers for repeated same-shape :func:`im2col` calls.

    Inference serves many batches of identical shape (the broker pads
    its batches up to a fixed policy size, attacks resubmit same-sized
    images), so the padded canvas and the unfolded column matrix can be
    allocated once and overwritten on every call instead of reallocated.
    The padded canvas additionally keeps its zero border across calls --
    only the interior is rewritten -- which removes the per-call
    zero-fill entirely.

    The returned column matrix aliases the workspace, so callers must
    consume it before the next call on the same workspace.  Layers hold
    one workspace each and the model lock serializes forward passes, so
    this is safe wherever the inference fast path runs.
    """

    __slots__ = ("_key", "_padded", "_cols")

    def __init__(self):
        self._key = None
        self._padded: np.ndarray = None
        self._cols: np.ndarray = None

    def clear(self) -> None:
        self._key = None
        self._padded = None
        self._cols = None


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    workspace: Im2colWorkspace = None,
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)``.  With a ``workspace``,
    repeated calls on same-shape inputs reuse its buffers (``cols`` then
    aliases the workspace and is only valid until the next call).
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    key = (x.shape, x.dtype, kernel, stride, padding)
    reuse = workspace is not None and workspace._key == key
    if padding > 0:
        if reuse:
            # border stayed zero from the previous call; refill interior
            padded = workspace._padded
        else:
            # manual zero-fill: np.pad is several times slower for this case
            padded = np.zeros(
                (n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype
            )
            if workspace is not None:
                workspace._padded = padded
        padded[:, :, padding : padding + h, padding : padding + w] = x
        x = padded
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    shuffled = windows.transpose(0, 2, 3, 1, 4, 5)
    if workspace is not None:
        if not reuse:
            workspace._cols = np.empty(
                (n * out_h * out_w, c * kernel * kernel), dtype=x.dtype
            )
            workspace._key = key
        cols = workspace._cols
        np.copyto(cols.reshape(n, out_h, out_w, c, kernel, kernel), shuffled)
        return cols, out_h, out_w
    cols = shuffled.reshape(n * out_h * out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back into an image, summing overlapping contributions.

    The adjoint of :func:`im2col`; used in convolution backward passes.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += cols6[:, :, :, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
