"""Learning-rate schedulers.

Schedulers mutate an optimizer's ``lr`` in place; call :meth:`step` once
per epoch.  They complement the simple step-decay built into
:class:`~repro.nn.trainer.TrainConfig`.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class Scheduler:
    """Base class tracking the epoch counter and the initial rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.rate(self.epoch)
        return self.optimizer.lr

    def rate(self, epoch: int) -> float:
        raise NotImplementedError


class StepDecay(Scheduler):
    """Multiply the rate by ``factor`` every ``period`` epochs."""

    def __init__(self, optimizer: Optimizer, period: int, factor: float = 0.1):
        super().__init__(optimizer)
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        self.period = period
        self.factor = factor

    def rate(self, epoch: int) -> float:
        return self.base_lr * self.factor ** (epoch // self.period)


class CosineAnnealing(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def rate(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupWrapper(Scheduler):
    """Linear warmup for ``warmup_epochs``, then delegate to ``inner``."""

    def __init__(self, inner: Scheduler, warmup_epochs: int):
        super().__init__(inner.optimizer)
        if warmup_epochs < 0:
            raise ValueError("warmup_epochs must be non-negative")
        self.inner = inner
        self.warmup_epochs = warmup_epochs

    def rate(self, epoch: int) -> float:
        if self.warmup_epochs and epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        return self.inner.rate(epoch - self.warmup_epochs)
