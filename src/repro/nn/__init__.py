"""A small, from-scratch numpy deep-learning framework.

This subpackage is the substrate that stands in for PyTorch in the paper's
evaluation: it provides everything needed to define, train, serialize and
run the convolutional classifiers that the one-pixel attacks target.

The design follows the familiar layer-object idiom: a :class:`Module` owns
:class:`Parameter` objects, ``forward`` computes outputs while caching what
``backward`` needs, and optimizers update parameters in place.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.shape import Flatten
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import CosineAnnealing, StepDecay, WarmupWrapper
from repro.nn.serialization import load_state, save_state
from repro.nn.summary import describe, parameter_table
from repro.nn.trainer import Trainer, TrainConfig

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Residual",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "CrossEntropyLoss",
    "SGD",
    "Adam",
    "save_state",
    "load_state",
    "Trainer",
    "TrainConfig",
    "Dropout",
    "StepDecay",
    "CosineAnnealing",
    "WarmupWrapper",
    "describe",
    "parameter_table",
]
