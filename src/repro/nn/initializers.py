"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def kaiming_normal(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int
) -> np.ndarray:
    """He initialization for ReLU networks: ``N(0, sqrt(2 / fan_in))``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot uniform initialization: ``U(-a, a)`` with ``a = sqrt(6/(in+out))``."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
