"""Composite layers: sequences and residual connections."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module


class Sequential(Module):
    """Apply child modules in order; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(self.layers):
            self.register_module(f"layer{index}", layer)

    def append(self, layer: Module) -> "Sequential":
        self.register_module(f"layer{len(self.layers)}", layer)
        self.layers.append(layer)
        return self

    def _freeze_hook(self) -> None:
        # ahead-of-time conv+BN folding: a batch norm directly following
        # an affine layer (conv-BN[-ReLU] is the dominant block in every
        # model here) folds its eval scale/shift into that layer's
        # weights, so the frozen forward skips the normalization passes
        for previous, layer in zip(self.layers, self.layers[1:]):
            if isinstance(layer, BatchNorm2d):
                layer.fold_into(previous)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class Residual(Module):
    """``y = body(x) + shortcut(x)`` with an identity default shortcut.

    The shortcut must produce the same shape as the body (use a 1x1
    strided convolution when the body changes shape).
    """

    def __init__(self, body: Module, shortcut: Module = None):
        super().__init__()
        self.body = body
        self.shortcut = shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body(x)
        skip = self.shortcut(x) if self.shortcut is not None else x
        if out.shape != skip.shape:
            raise ValueError(
                f"residual shape mismatch: body {out.shape} vs skip {skip.shape}"
            )
        return out + skip

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_body = self.body.backward(grad_output)
        if self.shortcut is not None:
            grad_skip = self.shortcut.backward(grad_output)
        else:
            grad_skip = grad_output
        return grad_body + grad_skip
