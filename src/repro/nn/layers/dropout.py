"""Dropout regularization."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout: active in training, the identity in eval mode.

    Each unit is zeroed with probability ``p`` and survivors are scaled
    by ``1 / (1 - p)`` so expected activations match eval behaviour.  The
    generator is owned by the layer (seeded at construction) so training
    stays deterministic.
    """

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            return x  # identity; leave the RNG and mask state untouched
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
