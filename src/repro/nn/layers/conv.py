"""2-D convolution via im2col."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.functional import Im2colWorkspace, col2im, im2col
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Square-kernel 2-D convolution over (N, C, H, W) inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Side of the square kernel.
    stride, padding:
        Usual convolution hyper-parameters (symmetric zero padding).
    bias:
        Whether to add a per-channel bias.  Layers followed by batch norm
        conventionally disable it.
    rng:
        Generator for Kaiming initialization; a default generator is used
        when omitted (construction is then non-deterministic).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channel counts and kernel size must be positive")
        if stride <= 0 or padding < 0:
            raise ValueError("stride must be positive and padding non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            initializers.kaiming_normal(
                rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in
            )
        )
        self.bias = Parameter(initializers.zeros((out_channels,))) if bias else None
        self._cache = None
        self._folded_weight = None  # BN folded in at freeze time, else None
        self._folded_bias = None
        self._workspace = None

    def _freeze_hook(self) -> None:
        self._workspace = Im2colWorkspace()

    def _unfreeze_hook(self) -> None:
        self._folded_weight = None
        self._folded_bias = None
        self._workspace = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {x.shape}"
            )
        if self.inference:
            return self._forward_inference(x)
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.bias is not None:
            out += self.bias.data
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols)
        return out

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Forward without backward caches, with folded BN and a reused
        im2col workspace.  The column matrix aliases the workspace and
        is consumed by the matmul before this method returns."""
        cols, out_h, out_w = im2col(
            x, self.kernel_size, self.stride, self.padding,
            workspace=self._workspace,
        )
        weight = self._folded_weight if self._folded_weight is not None else (
            self.weight.data
        )
        out = cols @ weight.reshape(self.out_channels, -1).T
        if self._folded_bias is not None:
            out += self._folded_bias
        elif self.bias is not None:
            out += self.bias.data
        n = x.shape[0]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.inference:
            raise RuntimeError(
                "backward is unavailable in inference mode; call unfreeze()"
            )
        x_shape, cols = self._cache
        n, _, out_h, out_w = grad_output.shape
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(
            n * out_h * out_w, self.out_channels
        )
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat
        return col2im(grad_cols, x_shape, self.kernel_size, self.stride, self.padding)
