"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            return np.maximum(x, 0.0)  # single pass, no backward mask
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, 0.0)


class LeakyReLU(Module):
    """Leaky rectified linear unit with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            return np.where(x > 0, x, self.alpha * x)
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.alpha * grad_output)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self):
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        ex = np.exp(x[~positive])
        out[~positive] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self):
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._out**2)
