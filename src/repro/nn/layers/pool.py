"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        # treat channels as batch so each channel pools independently
        reshaped = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(
            reshaped, self.kernel_size, self.stride, self.padding
        )
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = (x.shape, cols.shape, argmax, out_h, out_w)
        return out.reshape(n * c, out_h, out_w).reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_shape, cols_shape, argmax, out_h, out_w = self._cache
        n, c, h, w = x_shape
        grad_cols = np.zeros(cols_shape, dtype=grad_output.dtype)
        grad_flat = grad_output.reshape(-1)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_flat
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_x.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        reshaped = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(
            reshaped, self.kernel_size, self.stride, self.padding
        )
        out = cols.mean(axis=1)
        self._cache = (x.shape, cols.shape)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_shape, cols_shape = self._cache
        n, c, h, w = x_shape
        window = self.kernel_size * self.kernel_size
        grad_cols = np.repeat(
            grad_output.reshape(-1, 1) / window, window, axis=1
        ).reshape(cols_shape)
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_x.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (N, C)."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._cache
        scale = 1.0 / (h * w)
        return np.broadcast_to(
            grad_output[:, :, None, None] * scale, (n, c, h, w)
        ).copy()
