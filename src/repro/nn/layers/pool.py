"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module


class _PoolBase(Module):
    """Shared inference-path machinery for the square-window poolers.

    Training mode unfolds windows with im2col so backward can scatter
    through the cached column layout.  Inference mode never needs that
    layout, so it instead accumulates over the ``kernel**2`` shifted
    strided slices of the (optionally padded) input -- no giant column
    matrix, no ``(N*C, 1, H, W)`` reshape copy -- which is several times
    faster on the stride-1 pools inside inception blocks.
    """

    def __init__(self, kernel_size: int, stride: int = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None
        self._padded = None  # reusable padded canvas for the frozen path
        self._out = None  # reusable output buffer for the frozen path

    def _unfreeze_hook(self) -> None:
        self._padded = None
        self._out = None

    def _unfold(self, x: np.ndarray):
        n, c, h, w = x.shape
        # treat channels as batch so each channel pools independently
        reshaped = x.reshape(n * c, 1, h, w)
        return im2col(reshaped, self.kernel_size, self.stride, self.padding)

    def _windows(self, x: np.ndarray):
        """Yield the kernel**2 shifted slices covering every window."""
        n, c, h, w = x.shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        if self.padding > 0:
            shape = (n, c, h + 2 * self.padding, w + 2 * self.padding)
            if self._padded is None or self._padded.shape != shape or (
                self._padded.dtype != x.dtype
            ):
                self._padded = np.zeros(shape, dtype=x.dtype)
            self._padded[
                :, :, self.padding : self.padding + h,
                self.padding : self.padding + w,
            ] = x
            x = self._padded
        if self._out is None or self._out.shape != (n, c, out_h, out_w) or (
            self._out.dtype != x.dtype
        ):
            self._out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
        slices = (
            x[
                :, :, ki : ki + self.stride * out_h : self.stride,
                kj : kj + self.stride * out_w : self.stride,
            ]
            for ki in range(self.kernel_size)
            for kj in range(self.kernel_size)
        )
        return slices, self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MaxPool2d(_PoolBase):
    """Max pooling with a square window."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            slices, out = self._windows(x)
            np.copyto(out, next(slices))
            for window in slices:
                np.maximum(out, window, out=out)
            return out
        n, c, h, w = x.shape
        cols, out_h, out_w = self._unfold(x)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = (x.shape, cols.shape, argmax, out_h, out_w)
        return out.reshape(n * c, out_h, out_w).reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_shape, cols_shape, argmax, out_h, out_w = self._cache
        n, c, h, w = x_shape
        grad_cols = np.zeros(cols_shape, dtype=grad_output.dtype)
        grad_flat = grad_output.reshape(-1)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_flat
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_x.reshape(n, c, h, w)


class AvgPool2d(_PoolBase):
    """Average pooling with a square window."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.inference:
            slices, out = self._windows(x)
            np.copyto(out, next(slices))
            for window in slices:
                out += window
            out *= 1.0 / (self.kernel_size * self.kernel_size)
            return out
        n, c, h, w = x.shape
        cols, out_h, out_w = self._unfold(x)
        out = cols.mean(axis=1)
        self._cache = (x.shape, cols.shape)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_shape, cols_shape = self._cache
        n, c, h, w = x_shape
        window = self.kernel_size * self.kernel_size
        grad_cols = np.repeat(
            grad_output.reshape(-1, 1) / window, window, axis=1
        ).reshape(cols_shape)
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_x.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (N, C)."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.inference:
            self._cache = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._cache
        scale = 1.0 / (h * w)
        return np.broadcast_to(
            grad_output[:, :, None, None] * scale, (n, c, h, w)
        ).copy()
