"""Batch normalization."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization over (N, C, H, W) inputs.

    Running statistics are updated with exponential averaging during
    training and used verbatim in evaluation mode, matching the standard
    semantics.
    """

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(initializers.ones((num_features,)))
        self.beta = Parameter(initializers.zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (N, {self.num_features}, H, W) input, got {x.shape}"
            )
        if self.training:
            axes = (0, 2, 3)
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.shape[0] * x.shape[2] * x.shape[3]
            # unbiased variance for the running estimate, as in torch
            unbiased = var * count / max(count - 1, 1)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased
            )
        else:
            # inference fast path: fold normalization and affine into one
            # fused multiply-add (x_hat is reconstructed lazily if a
            # backward pass is ever requested in eval mode)
            inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
            scale = (self.gamma.data * inv_std).astype(x.dtype)
            shift = (self.beta.data - self.running_mean * scale).astype(x.dtype)
            out = x * scale[None, :, None, None]
            out += shift[None, :, None, None]
            self._cache = ("eval", x, inv_std)
            return out
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        self._cache = ("train", x_hat, inv_std)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mode, cached, inv_std = self._cache
        axes = (0, 2, 3)
        count = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]
        if mode == "eval":
            x_hat = (
                cached - self.running_mean[None, :, None, None]
            ) * inv_std[None, :, None, None]
            self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
            self.beta.grad += grad_output.sum(axis=axes)
            return grad_output * (self.gamma.data * inv_std)[None, :, None, None]
        x_hat = cached
        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        grad_xhat = grad_output * self.gamma.data[None, :, None, None]
        sum_g = grad_xhat.sum(axis=axes, keepdims=True)
        sum_gx = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (grad_xhat - sum_g / count - x_hat * sum_gx / count)
        )
