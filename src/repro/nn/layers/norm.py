"""Batch normalization."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization over (N, C, H, W) inputs.

    Running statistics are updated with exponential averaging during
    training and used verbatim in evaluation mode, matching the standard
    semantics.  ``momentum=0.0`` freezes the running statistics (the
    batch still normalizes by its own moments in training mode), which
    is a legitimate configuration for fine-tuning and exactly what the
    inference freeze path relies on.
    """

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum <= 1.0:
            raise ValueError("momentum must be in [0, 1]")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(initializers.ones((num_features,)))
        self.beta = Parameter(initializers.zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache = None
        self._folded = False
        self._scale = None
        self._shift = None

    # -- eval-mode fold ----------------------------------------------------

    def _eval_scale_shift(self):
        """Eval normalization as one fused multiply-add, in float64.

        The scale/shift fold is always computed at float64 regardless of
        the parameter dtype: downcasting the *intermediates* (as an
        ``astype(x.dtype)`` before the multiply-add would) makes float32
        eval scores drift from the train-path normalization formula more
        than the multiply-add itself requires.  Callers cast the final
        output, not the fold.
        """
        inv_std = 1.0 / np.sqrt(self.running_var.astype(np.float64) + self.eps)
        scale = self.gamma.data.astype(np.float64) * inv_std
        shift = (
            self.beta.data.astype(np.float64)
            - self.running_mean.astype(np.float64) * scale
        )
        return scale, shift, inv_std

    def fold_into(self, preceding) -> bool:
        """Fold this layer's eval transform into a preceding affine layer.

        ``preceding`` must expose a ``weight`` :class:`Parameter` whose
        leading axis is the output-channel axis this layer normalizes
        (a :class:`~repro.nn.layers.conv.Conv2d` or
        :class:`~repro.nn.layers.linear.Linear`), plus an optional
        ``bias``.  The fold is computed in float64 from the *current*
        parameters and stored in side buffers (``_folded_weight`` /
        ``_folded_bias``) that the preceding layer's inference forward
        picks up -- trainable parameters are never touched, so
        unfreezing restores exact training behaviour.  Afterwards this
        layer passes frozen inputs through unchanged.

        Returns ``False`` (and folds nothing) when ``preceding`` has no
        compatible weight.
        """
        weight = getattr(preceding, "weight", None)
        if not isinstance(weight, Parameter) or weight.data.ndim < 2:
            return False
        if weight.data.shape[0] != self.num_features:
            return False
        scale, shift, _ = self._eval_scale_shift()
        folded = weight.data.astype(np.float64) * scale.reshape(
            (-1,) + (1,) * (weight.data.ndim - 1)
        )
        bias = getattr(preceding, "bias", None)
        if isinstance(bias, Parameter):
            folded_bias = shift + scale * bias.data.astype(np.float64)
        else:
            folded_bias = shift
        dtype = weight.data.dtype
        preceding._folded_weight = folded.astype(dtype)
        preceding._folded_bias = folded_bias.astype(dtype)
        self._folded = True
        return True

    def _freeze_hook(self) -> None:
        # precompute the fused eval transform once; if a container folds
        # this layer into its predecessor these go unused (forward then
        # degenerates to the identity)
        scale, shift, _ = self._eval_scale_shift()
        self._scale = scale
        self._shift = shift

    def _unfreeze_hook(self) -> None:
        self._folded = False
        self._scale = None
        self._shift = None

    # -- compute -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (N, {self.num_features}, H, W) input, got {x.shape}"
            )
        if self.inference:
            if self._folded:
                return x  # absorbed by the preceding conv/linear weights
            out = x * self._scale[None, :, None, None]
            out += self._shift[None, :, None, None]
            return out if out.dtype == x.dtype else out.astype(x.dtype)
        if self.training:
            axes = (0, 2, 3)
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.shape[0] * x.shape[2] * x.shape[3]
            # unbiased variance for the running estimate, as in torch
            unbiased = var * count / max(count - 1, 1)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased
            )
        else:
            # eval fast path: normalization and affine as one fused
            # multiply-add (x_hat is reconstructed lazily if a backward
            # pass is ever requested in eval mode)
            scale, shift, inv_std = self._eval_scale_shift()
            out = x * scale[None, :, None, None]
            out += shift[None, :, None, None]
            self._cache = ("eval", x, inv_std)
            return out if out.dtype == x.dtype else out.astype(x.dtype)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        self._cache = ("train", x_hat, inv_std)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.inference:
            raise RuntimeError(
                "backward is unavailable in inference mode; call unfreeze()"
            )
        mode, cached, inv_std = self._cache
        axes = (0, 2, 3)
        count = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]
        if mode == "eval":
            x_hat = (
                cached - self.running_mean[None, :, None, None]
            ) * inv_std[None, :, None, None]
            self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
            self.beta.grad += grad_output.sum(axis=axes)
            return grad_output * (self.gamma.data * inv_std)[None, :, None, None]
        x_hat = cached
        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        grad_xhat = grad_output * self.gamma.data[None, :, None, None]
        sum_g = grad_xhat.sum(axis=axes, keepdims=True)
        sum_gx = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (grad_xhat - sum_g / count - x_hat * sum_gx / count)
        )
