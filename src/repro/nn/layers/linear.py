"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` over (N, in_features) inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.kaiming_normal(rng, (out_features, in_features), in_features)
        )
        self.bias = Parameter(initializers.zeros((out_features,))) if bias else None
        self._cache = None
        self._folded_weight = None  # BN folded in at freeze time, else None
        self._folded_bias = None

    def _unfreeze_hook(self) -> None:
        self._folded_weight = None
        self._folded_bias = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected (N, {self.in_features}) input, got {x.shape}"
            )
        if self.inference:
            weight = self._folded_weight if self._folded_weight is not None else (
                self.weight.data
            )
            out = x @ weight.T
            if self._folded_bias is not None:
                out += self._folded_bias
            elif self.bias is not None:
                out += self.bias.data
            return out
        self._cache = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.inference:
            raise RuntimeError(
                "backward is unavailable in inference mode; call unfreeze()"
            )
        x = self._cache
        self.weight.grad += grad_output.T @ x
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data
