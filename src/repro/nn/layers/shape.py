"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all non-batch dimensions: (N, ...) -> (N, prod(...))."""

    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._shape)


class Concat(Module):
    """Concatenate the outputs of parallel branches along the channel axis.

    Used by inception modules and dense blocks.  ``forward`` takes the input
    once and routes it through every branch; ``backward`` splits the gradient
    and sums the branch input-gradients.
    """

    def __init__(self, branches):
        super().__init__()
        self.branches = list(branches)
        for index, branch in enumerate(self.branches):
            self.register_module(f"branch{index}", branch)
        self._splits = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        outputs = [branch(x) for branch in self.branches]
        self._splits = np.cumsum([out.shape[1] for out in outputs])[:-1]
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grads = np.split(grad_output, self._splits, axis=1)
        total = None
        for branch, grad in zip(self.branches, grads):
            grad_in = branch.backward(np.ascontiguousarray(grad))
            total = grad_in if total is None else total + grad_in
        return total
