"""Layer implementations for the numpy framework."""

from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.shape import Flatten

__all__ = [
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "Residual",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
]
