"""Loss functions.

Losses follow the same forward/backward protocol as layers but take the
target as a second argument and return a scalar.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax


class CrossEntropyLoss:
    """Softmax cross entropy over integer class labels, mean-reduced.

    Supports optional label smoothing, which both regularizes training and
    keeps the trained classifiers from saturating to razor-thin decision
    margins (real pretrained networks are similarly calibrated, and the
    one-pixel attack literature depends on non-degenerate margins).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels must be (N,), got {labels.shape} for logits {logits.shape}"
            )
        n, c = logits.shape
        log_probs = log_softmax(logits, axis=1)
        smooth = self.label_smoothing
        target = np.full((n, c), smooth / c, dtype=np.float64)
        target[np.arange(n), labels] += 1.0 - smooth
        loss = -(target * log_probs).sum(axis=1).mean()
        self._cache = (logits, target)
        return float(loss)

    def backward(self) -> np.ndarray:
        logits, target = self._cache
        n = logits.shape[0]
        probs = softmax(logits, axis=1)
        return (probs - target) / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)
