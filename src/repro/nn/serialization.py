"""Weight serialization to ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn.module import Module


def save_state(model: Module, path: Union[str, os.PathLike]) -> None:
    """Save a model's parameters and buffers to a compressed ``.npz``."""
    state = model.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state(model: Module, path: Union[str, os.PathLike]) -> Module:
    """Load parameters and buffers saved by :func:`save_state` into ``model``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
