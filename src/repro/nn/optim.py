"""Gradient-based optimizers."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds the parameter list and a ``step``/``zero_grad`` API."""

    def __init__(self, parameters: List[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update
