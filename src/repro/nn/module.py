"""Base classes for the numpy neural-network framework.

A :class:`Module` is a node in a tree of layers.  Child modules and
parameters are discovered by attribute inspection (registered at
``__setattr__`` time), which keeps layer definitions declarative::

    class Block(Module):
        def __init__(self):
            super().__init__()
            self.conv = Conv2d(3, 16, 3, padding=1)
            self.bn = BatchNorm2d(16)

Every module implements ``forward`` (caching whatever ``backward`` needs on
``self``) and ``backward`` (consuming the cache, accumulating parameter
gradients, and returning the gradient with respect to its input).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np


class Parameter:
    """A trainable tensor: a value array plus an accumulated gradient."""

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True
        self.inference = False

    # -- registration ------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module that is not a plain attribute.

        Containers holding modules in lists use this so traversal still
        finds every child.
        """
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ---------------------------------------------------------

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant, depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for module in self.modules():
            params.extend(module._parameters.values())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield persistent non-trainable state (e.g. batch-norm statistics)."""
        for name in getattr(self, "_buffer_names", ()):
            yield (f"{prefix}{name}", getattr(self, name))
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # -- mode switching ----------------------------------------------------

    def train(self) -> "Module":
        self.unfreeze()  # training always leaves inference mode first
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def freeze(self) -> "Module":
        """Switch the model to the inference fast path.

        Freezing implies :meth:`eval` and additionally:

        - every layer's forward skips backward-cache construction (the
          arrays ``backward`` would need are simply never stored);
        - eval-mode batch-norm scale/shift is folded ahead of time into
          the weights of a directly preceding convolution or linear
          layer, removing those normalization passes entirely (see
          :meth:`~repro.nn.layers.norm.BatchNorm2d.fold_into`);
        - convolution and pooling layers keep a reusable im2col
          workspace so repeated same-shape batches stop reallocating.

        Trainable parameters are never mutated: folded weights live in
        side buffers, so :meth:`unfreeze` (or :meth:`train`, which
        unfreezes implicitly) restores exact training behaviour.
        Idempotent; re-freezing recomputes the folds from the current
        parameters.  ``backward`` is unavailable while frozen.
        """
        self.eval()
        for module in self.modules():
            module.inference = True
        for module in self.modules():
            module._freeze_hook()
        return self

    def unfreeze(self) -> "Module":
        """Leave the inference fast path (stays in eval mode)."""
        for module in self.modules():
            if module.inference:
                module.inference = False
                module._unfreeze_hook()
        return self

    @property
    def frozen(self) -> bool:
        return self.inference

    def _freeze_hook(self) -> None:
        """Per-layer freeze-time preparation (fold, workspaces)."""

    def _unfreeze_hook(self) -> None:
        """Discard per-layer frozen state."""

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- compute -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- state dict --------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data for name, param in self.named_parameters()}
        state.update({name: buf for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {name: None for name, _ in self.named_buffers()}
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value
        self._load_buffers(state, prefix="")
        if self.inference:
            self.freeze()  # refresh folded weights from the new state

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name in getattr(self, "_buffer_names", ()):
            key = f"{prefix}{name}"
            value = np.asarray(state[key], dtype=np.float64)
            object.__setattr__(self, name, value)
        for child_name, child in self._modules.items():
            child._load_buffers(state, prefix=f"{prefix}{child_name}.")

    def astype(self, dtype) -> "Module":
        """Cast all parameters and buffers in place (e.g. to float32).

        Intended for inference: float32 roughly halves matmul time on
        CPU.  Gradients are re-allocated in the new dtype, so training
        afterwards works but at the reduced precision.
        """
        for param in self.parameters():
            param.data = param.data.astype(dtype)
            param.grad = param.grad.astype(dtype)
        for module in self.modules():
            for name in getattr(module, "_buffer_names", ()):
                object.__setattr__(
                    module, name, getattr(module, name).astype(dtype)
                )
        if self.inference:
            self.freeze()  # recompute folded weights in the new dtype
        return self

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"
