"""A minimal training loop for the numpy framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer`.

    ``lr_decay_epochs`` lists epochs after which the learning rate is
    multiplied by ``lr_decay_factor`` (a simple step schedule).
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 0.0
    label_smoothing: float = 0.0
    lr_decay_epochs: List[int] = field(default_factory=list)
    lr_decay_factor: float = 0.1
    shuffle: bool = True
    augment: bool = False  # flips / shifts / brightness on each batch
    seed: int = 0


@dataclass
class EpochStats:
    """Per-epoch training metrics."""

    epoch: int
    loss: float
    accuracy: float


class Trainer:
    """Trains a classifier with Adam and softmax cross entropy.

    The trainer owns no global state; given the same model initialization,
    data and config seed, training is fully deterministic.
    """

    def __init__(
        self,
        model: Module,
        config: TrainConfig,
        optimizer: Optional[Optimizer] = None,
        on_epoch_end: Optional[Callable[[EpochStats], None]] = None,
    ):
        self.model = model
        self.config = config
        self.loss_fn = CrossEntropyLoss(label_smoothing=config.label_smoothing)
        self.optimizer = optimizer or Adam(
            model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )
        self.on_epoch_end = on_epoch_end
        self.history: List[EpochStats] = []

    def fit(self, images: np.ndarray, labels: np.ndarray) -> List[EpochStats]:
        """Train on (N, C, H, W) images with integer labels."""
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        rng = np.random.default_rng(self.config.seed)
        n = images.shape[0]
        for epoch in range(self.config.epochs):
            if epoch in self.config.lr_decay_epochs:
                self.optimizer.lr *= self.config.lr_decay_factor
            order = rng.permutation(n) if self.config.shuffle else np.arange(n)
            self.model.train()
            total_loss = 0.0
            total_correct = 0
            for start in range(0, n, self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                x = images[batch]
                y = labels[batch]
                if self.config.augment:
                    # augmentation operates channels-last
                    from repro.data.augment import augment_batch

                    x = augment_batch(
                        np.ascontiguousarray(x.transpose(0, 2, 3, 1)), rng
                    ).transpose(0, 3, 1, 2)
                logits = self.model(x)
                loss = self.loss_fn(logits, y)
                self.optimizer.zero_grad()
                self.model.backward(self.loss_fn.backward())
                self.optimizer.step()
                total_loss += loss * len(batch)
                total_correct += int((logits.argmax(axis=1) == y).sum())
            stats = EpochStats(
                epoch=epoch, loss=total_loss / n, accuracy=total_correct / n
            )
            self.history.append(stats)
            if self.on_epoch_end is not None:
                self.on_epoch_end(stats)
        return self.history

    def evaluate(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int = 256
    ) -> float:
        """Return classification accuracy in evaluation mode."""
        self.model.eval()
        correct = 0
        for start in range(0, images.shape[0], batch_size):
            x = images[start : start + batch_size]
            y = labels[start : start + batch_size]
            logits = self.model(x)
            correct += int((logits.argmax(axis=1) == y).sum())
        return correct / images.shape[0]
