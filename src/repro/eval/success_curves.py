"""Figure 3: success rate as a function of the query budget.

For each classifier the paper runs OPPSLA's synthesized program and the
two baselines (Sparse-RS, SuOPA) on every correctly-classified test image
with a 10000-query cap, then reports the success rate at budgets 100, 500
and 10000 (500 and 10000 for ImageNet).  One run per attack suffices: the
success-rate-at-q curve is monotone in q and derived from per-image query
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.attacks.base import OnePixelAttack
from repro.eval.runner import AttackRunSummary, Classifier, TestPair, attack_dataset

#: the paper's reported thresholds
CIFAR_THRESHOLDS = (100, 500, 10000)
IMAGENET_THRESHOLDS = (500, 10000)


@dataclass
class SuccessCurve:
    """One attack's success-rate curve on one classifier."""

    attack_name: str
    summary: AttackRunSummary
    thresholds: Sequence[int]

    @property
    def rates(self) -> List[float]:
        return self.summary.curve(self.thresholds)

    def rate_at(self, threshold: int) -> float:
        return self.summary.success_rate_at(threshold)


def success_curves(
    attacks: Sequence[OnePixelAttack],
    classifier: Classifier,
    test_pairs: Sequence[TestPair],
    thresholds: Sequence[int] = CIFAR_THRESHOLDS,
    budget: int = None,
) -> Dict[str, SuccessCurve]:
    """Run every attack once and derive its success curve.

    ``budget`` defaults to the largest threshold (the paper's cap).
    """
    if not thresholds:
        raise ValueError("need at least one threshold")
    budget = budget if budget is not None else max(thresholds)
    curves: Dict[str, SuccessCurve] = {}
    for attack in attacks:
        summary = attack_dataset(attack, classifier, test_pairs, budget=budget)
        curves[attack.name] = SuccessCurve(
            attack_name=attack.name, summary=summary, thresholds=tuple(thresholds)
        )
    return curves
