"""Table 2 (Appendix C): the value of the conditions and the search.

Per classifier, four approaches are compared on average and median query
counts over the test set:

- **OPPSLA**: the synthesized program;
- **Sketch+False**: the fixed prioritization (no synthesis queries);
- **Sketch+Random**: best of N random instantiations;
- **Sparse-RS**: the external state of the art.

All sketch variants share the same success rate by completeness, so the
comparison is purely about query counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.attacks.base import OnePixelAttack
from repro.eval.runner import Classifier, TestPair, attack_dataset


@dataclass
class AblationRow:
    """One (classifier, approach) row of Table 2.

    ``avg_queries``/``median_queries`` follow the paper (over successes
    only); ``penalized_avg_queries`` additionally charges failures their
    actual query cost, which keeps rows comparable when approaches differ
    in success rate (see
    :attr:`repro.eval.runner.AttackRunSummary.penalized_avg_queries`).
    """

    classifier: str
    approach: str
    avg_queries: float
    median_queries: float
    penalized_avg_queries: float
    success_rate: float


def ablation_table(
    classifier_name: str,
    classifier: Classifier,
    attacks: Sequence[OnePixelAttack],
    test_pairs: Sequence[TestPair],
    budget: Optional[int] = None,
) -> List[AblationRow]:
    """Run each approach on one classifier's test set."""
    rows = []
    for attack in attacks:
        summary = attack_dataset(attack, classifier, test_pairs, budget=budget)
        rows.append(
            AblationRow(
                classifier=classifier_name,
                approach=attack.name,
                avg_queries=summary.avg_queries,
                median_queries=summary.median_queries,
                penalized_avg_queries=summary.penalized_avg_queries,
                success_rate=summary.success_rate,
            )
        )
    return rows
