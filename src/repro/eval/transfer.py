"""Table 1: transferability of synthesized programs across classifiers.

A program synthesized for classifier A is run against classifier B and
the average query count recorded.  Success does not depend on the program
(any sketch instantiation is complete), so transfer quality is purely a
query-count question; the diagonal (A attacks A) is the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.attacks.sketch_attack import SketchAttack
from repro.core.dsl.ast import Program
from repro.eval.runner import AttackRunSummary, Classifier, TestPair, attack_dataset


@dataclass
class TransferMatrix:
    """Average queries for every (synthesized-for, target) pair."""

    names: Sequence[str]
    avg_queries: Dict[str, Dict[str, float]]  # [target][source] -> avg
    summaries: Dict[str, Dict[str, AttackRunSummary]]

    def entry(self, target: str, source: str) -> float:
        return self.avg_queries[target][source]

    def diagonal(self, name: str) -> float:
        return self.avg_queries[name][name]

    def transfer_overhead(self, target: str, source: str) -> float:
        """Ratio of transferred to native average query count on ``target``."""
        native = self.diagonal(target)
        if native == 0:
            return float("inf")
        return self.entry(target, source) / native


def transfer_matrix(
    programs: Mapping[str, Program],
    classifiers: Mapping[str, Classifier],
    test_pairs: Mapping[str, Sequence[TestPair]],
    budget: Optional[int] = None,
) -> TransferMatrix:
    """Cross-evaluate every program against every classifier.

    Parameters
    ----------
    programs:
        ``name -> synthesized program`` (the "Synthesized for" columns).
    classifiers:
        ``name -> black-box classifier`` (the "Target" rows).
    test_pairs:
        Per-target test sets (each target's correctly-classified images).
    budget:
        Optional per-image query cap.
    """
    if set(programs) != set(classifiers) or set(programs) != set(test_pairs):
        raise ValueError("programs, classifiers and test sets must share keys")
    names = sorted(programs)
    avg: Dict[str, Dict[str, float]] = {}
    summaries: Dict[str, Dict[str, AttackRunSummary]] = {}
    for target in names:
        avg[target] = {}
        summaries[target] = {}
        for source in names:
            attack = SketchAttack(programs[source], label=f"OPPSLA[{source}]")
            summary = attack_dataset(
                attack, classifiers[target], test_pairs[target], budget=budget
            )
            avg[target][source] = summary.avg_queries
            summaries[target][source] = summary
    return TransferMatrix(names=names, avg_queries=avg, summaries=summaries)
