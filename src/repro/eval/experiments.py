"""End-to-end experiment orchestration for the paper's tables and figures.

This module glues the zoo, the synthesizer and the evaluation harness into
one callable per paper artifact.  Everything expensive is cached on disk:
trained classifiers through :class:`~repro.models.zoo.ModelZoo`, and
synthesized adversarial programs as JSON next to the weights (a program is
an artifact of one classifier + training set + synthesis config, exactly
like a checkpoint).

Two profiles control experiment scale (select with the
``REPRO_BENCH_PROFILE`` environment variable):

- ``quick`` (default): small test sets and budgets; every benchmark
  finishes in minutes on a laptop CPU.
- ``full``: larger test sets and the paper's query thresholds; closer to
  the paper's statistical power, correspondingly slower.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_program import RandomProgramSearch, RandomSearchConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.core.dsl.ast import Program
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.eval.ablation import AblationRow, ablation_table
from repro.eval.success_curves import SuccessCurve, success_curves
from repro.eval.synthesis_study import SynthesisStudy, synthesis_study
from repro.eval.transfer import TransferMatrix, transfer_matrix
from repro.models.registry import CIFAR_ARCHITECTURES, IMAGENET_ARCHITECTURES
from repro.models.zoo import ModelZoo, ZooConfig


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs for one benchmark run."""

    name: str
    # zoo scale
    cifar_size: int = 16
    imagenet_size: int = 20
    train_per_class: int = 200
    test_per_class: int = 100
    epochs: int = 5
    # attack-evaluation scale
    test_images: int = 12
    imagenet_test_images: int = 10
    cifar_thresholds: Sequence[int] = (100, 500, 2048)
    imagenet_thresholds: Sequence[int] = (500, 2000)
    figure4_max_points: int = 8
    # synthesis scale; the training set is pre-screened to *attackable*
    # images (see ExperimentContext.synthesis_training_pairs) because
    # with failure-penalized scoring an unattackable image contributes a
    # constant to every candidate's score -- pure cost, zero signal
    synthesis_train_images: int = 12
    synthesis_iterations: int = 40
    synthesis_per_image_budget: int = 512
    synthesis_beta: float = 0.01
    # baseline scale
    suopa_population: int = 60
    seed: int = 0

    @property
    def cifar_budget(self) -> int:
        return max(self.cifar_thresholds)

    @property
    def imagenet_budget(self) -> int:
        return max(self.imagenet_thresholds)


PROFILES: Dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(name="quick"),
    "full": ExperimentProfile(
        name="full",
        cifar_size=16,
        imagenet_size=24,
        test_images=60,
        imagenet_test_images=30,
        cifar_thresholds=(100, 500, 2048),
        imagenet_thresholds=(500, 4608),
        figure4_max_points=20,
        synthesis_train_images=20,
        synthesis_iterations=80,
        synthesis_per_image_budget=1024,
    ),
}


def active_profile() -> ExperimentProfile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default quick)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; known: {sorted(PROFILES)}"
        ) from None


@dataclass
class ExperimentContext:
    """Shared state for one benchmark session: zoos and synthesized programs."""

    profile: ExperimentProfile
    _zoos: Dict[str, ModelZoo] = field(default_factory=dict)
    _programs: Dict[str, SynthesisResult] = field(default_factory=dict)
    _train_pairs: Dict[str, list] = field(default_factory=dict)

    # -- zoos ----------------------------------------------------------------

    def zoo(self, dataset: str) -> ModelZoo:
        if dataset not in self._zoos:
            profile = self.profile
            size = profile.cifar_size if dataset == "cifar" else profile.imagenet_size
            self._zoos[dataset] = ModelZoo(
                ZooConfig(
                    dataset=dataset,
                    image_size=size,
                    train_per_class=profile.train_per_class,
                    test_per_class=profile.test_per_class,
                    epochs=profile.epochs,
                    seed=profile.seed,
                )
            )
        return self._zoos[dataset]

    def architectures(self, dataset: str) -> Sequence[str]:
        return CIFAR_ARCHITECTURES if dataset == "cifar" else IMAGENET_ARCHITECTURES

    # -- synthesized programs ---------------------------------------------------

    def oppsla_config(self) -> OppslaConfig:
        profile = self.profile
        return OppslaConfig(
            max_iterations=profile.synthesis_iterations,
            beta=profile.synthesis_beta,
            per_image_budget=profile.synthesis_per_image_budget,
            seed=profile.seed,
        )

    def _program_path(self, dataset: str, arch: str) -> str:
        zoo = self.zoo(dataset)
        profile = self.profile
        key = (
            f"{zoo.config.cache_key(arch)}_oppsla"
            f"_i{profile.synthesis_iterations}"
            f"_n{profile.synthesis_train_images}scr"
            f"_b{profile.synthesis_per_image_budget}"
        )
        return os.path.join(zoo.config.cache_dir, f"{key}.json")

    def synthesis_training_pairs(self, dataset: str, arch: str, label=None):
        """The per-classifier synthesis training set.

        Correctly-classified training images, pre-screened with the
        fixed-prioritization program to those that are one-pixel
        attackable within the per-image budget.  Unattackable images are
        dropped: under failure-penalized scoring they add the same
        constant to every candidate's score, so they cost the full
        budget per candidate evaluation without providing any ranking
        signal.  (The paper can afford unscreened sets because its
        training runs are exhaustive and its classifiers are more
        vulnerable.)
        """
        cache_id = f"{dataset}:{arch}:{label}"
        if cache_id in self._train_pairs:
            return self._train_pairs[cache_id]
        zoo = self.zoo(dataset)
        trained = zoo.get(arch)
        candidates = zoo.correctly_classified(arch, split="train", label=label)
        probe = FixedSketchAttack()
        pairs = []
        for image, true_class in candidates.pairs():
            if len(pairs) >= self.profile.synthesis_train_images:
                break
            outcome = probe.attack(
                trained.classifier,
                image,
                true_class,
                budget=self.profile.synthesis_per_image_budget,
            )
            if outcome.success:
                pairs.append((image, true_class))
        if not pairs:
            # degenerate fallback (robust classifier): synthesize on the
            # unscreened set rather than failing outright
            pairs = candidates.pairs()[: self.profile.synthesis_train_images]
        self._train_pairs[cache_id] = pairs
        return pairs

    def program_for(self, dataset: str, arch: str) -> Program:
        """The synthesized program for one classifier (cached on disk)."""
        cache_id = f"{dataset}:{arch}"
        if cache_id in self._programs:
            return self._programs[cache_id].program
        path = self._program_path(dataset, arch)
        if os.path.exists(path):
            program = SynthesisResult.load_program(path)
            self._programs[cache_id] = _loaded_result(program)
            return program
        result = self.synthesize(dataset, arch)
        return result.program

    def synthesize(self, dataset: str, arch: str) -> SynthesisResult:
        """Run (and cache) OPPSLA synthesis for one classifier."""
        zoo = self.zoo(dataset)
        trained = zoo.get(arch)
        pairs = self.synthesis_training_pairs(dataset, arch)
        result = Oppsla(self.oppsla_config()).synthesize(trained.classifier, pairs)
        result.save(self._program_path(dataset, arch))
        self._programs[f"{dataset}:{arch}"] = result
        return result

    def random_program_for(self, dataset: str, arch: str) -> Program:
        """The Sketch+Random baseline program (cached on disk like OPPSLA's)."""
        path = self._program_path(dataset, arch).replace(
            "_oppsla", "_sketchrandom"
        )
        if os.path.exists(path):
            return SynthesisResult.load_program(path)
        zoo = self.zoo(dataset)
        trained = zoo.get(arch)
        search = RandomProgramSearch(
            RandomSearchConfig(
                num_samples=self.profile.synthesis_iterations,
                per_image_budget=self.profile.synthesis_per_image_budget,
                seed=self.profile.seed,
            )
        )
        result = search.synthesize(
            trained.classifier, self.synthesis_training_pairs(dataset, arch)
        )
        result.save(path)
        return result.program

    # -- test sets -----------------------------------------------------------------

    def test_pairs(self, dataset: str, arch: str):
        zoo = self.zoo(dataset)
        limit = (
            self.profile.test_images
            if dataset == "cifar"
            else self.profile.imagenet_test_images
        )
        return zoo.correctly_classified(arch, split="test", limit=limit).pairs()

    # -- attack construction -----------------------------------------------------

    def baseline_attacks(self, dataset: str) -> List:
        profile = self.profile
        return [
            SparseRS(SparseRSConfig(seed=profile.seed)),
            SuOPA(
                SuOPAConfig(
                    population_size=profile.suopa_population, seed=profile.seed
                )
            ),
        ]


def _loaded_result(program: Program) -> SynthesisResult:
    """Wrap a cache-loaded program in a minimal SynthesisResult."""
    from repro.core.synthesis.score import ProgramEvaluation
    from repro.core.synthesis.trace import SynthesisTrace

    empty = ProgramEvaluation(
        avg_queries=float("nan"),
        successes=0,
        total_images=0,
        total_queries=0,
        results=(),
    )
    return SynthesisResult(
        final_program=program,
        final_evaluation=empty,
        best_program=program,
        best_evaluation=empty,
        trace=SynthesisTrace(),
    )


# -- the five experiments ---------------------------------------------------------


def run_figure3(
    context: ExperimentContext, dataset: str, arch: str
) -> Dict[str, SuccessCurve]:
    """Figure 3 for one classifier: OPPSLA vs Sparse-RS vs SuOPA."""
    profile = context.profile
    zoo = context.zoo(dataset)
    trained = zoo.get(arch)
    attacks = [SketchAttack(context.program_for(dataset, arch))]
    attacks.extend(context.baseline_attacks(dataset))
    thresholds = (
        profile.cifar_thresholds if dataset == "cifar" else profile.imagenet_thresholds
    )
    return success_curves(
        attacks,
        trained.classifier,
        context.test_pairs(dataset, arch),
        thresholds=thresholds,
    )


def run_table1(context: ExperimentContext) -> TransferMatrix:
    """Table 1: cross-classifier transferability on the CIFAR-like zoo."""
    dataset = "cifar"
    zoo = context.zoo(dataset)
    names = list(context.architectures(dataset))
    programs = {arch: context.program_for(dataset, arch) for arch in names}
    classifiers = {arch: zoo.get(arch).classifier for arch in names}
    pairs = {arch: context.test_pairs(dataset, arch) for arch in names}
    return transfer_matrix(
        programs, classifiers, pairs, budget=context.profile.cifar_budget
    )


def run_figure4(
    context: ExperimentContext, arch: str = "vgg16bn", class_label: int = 0
) -> SynthesisStudy:
    """Figure 4: synthesis-cost study on one classifier and one class."""
    dataset = "cifar"
    profile = context.profile
    zoo = context.zoo(dataset)
    trained = zoo.get(arch)
    train_pairs = context.synthesis_training_pairs(
        dataset, arch, label=class_label
    )
    test_pairs = zoo.correctly_classified(
        arch, split="test", label=class_label, limit=profile.test_images
    ).pairs()
    if not train_pairs or not test_pairs:
        # the class has no (correctly classified) images at this scale;
        # fall back to the class-agnostic sets so the study stays runnable
        train_pairs = context.synthesis_training_pairs(dataset, arch)
        test_pairs = context.test_pairs(dataset, arch)
    return synthesis_study(
        trained.classifier,
        train_pairs,
        test_pairs,
        config=context.oppsla_config(),
        replay_budget=profile.cifar_budget,
        max_points=profile.figure4_max_points,
    )


def run_table2(context: ExperimentContext, arch: str) -> List[AblationRow]:
    """Table 2 for one classifier: OPPSLA vs ablation baselines."""
    dataset = "cifar"
    profile = context.profile
    zoo = context.zoo(dataset)
    trained = zoo.get(arch)
    test_pairs = context.test_pairs(dataset, arch)

    attacks = [
        SketchAttack(context.program_for(dataset, arch)),
        FixedSketchAttack(),
        SketchAttack(
            context.random_program_for(dataset, arch), label="Sketch+Random"
        ),
        SparseRS(SparseRSConfig(seed=profile.seed)),
    ]
    return ablation_table(
        arch, trained.classifier, attacks, test_pairs, budget=profile.cifar_budget
    )
