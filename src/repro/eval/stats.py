"""Statistical utilities for experiment reporting.

The paper reports point estimates; at our smaller test-set sizes a
confidence interval is the honest companion.  Bootstrap resampling keeps
the machinery assumption-free for the heavily skewed query-count
distributions one-pixel attacks produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate and its bootstrap interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.estimate:.2f} "
            f"[{self.lower:.2f}, {self.upper:.2f}] @ {self.confidence:.0%}"
        )


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap percentile interval for the mean of ``values``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one value")
    rng = np.random.default_rng(seed)
    samples = rng.choice(values, size=(resamples, values.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(values.mean()),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )


def bootstrap_success_rate(
    successes: int,
    total: int,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for a binomial success rate."""
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes must be within [0, total]")
    outcomes = np.zeros(total)
    outcomes[:successes] = 1.0
    return bootstrap_mean(outcomes, confidence, resamples, seed)


def bootstrap_mean_difference(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for ``mean(a) - mean(b)`` (unpaired).

    If the interval excludes zero, the difference is significant at the
    given confidence level -- the check to run before claiming that one
    attack "needs fewer queries" than another.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    rng = np.random.default_rng(seed)
    diffs = np.empty(resamples)
    for index in range(resamples):
        diffs[index] = (
            rng.choice(a, size=a.size, replace=True).mean()
            - rng.choice(b, size=b.size, replace=True).mean()
        )
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(diffs, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(a.mean() - b.mean()),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )
