"""The experiment harness reproducing the paper's tables and figures."""

from repro.eval.runner import AttackRunSummary, attack_dataset
from repro.eval.stats import (
    bootstrap_mean,
    bootstrap_mean_difference,
    bootstrap_success_rate,
)
from repro.eval.success_curves import SuccessCurve, success_curves
from repro.eval.transfer import TransferMatrix, transfer_matrix
from repro.eval.synthesis_study import SynthesisStudy, synthesis_study
from repro.eval.ablation import AblationRow, ablation_table

__all__ = [
    "attack_dataset",
    "AttackRunSummary",
    "success_curves",
    "SuccessCurve",
    "transfer_matrix",
    "TransferMatrix",
    "synthesis_study",
    "SynthesisStudy",
    "ablation_table",
    "AblationRow",
    "bootstrap_mean",
    "bootstrap_mean_difference",
    "bootstrap_success_rate",
]
