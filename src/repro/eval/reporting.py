"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.eval.ablation import AblationRow
from repro.eval.success_curves import SuccessCurve
from repro.eval.synthesis_study import SynthesisStudy
from repro.eval.transfer import TransferMatrix


def _fmt(value: float, digits: int = 2) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "-"
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A fixed-width text table."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def render(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "  ".join("-" * width for width in widths)
    lines = [render(headers), separator]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def format_success_curves(
    classifier_name: str, curves: Mapping[str, SuccessCurve], chart: bool = True
) -> str:
    """Figure 3, one classifier: success rate at each threshold.

    With ``chart=True`` an ASCII success-rate-vs-log-budget plot over a
    denser budget grid follows the table.
    """
    sample = next(iter(curves.values()))
    headers = ["Attack"] + [f"q<={t}" for t in sample.thresholds]
    rows = []
    for name, curve in curves.items():
        rows.append([name] + [f"{rate * 100:.1f}%" for rate in curve.rates])
    text = f"[Figure 3] {classifier_name}\n" + format_table(headers, rows)
    if chart:
        budget = max(sample.thresholds)
        grid = sorted(
            {int(round(budget ** (i / 11))) for i in range(12)} | {budget}
        )
        series = {
            name: [(q, curve.rate_at(q)) for q in grid]
            for name, curve in curves.items()
        }
        text += "\n" + render_ascii_chart(series, log_x=True)
    return text


def format_transfer(matrix: TransferMatrix) -> str:
    """Table 1: average queries, targets as rows, sources as columns."""
    headers = ["Target \\ Synthesized for"] + list(matrix.names)
    rows = []
    for target in matrix.names:
        rows.append(
            [target]
            + [_fmt(matrix.entry(target, source)) for source in matrix.names]
        )
    return "[Table 1] Transferability (Avg. #Queries)\n" + format_table(headers, rows)


def format_ablation(rows: Sequence[AblationRow]) -> str:
    """Table 2: avg / median / penalized queries per classifier and approach."""
    headers = [
        "Classifier",
        "Approach",
        "Avg #Queries",
        "Median #Queries",
        "Penalized Avg",
        "Success",
    ]
    body = [
        [
            row.classifier,
            row.approach,
            _fmt(row.avg_queries),
            _fmt(row.median_queries, 1),
            _fmt(row.penalized_avg_queries, 1),
            f"{row.success_rate * 100:.1f}%",
        ]
        for row in rows
    ]
    return "[Table 2] Conditions & search ablation\n" + format_table(headers, body)


def render_ascii_chart(
    series: Mapping[str, Sequence],
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
) -> str:
    """Plot ``name -> [(x, y), ...]`` series on a character grid.

    A lightweight stand-in for the paper's figures: each series gets a
    marker (its name's first letter), axes are annotated with the data
    ranges.  Useful in benchmark logs where no plotting library exists.
    """
    points = [
        (x, y) for values in series.values() for x, y in values
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points or width < 8 or height < 3:
        return "(no data)"

    def transform(x):
        return math.log10(max(x, 1e-12)) if log_x else x

    xs = [transform(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = _distinct_markers(list(series))
    for (name, values), marker in zip(series.items(), markers):
        for x, y in values:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int((transform(x) - x_lo) / x_span * (width - 1))
            row = int((y_hi - y) / y_span * (height - 1))
            grid[row][col] = marker

    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    x_label = "log10(x)" if log_x else "x"
    lines.append(
        f"{x_label}: [{x_lo:g}, {x_hi:g}]   y: [{y_lo:g}, {y_hi:g}]   "
        + "  ".join(
            f"{marker}={name}" for name, marker in zip(series, markers)
        )
    )
    return "\n".join(lines)


def _distinct_markers(names: Sequence[str]) -> List[str]:
    """One distinct single-character marker per series.

    Prefers the first unused letter of each name; falls back to digits.
    """
    markers: List[str] = []
    used = set()
    for name in names:
        chosen = None
        for char in name.upper():
            if char.isalnum() and char not in used:
                chosen = char
                break
        if chosen is None:
            for char in "0123456789*#@+%":
                if char not in used:
                    chosen = char
                    break
        markers.append(chosen or "?")
        used.add(chosen)
    return markers


def format_synthesis_study(study: SynthesisStudy) -> str:
    """Figure 4: avg test queries vs synthesis queries / iterations."""
    headers = ["Iteration", "Synthesis queries", "Avg test #queries", "Success"]
    rows = [
        [
            str(point.iteration),
            str(point.synthesis_queries),
            _fmt(point.avg_test_queries),
            f"{point.success_rate * 100:.1f}%",
        ]
        for point in study.points
    ]
    footer = (
        f"fixed-prioritization reference: {_fmt(study.fixed_avg_queries)} queries; "
        f"best improvement: {_fmt(study.improvement_over_fixed, 2)}x"
    )
    text = "[Figure 4] Synthesis study\n" + format_table(headers, rows) + "\n" + footer
    finite = [
        (point.synthesis_queries, point.avg_test_queries)
        for point in study.points
        if math.isfinite(point.avg_test_queries)
    ]
    if len(finite) >= 2 and math.isfinite(study.fixed_avg_queries):
        series = {
            "oppsla": finite,
            "fixed": [(x, study.fixed_avg_queries) for x, _ in finite],
        }
        text += "\n" + render_ascii_chart(series)
    return text
