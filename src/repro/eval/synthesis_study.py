"""Figure 4: attack quality as a function of synthesis cost.

The paper synthesizes a program for one classifier and one class's
training set, records every intermediate accepted program, replays each
on a held-out test set, and plots the resulting average query count
against (left) the cumulative synthesis queries paid up to that
acceptance and (right) the iteration index.  The horizontal reference is
the fixed-prioritization program (all conditions ``False``), which costs
zero synthesis queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.attacks.fixed_sketch import false_program
from repro.attacks.sketch_attack import SketchAttack
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.eval.runner import Classifier, TestPair, attack_dataset


@dataclass
class StudyPoint:
    """One accepted program, replayed on the test set."""

    iteration: int
    synthesis_queries: int
    avg_test_queries: float
    success_rate: float


@dataclass
class SynthesisStudy:
    """The full Figure 4 data: one point per accepted program."""

    points: List[StudyPoint]
    fixed_avg_queries: float  # the Sketch+False reference line
    result: SynthesisResult

    @property
    def best_avg_queries(self) -> float:
        return min(point.avg_test_queries for point in self.points)

    @property
    def improvement_over_fixed(self) -> float:
        """How many times fewer queries the best program needs."""
        best = self.best_avg_queries
        if best == 0:
            return float("inf")
        return self.fixed_avg_queries / best


def synthesis_study(
    classifier: Classifier,
    training_pairs: Sequence[TestPair],
    test_pairs: Sequence[TestPair],
    config: OppslaConfig = None,
    replay_budget: Optional[int] = None,
    max_points: Optional[int] = None,
) -> SynthesisStudy:
    """Run one synthesis and replay accepted programs on the test set.

    ``max_points`` caps the number of accepted programs replayed (they
    are subsampled evenly, always keeping the first and last); replaying
    a program costs a full attack run per test image, so long traces get
    expensive fast.
    """
    config = config or OppslaConfig()
    result = Oppsla(config).synthesize(classifier, training_pairs)

    accepted_list = list(result.trace.accepted)
    if max_points is not None and len(accepted_list) > max_points:
        if max_points < 2:
            raise ValueError("max_points must be at least 2")
        indices = sorted(
            {
                round(i * (len(accepted_list) - 1) / (max_points - 1))
                for i in range(max_points)
            }
        )
        accepted_list = [accepted_list[i] for i in indices]

    points = []
    for accepted in accepted_list:
        attack = SketchAttack(accepted.program)
        summary = attack_dataset(attack, classifier, test_pairs, budget=replay_budget)
        points.append(
            StudyPoint(
                iteration=accepted.iteration,
                synthesis_queries=accepted.cumulative_queries,
                avg_test_queries=summary.avg_queries,
                success_rate=summary.success_rate,
            )
        )

    fixed_summary = attack_dataset(
        SketchAttack(false_program(), label="Sketch+False"),
        classifier,
        test_pairs,
        budget=replay_budget,
    )
    return SynthesisStudy(
        points=points,
        fixed_avg_queries=fixed_summary.avg_queries,
        result=result,
    )
