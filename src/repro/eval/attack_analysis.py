"""Post-hoc analysis of where and how one-pixel attacks succeed.

Alatalo et al. (2022) analysed successful one-pixel attacks *spatially*
(successful perturbations cluster near the image center) and
*chromatically* (dark pixels in dark regions are disproportionately
vulnerable); Vargas & Su (2020) showed neighbouring pixels share
vulnerability.  Those observations justify the condition language's
``center``/``min``/``max``/``avg`` features.  This module recomputes the
same profiles from attack results on *our* classifiers, closing the loop:
if the profiles hold on the substrate, the DSL's features are the right
ones here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackResult
from repro.core.geometry import center_distance, max_center_distance


@dataclass(frozen=True)
class SpatialProfile:
    """Distribution of successful-attack locations relative to the center."""

    center_distances: Tuple[float, ...]  # normalized to [0, 1]
    samples: int

    @property
    def mean_normalized_distance(self) -> float:
        if not self.center_distances:
            return float("nan")
        return float(np.mean(self.center_distances))

    def center_bias(self) -> float:
        """How much closer to the center successes are than chance.

        Under a uniform spatial distribution the expected normalized
        Linf center distance is ~0.67 (two-thirds of the pixels of a
        square lie in the outer rings).  Values below 1 mean successes
        skew toward the center, matching Alatalo et al.
        """
        if not self.center_distances:
            return float("nan")
        return self.mean_normalized_distance / (2.0 / 3.0)


@dataclass(frozen=True)
class ChromaticProfile:
    """Brightness statistics of attacked pixels and their perturbations."""

    original_brightness: Tuple[float, ...]  # mean RGB of attacked pixel
    perturbation_brightness: Tuple[float, ...]
    samples: int

    @property
    def mean_original_brightness(self) -> float:
        if not self.original_brightness:
            return float("nan")
        return float(np.mean(self.original_brightness))

    @property
    def dark_to_bright_fraction(self) -> float:
        """Share of successes that brightened a dark pixel (< 0.5 mean)."""
        if not self.original_brightness:
            return float("nan")
        flips = [
            1.0 if orig < 0.5 and pert >= 0.5 else 0.0
            for orig, pert in zip(
                self.original_brightness, self.perturbation_brightness
            )
        ]
        return float(np.mean(flips))


def spatial_profile(
    results: Sequence[AttackResult], image_shape: Tuple[int, int]
) -> SpatialProfile:
    """Normalized center distances of every successful attack location."""
    max_distance = max_center_distance(image_shape)
    distances: List[float] = []
    for result in results:
        if result.success and result.location is not None:
            distances.append(
                center_distance(result.location, image_shape) / max(max_distance, 1e-9)
            )
    return SpatialProfile(
        center_distances=tuple(distances), samples=len(distances)
    )


def chromatic_profile(
    results: Sequence[AttackResult], images: Sequence[np.ndarray]
) -> ChromaticProfile:
    """Brightness of attacked pixels before and after perturbation.

    ``images`` must align with ``results`` (the clean image each result
    attacked).
    """
    if len(results) != len(images):
        raise ValueError("results and images must align")
    originals: List[float] = []
    perturbations: List[float] = []
    for result, image in zip(results, images):
        if not (result.success and result.location is not None):
            continue
        row, col = result.location
        originals.append(float(image[row, col].mean()))
        perturbations.append(float(np.asarray(result.perturbation).mean()))
    return ChromaticProfile(
        original_brightness=tuple(originals),
        perturbation_brightness=tuple(perturbations),
        samples=len(originals),
    )


def format_profiles(
    spatial: SpatialProfile, chromatic: ChromaticProfile
) -> str:
    """Readable one-block summary of both profiles."""
    lines = [
        f"successful attacks analysed: {spatial.samples}",
        (
            f"spatial: mean normalized center distance "
            f"{spatial.mean_normalized_distance:.2f} "
            f"(center bias {spatial.center_bias():.2f}; < 1 means "
            f"successes skew central)"
        ),
        (
            f"chromatic: mean attacked-pixel brightness "
            f"{chromatic.mean_original_brightness:.2f}; "
            f"dark-to-bright flips {chromatic.dark_to_bright_fraction:.0%}"
        ),
    ]
    return "\n".join(lines)
