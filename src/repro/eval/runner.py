"""Running an attack over a whole test set and summarizing the outcome.

Every experiment in the paper reduces to "attack each correctly-classified
test image under a budget and aggregate the query counts", so this module
is the shared backbone of Figures 3-4 and Tables 1-2.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackResult, OnePixelAttack
from repro.runtime.cache import CachedClassifier, normalized_cache_size
from repro.runtime.checkpoint import (
    CheckpointMismatch,
    CheckpointStore,
    as_store,
    campaign_manifest,
    campaign_record,
    load_campaign,
)
from repro.runtime.events import NullRunLog, RunLog, ensure_log
from repro.runtime.pool import WorkerPool, task_seed
from repro.runtime.tasks import AttackTaskRunner, run_single_attack

Classifier = Callable[[np.ndarray], np.ndarray]
TestPair = Tuple[np.ndarray, int]


def _json_safe(value: float) -> Optional[float]:
    """Map the infinities our metrics use for "undefined" to ``None``."""
    if math.isinf(value):
        return None
    return value


#: ``to_dict`` keys that carry wall-clock measurements.  Everything else
#: in the dict is a deterministic function of the attack results, so
#: determinism consumers (kill-and-resume fingerprints, differential
#: oracles, golden reports) compare ``to_dict(include_timing=False)``.
TIMING_KEYS = ("attack_seconds", "total_seconds", "avg_seconds_per_image")


@dataclass
class AttackRunSummary:
    """Aggregated results of one attack over one test set.

    ``image_seconds`` holds per-image attack wall time keyed by dataset
    index (missing for images whose timing is unknown, e.g. degraded
    pool tasks); ``total_seconds`` is the wall time of the whole dataset
    run including engine overhead.  Both are measurements, not functions
    of the results -- see :data:`TIMING_KEYS`.
    """

    attack_name: str
    results: List[AttackResult]
    budget: Optional[int]
    image_seconds: Dict[int, float] = field(default_factory=dict)
    total_seconds: Optional[float] = None

    @property
    def total_images(self) -> int:
        return len(self.results)

    @property
    def successes(self) -> int:
        return sum(1 for result in self.results if result.success)

    @property
    def success_rate(self) -> float:
        if not self.results:
            return 0.0
        return self.successes / len(self.results)

    def success_rate_at(self, max_queries: int) -> float:
        """Fraction of images attacked successfully within ``max_queries``.

        This is the quantity Figure 3 plots: an attack run with a large
        budget yields the whole success-rate-versus-budget curve, because
        an image successful at q queries is successful at any q' >= q.
        """
        if not self.results:
            return 0.0
        hits = sum(
            1
            for result in self.results
            if result.success and result.queries <= max_queries
        )
        return hits / len(self.results)

    def success_queries(self) -> List[int]:
        return [result.queries for result in self.results if result.success]

    @property
    def avg_queries(self) -> float:
        """Mean queries over successful attacks (the paper's Avg. #Queries)."""
        queries = self.success_queries()
        if not queries:
            return float("inf")
        return sum(queries) / len(queries)

    @property
    def median_queries(self) -> float:
        queries = self.success_queries()
        if not queries:
            return float("inf")
        return float(statistics.median(queries))

    @property
    def penalized_avg_queries(self) -> float:
        """Mean queries over *all* images, failures at their actual cost.

        Unlike :attr:`avg_queries` (the paper's successes-only metric),
        this is comparable across attacks with *different* success sets:
        an attack that fails often pays the full budget on each failure
        instead of silently dropping those images from its average.  With
        small test sets this is the statistically robust ranking metric.
        """
        if not self.results:
            return float("inf")
        return sum(result.queries for result in self.results) / len(self.results)

    def curve(self, thresholds: Sequence[int]) -> List[float]:
        """Success rate at each query threshold."""
        return [self.success_rate_at(threshold) for threshold in thresholds]

    @property
    def total_queries(self) -> int:
        return sum(result.queries for result in self.results)

    def error_counts(self) -> dict:
        """How many degraded results carry each error tag."""
        counts: dict = {}
        for result in self.results:
            if result.error is not None:
                counts[result.error] = counts.get(result.error, 0) + 1
        return counts

    @property
    def attack_seconds(self) -> Optional[float]:
        """Summed per-image attack wall time; ``None`` when untimed."""
        if not self.image_seconds:
            return None
        return sum(self.image_seconds.values())

    @property
    def avg_seconds_per_image(self) -> Optional[float]:
        """Mean per-image attack wall time over the timed images."""
        if not self.image_seconds:
            return None
        return self.attack_seconds / len(self.image_seconds)

    def to_dict(self, include_timing: bool = True) -> dict:
        """JSON-safe aggregate view (``inf`` averages become ``None``).

        This is the serialization contract shared by
        :class:`~repro.runtime.events.RunLog` events and
        ``benchmarks/collect_results.py``; per-image results are reduced
        to aggregates so the dict stays log-line sized.

        ``include_timing=False`` drops the wall-clock keys
        (:data:`TIMING_KEYS`), leaving a dict that is a deterministic
        function of the results alone -- the form determinism tests and
        resumed-vs-golden comparisons must use, because two runs of the
        same campaign never agree on wall time.
        """
        payload = {
            "attack": self.attack_name,
            "budget": self.budget,
            "total_images": self.total_images,
            "successes": self.successes,
            "success_rate": self.success_rate,
            "avg_queries": _json_safe(self.avg_queries),
            "median_queries": _json_safe(self.median_queries),
            "penalized_avg_queries": _json_safe(self.penalized_avg_queries),
            "total_queries": self.total_queries,
            "errors": self.error_counts(),
        }
        if include_timing:
            payload["attack_seconds"] = self.attack_seconds
            payload["total_seconds"] = self.total_seconds
            payload["avg_seconds_per_image"] = self.avg_seconds_per_image
        return payload


def degraded_result(error_tag: Optional[str], budget: Optional[int]) -> AttackResult:
    """A budget-exhausted failure standing in for a faulted attack.

    This is the single definition of how a lost or faulted attack is
    accounted: a failed :class:`AttackResult` charged the full budget
    (the attacker paid for the queries whether or not an answer came
    back) and tagged with the fault.  The execution engine uses it for
    worker faults and :mod:`repro.testkit` reuses it so fault-injection
    runs degrade with exactly the production semantics.
    """
    return AttackResult(
        success=False,
        queries=budget if budget is not None else 0,
        error=error_tag if error_tag is not None else "unknown",
    )


def _degraded_result(outcome, budget: Optional[int]) -> AttackResult:
    """:func:`degraded_result` for one failed pool ``TaskOutcome``."""
    return degraded_result(
        outcome.error.tag if outcome.error is not None else None, budget
    )


def resume_campaign(
    store: CheckpointStore,
    attack_name: str,
    total_images: int,
    budget: Optional[int],
    base_seed: int,
) -> "Tuple[dict, dict, bool]":
    """Reconcile a checkpoint with this run; completed results by index.

    Writes the manifest on a fresh store and verifies it on an old one
    (:class:`CheckpointMismatch` on disagreement).  Every recorded unit's
    seed is re-derived via :func:`~repro.runtime.pool.task_seed` and
    checked against the record, so a checkpoint written under a
    different ``base_seed`` -- whose units would not reproduce the same
    randomness -- cannot be silently resumed.  Returns the completed
    ``{index: AttackResult}`` map, the recorded ``{index: seconds}``
    timings, and whether a torn tail was dropped.
    """
    store.reconcile_manifest(
        campaign_manifest(attack_name, total_images, budget, base_seed)
    )
    _, completed, seeds, seconds, truncated = load_campaign(store)
    for index, seed in seeds.items():
        if index < 0 or index >= total_images:
            raise CheckpointMismatch(
                f"checkpoint records image index {index}, outside the "
                f"{total_images}-image campaign"
            )
        if seed != task_seed(base_seed, index):
            raise CheckpointMismatch(
                f"checkpoint seed for image {index} does not re-derive from "
                f"base_seed={base_seed}; refusing to resume"
            )
    return completed, seconds, truncated


def attack_dataset(
    attack: OnePixelAttack,
    classifier: Classifier,
    test_pairs: Sequence[TestPair],
    budget: Optional[int] = None,
    executor: Optional[WorkerPool] = None,
    run_log: Optional[RunLog] = None,
    cache_size: Optional[int] = None,
    freeze: bool = False,
    checkpoint: Optional[CheckpointStore] = None,
    base_seed: int = 0,
    step_batch: Optional[int] = None,
) -> AttackRunSummary:
    """Attack every (image, true_class) pair and collect the results.

    Parameters
    ----------
    executor:
        A :class:`~repro.runtime.pool.WorkerPool` to fan the per-image
        attacks out across processes.  Results are returned in dataset
        order and are bit-identical to the sequential path; a task lost
        to a worker fault is recorded as a failed
        :class:`AttackResult` at full budget with an error tag.
    run_log:
        Structured telemetry sink; defaults to the executor's log.
    cache_size:
        If set, wrap the classifier in a bounded LRU
        :class:`~repro.runtime.cache.CachedClassifier` *inside* the
        attack's counting boundary -- repeated forward passes are served
        from memory while reported query counts stay paper-faithful
        (see :mod:`repro.runtime.cache`).  ``0`` and ``None`` both mean
        "no cache"; negative sizes raise here rather than inside a
        worker.
    freeze:
        Switch the classifier onto the inference fast path before
        attacking (no-op for classifiers without a ``freeze`` method).
        Query counts are unaffected -- freezing changes per-query
        latency, never how many submissions an attack makes -- but
        scores are only float-tolerance-close to the unfrozen path, so
        leave this off for bit-exact reproductions.
    checkpoint:
        A :class:`~repro.runtime.checkpoint.CheckpointStore` (or a
        directory path) recording each completed per-image result as a
        durable record.  When the store already holds records from an
        interrupted run of the *same* campaign, those units are skipped
        and their recorded results merged back in dataset order, so the
        resumed summary is bit-identical to an uninterrupted run (each
        per-image attack re-derives its randomness from its own seed,
        never from position in the run).  Restored units are re-emitted
        to ``run_log`` as ``attack_result`` events tagged
        ``replayed=True`` so downstream telemetry readers still see one
        event per image.
    base_seed:
        Campaign-level seed recorded per unit via
        :func:`~repro.runtime.pool.task_seed` and verified on resume.
    step_batch:
        Batch-native stepping window applied to the attack (``None``
        keeps the attack's own default, ``0`` pins the legacy scalar
        protocol, ``N > 0`` speculates up to N queries per forward
        pass).  Bit-identical results and query counts either way; the
        win is latency, especially with ``freeze=True``.
    """
    cache_size = normalized_cache_size(cache_size)
    if step_batch is not None:
        attack.batch_size = step_batch
    if run_log is None and executor is not None:
        if not isinstance(executor.run_log, NullRunLog):
            run_log = executor.run_log
    log = ensure_log(run_log)

    run_started = time.perf_counter()
    store = as_store(checkpoint)
    completed: dict = {}
    image_seconds: Dict[int, float] = {}
    if store is not None:
        completed, image_seconds, truncated = resume_campaign(
            store, attack.name, len(test_pairs), budget, base_seed
        )
        if completed or truncated:
            log.emit(
                "campaign_resume",
                attack=attack.name,
                total=len(test_pairs),
                completed=len(completed),
                remaining=len(test_pairs) - len(completed),
                truncated=truncated,
                replayed_queries=0,
            )
            for index in sorted(completed):
                restored = completed[index]
                log.emit(
                    "attack_result",
                    index=index,
                    success=restored.success,
                    queries=restored.queries,
                    error=restored.error,
                    replayed=True,
                )
    pending = [index for index in range(len(test_pairs)) if index not in completed]

    def record(
        index: int, result: AttackResult, seconds: Optional[float] = None
    ) -> None:
        # Write-ahead of the in-memory merge: the unit is durable before
        # the run acknowledges it, so a crash between units loses nothing.
        if store is not None:
            store.append(
                campaign_record(
                    index, task_seed(base_seed, index), result, seconds=seconds
                )
            )
        completed[index] = result
        if seconds is not None:
            image_seconds[index] = seconds
        log.emit(
            "attack_result",
            index=index,
            success=result.success,
            queries=result.queries,
            error=result.error,
            seconds=seconds,
        )

    cache_stats = None
    if executor is None:
        if freeze:
            freeze_method = getattr(classifier, "freeze", None)
            if freeze_method is not None:
                freeze_method()
        effective = classifier
        cached = None
        if cache_size is not None:
            cached = CachedClassifier(classifier, maxsize=cache_size)
            effective = cached
        for index in pending:
            image, true_class = test_pairs[index]
            started = time.perf_counter()
            result = run_single_attack(attack, effective, image, true_class, budget)
            record(index, result, seconds=time.perf_counter() - started)
        if cached is not None:
            cache_stats = cached.stats()
            log.emit("cache_stats", **cache_stats)
    else:
        runner = AttackTaskRunner(
            attack,
            classifier,
            budget=budget,
            cache_size=cache_size,
            freeze=freeze,
            step_batch=step_batch,
        )
        outcomes = executor.map(
            runner,
            [test_pairs[index] for index in pending],
            task_name=f"attack:{attack.name}",
        )
        hits = misses = 0
        for outcome in outcomes:
            index = pending[outcome.index]
            seconds = None
            if outcome.ok:
                envelope = outcome.value
                result = envelope.result
                seconds = envelope.seconds
                hits += envelope.cache_hits
                misses += envelope.cache_misses
            else:
                result = _degraded_result(outcome, budget)
            record(index, result, seconds=seconds)
        if cache_size is not None:
            total = hits + misses
            cache_stats = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
                "scope": "per-worker",
            }
            log.emit("cache_stats", **cache_stats)

    results = [completed[index] for index in range(len(test_pairs))]
    summary = AttackRunSummary(
        attack_name=attack.name,
        results=results,
        budget=budget,
        image_seconds=image_seconds,
        total_seconds=time.perf_counter() - run_started,
    )
    log.emit("attack_summary", cache=cache_stats, **summary.to_dict())
    return summary
