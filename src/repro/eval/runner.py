"""Running an attack over a whole test set and summarizing the outcome.

Every experiment in the paper reduces to "attack each correctly-classified
test image under a budget and aggregate the query counts", so this module
is the shared backbone of Figures 3-4 and Tables 1-2.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackResult, OnePixelAttack

Classifier = Callable[[np.ndarray], np.ndarray]
TestPair = Tuple[np.ndarray, int]


@dataclass
class AttackRunSummary:
    """Aggregated results of one attack over one test set."""

    attack_name: str
    results: List[AttackResult]
    budget: Optional[int]

    @property
    def total_images(self) -> int:
        return len(self.results)

    @property
    def successes(self) -> int:
        return sum(1 for result in self.results if result.success)

    @property
    def success_rate(self) -> float:
        if not self.results:
            return 0.0
        return self.successes / len(self.results)

    def success_rate_at(self, max_queries: int) -> float:
        """Fraction of images attacked successfully within ``max_queries``.

        This is the quantity Figure 3 plots: an attack run with a large
        budget yields the whole success-rate-versus-budget curve, because
        an image successful at q queries is successful at any q' >= q.
        """
        if not self.results:
            return 0.0
        hits = sum(
            1
            for result in self.results
            if result.success and result.queries <= max_queries
        )
        return hits / len(self.results)

    def success_queries(self) -> List[int]:
        return [result.queries for result in self.results if result.success]

    @property
    def avg_queries(self) -> float:
        """Mean queries over successful attacks (the paper's Avg. #Queries)."""
        queries = self.success_queries()
        if not queries:
            return float("inf")
        return sum(queries) / len(queries)

    @property
    def median_queries(self) -> float:
        queries = self.success_queries()
        if not queries:
            return float("inf")
        return float(statistics.median(queries))

    @property
    def penalized_avg_queries(self) -> float:
        """Mean queries over *all* images, failures at their actual cost.

        Unlike :attr:`avg_queries` (the paper's successes-only metric),
        this is comparable across attacks with *different* success sets:
        an attack that fails often pays the full budget on each failure
        instead of silently dropping those images from its average.  With
        small test sets this is the statistically robust ranking metric.
        """
        if not self.results:
            return float("inf")
        return sum(result.queries for result in self.results) / len(self.results)

    def curve(self, thresholds: Sequence[int]) -> List[float]:
        """Success rate at each query threshold."""
        return [self.success_rate_at(threshold) for threshold in thresholds]


def attack_dataset(
    attack: OnePixelAttack,
    classifier: Classifier,
    test_pairs: Sequence[TestPair],
    budget: Optional[int] = None,
) -> AttackRunSummary:
    """Attack every (image, true_class) pair and collect the results."""
    results = [
        attack.attack(classifier, image, true_class, budget=budget)
        for image, true_class in test_pairs
    ]
    return AttackRunSummary(attack_name=attack.name, results=results, budget=budget)
