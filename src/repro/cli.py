"""Command-line interface for the OPPSLA reproduction.

Subcommands::

    python -m repro.cli train --dataset cifar --arch vgg16bn
    python -m repro.cli synthesize --dataset cifar --arch vgg16bn \
        --iterations 40 --out program.json
    python -m repro.cli attack --dataset cifar --arch vgg16bn \
        --program program.json --images 20 --budget 2048
    python -m repro.cli experiment fig3-cifar

Each subcommand builds on the same cached model zoo the benchmarks use,
so artifacts are shared across invocations.
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.core.dsl.analysis import lint_program
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.printer import format_program
from repro.core.dsl.typecheck import check_program
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.eval.experiments import (
    ExperimentContext,
    active_profile,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)
from repro.eval.reporting import (
    format_ablation,
    format_success_curves,
    format_synthesis_study,
    format_transfer,
)
from repro.eval.runner import attack_dataset
from repro.models.registry import ARCHITECTURES
from repro.models.zoo import ModelZoo, ZooConfig
from repro.runtime.checkpoint import CheckpointStore, load_campaign
from repro.runtime.events import RunLog
from repro.runtime.faults import FaultPolicy
from repro.runtime.pool import WorkerPool


def _add_zoo_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=["cifar", "imagenet"], default="cifar")
    parser.add_argument("--arch", choices=sorted(ARCHITECTURES), default="vgg16bn")
    parser.add_argument("--image-size", type=int, default=16)
    parser.add_argument("--train-per-class", type=int, default=200)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--seed", type=int, default=0)


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes for parallel execution (0 = sequential)",
    )
    parser.add_argument(
        "--run-log",
        default=None,
        metavar="PATH",
        help="append structured JSONL run telemetry to this file",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task wall-clock timeout in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--task-retries",
        type=_nonnegative_int,
        default=1,
        help="retries per faulted task before recording a degraded result",
    )


def _runtime(args: argparse.Namespace):
    """(executor, run_log) from the runtime flags; both may be ``None``."""
    run_log = RunLog(args.run_log) if args.run_log else None
    executor = None
    if args.workers > 0:
        policy = FaultPolicy(timeout=args.task_timeout, retries=args.task_retries)
        executor = WorkerPool(
            workers=args.workers, policy=policy, run_log=run_log
        )
    return executor, run_log


def _zoo(args: argparse.Namespace) -> ModelZoo:
    kwargs = dict(
        dataset=args.dataset,
        image_size=args.image_size,
        train_per_class=args.train_per_class,
        epochs=args.epochs,
        seed=args.seed,
    )
    if args.cache_dir:
        kwargs["cache_dir"] = args.cache_dir
    return ModelZoo(ZooConfig(**kwargs))


def cmd_train(args: argparse.Namespace) -> int:
    zoo = _zoo(args)
    trained = zoo.get(args.arch, force_retrain=args.force)
    print(
        f"{args.dataset}/{args.arch}: train accuracy {trained.train_accuracy:.1%}, "
        f"test accuracy {trained.test_accuracy:.1%}"
    )
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    zoo = _zoo(args)
    trained = zoo.get(args.arch)
    pairs = zoo.correctly_classified(
        args.arch, split="train", limit=args.train_images, label=args.label
    ).pairs()
    config = OppslaConfig(
        max_iterations=args.iterations,
        beta=args.beta,
        per_image_budget=args.per_image_budget,
        seed=args.seed,
    )
    executor, run_log = _runtime(args)
    if args.checkpoint and args.resume:
        from repro.core.synthesis.mh import latest_chain_snapshot

        snapshot = latest_chain_snapshot(CheckpointStore(args.checkpoint))
        if snapshot is not None:
            print(
                f"# resuming MH chain from iteration {snapshot['iteration']}"
                f"/{config.max_iterations}"
            )
    result = Oppsla(config).synthesize(
        trained.classifier,
        pairs,
        executor=executor,
        checkpoint=args.checkpoint,
        resume=args.resume,
        checkpoint_interval=args.checkpoint_interval,
    )
    if run_log is not None:
        run_log.emit(
            "synthesis_summary",
            total_queries=result.total_queries,
            iterations=result.trace.iterations,
            acceptance_rate=result.trace.acceptance_rate,
            best_successes=result.best_evaluation.successes,
            total_images=result.best_evaluation.total_images,
        )
        run_log.close()
    print(format_program(result.program))
    print(
        f"# synthesis queries: {result.total_queries}, "
        f"train successes: {result.best_evaluation.successes}"
        f"/{result.best_evaluation.total_images}"
    )
    if args.out:
        result.save(args.out)
        print(f"# saved to {args.out}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    zoo = _zoo(args)
    trained = zoo.get(args.arch)
    pairs = zoo.correctly_classified(
        args.arch, split="test", limit=args.images, label=args.label
    ).pairs()
    if args.program:
        program = SynthesisResult.load_program(args.program)
        for warning in lint_program(program):
            print(f"# warning: {warning}")
        grammar = Grammar((args.image_size, args.image_size))
        check = check_program(program, grammar)
        for diagnostic in check.errors:
            print(f"# warning: {diagnostic}")
        attack = SketchAttack(program)
    elif args.baseline == "sparse-rs":
        attack = SparseRS(SparseRSConfig(seed=args.seed))
    else:
        attack = FixedSketchAttack()
    executor, run_log = _runtime(args)
    store = None
    if args.checkpoint:
        store = CheckpointStore(args.checkpoint)
        _, restored, _, _, _ = load_campaign(store)
        if restored:
            print(
                f"# resumed {len(restored)}/{len(pairs)} images, "
                "0 queries replayed"
            )
    summary = attack_dataset(
        attack,
        trained.classifier,
        pairs,
        budget=args.budget,
        executor=executor,
        run_log=run_log,
        cache_size=args.cache_size,
        freeze=args.freeze,
        checkpoint=store,
        base_seed=args.seed,
        step_batch=0 if args.scalar_steps else args.step_batch,
    )
    if run_log is not None:
        run_log.close()
    print(
        f"{summary.attack_name}: success {summary.success_rate:.1%}, "
        f"avg queries {summary.avg_queries:.1f}, "
        f"median {summary.median_queries:.1f} "
        f"({summary.successes}/{summary.total_images} images)"
    )
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import CampaignSpec, SpecError
    from repro.campaign.store import ResultsStore

    try:
        spec = CampaignSpec.load(args.spec)
    except SpecError as exc:
        raise SystemExit(f"error: {args.spec}: {exc}") from exc
    executor, run_log = _runtime(args)
    results_store = ResultsStore(args.store) if args.store else None
    run = run_campaign(
        spec,
        args.root,
        executor=executor,
        run_log=run_log,
        results_store=results_store,
        progress=print,
        zoo_cache_dir=args.cache_dir,
    )
    if run_log is not None:
        run_log.close()
    replayed = sum(1 for outcome in run.outcomes if outcome.replayed)
    print(
        f"campaign {spec.campaign_id}: {len(run.outcomes)} cells complete "
        f"({replayed} replayed from checkpoint)"
    )
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign.report import (
        campaign_csv,
        campaign_markdown,
        write_campaign_bench,
    )

    from repro.campaign.report import ReportError

    include_timing = not args.no_timing
    try:
        if args.format == "csv":
            rendered = campaign_csv(args.root, include_timing=include_timing)
        else:
            rendered = campaign_markdown(args.root, include_timing=include_timing)
    except ReportError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"# report written to {args.out}")
    else:
        print(rendered, end="")
    if args.bench_dir:
        path = write_campaign_bench(args.root, args.bench_dir)
        print(f"# BENCH trajectory written to {path}")
    return 0


def cmd_campaign_list(args: argparse.Namespace) -> int:
    from repro.campaign.runner import campaign_status, loaded_spec
    from repro.campaign.spec import SpecError

    try:
        spec = loaded_spec(args.root)
    except SpecError as exc:
        raise SystemExit(f"error: {exc}") from exc
    states = campaign_status(spec, args.root)
    done = sum(1 for _, state in states if state == "done")
    print(f"campaign {spec.campaign_id}: {done}/{len(states)} cells done")
    for cell, state in states:
        print(f"  {state:>7}  {cell.cell_id}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    context = ExperimentContext(active_profile())
    name = args.name
    if name == "fig3-cifar":
        for arch in context.architectures("cifar"):
            curves = run_figure3(context, "cifar", arch)
            print(format_success_curves(f"cifar/{arch}", curves))
    elif name == "fig3-imagenet":
        for arch in context.architectures("imagenet"):
            curves = run_figure3(context, "imagenet", arch)
            print(format_success_curves(f"imagenet/{arch}", curves))
    elif name == "table1":
        print(format_transfer(run_table1(context)))
    elif name == "fig4":
        print(format_synthesis_study(run_figure4(context)))
    elif name == "table2":
        for arch in context.architectures("cifar"):
            print(format_ablation(run_table2(context, arch)))
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OPPSLA reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train (or load) a classifier")
    _add_zoo_arguments(train)
    train.add_argument("--force", action="store_true", help="retrain even if cached")
    train.set_defaults(func=cmd_train)

    synthesize = subparsers.add_parser(
        "synthesize", help="synthesize an adversarial program"
    )
    _add_zoo_arguments(synthesize)
    synthesize.add_argument("--iterations", type=int, default=40)
    synthesize.add_argument("--beta", type=float, default=0.005)
    synthesize.add_argument("--per-image-budget", type=int, default=1024)
    synthesize.add_argument("--train-images", type=int, default=16)
    synthesize.add_argument("--label", type=int, default=None)
    synthesize.add_argument("--out", default=None, help="save program JSON here")
    synthesize.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="durably snapshot the MH chain into this directory so a "
        "killed synthesis can be resumed bit-identically",
    )
    synthesize.add_argument(
        "--resume",
        action="store_true",
        help="continue the chain from the latest snapshot in --checkpoint",
    )
    synthesize.add_argument(
        "--checkpoint-interval",
        type=int,
        default=10,
        help="iterations between durable chain snapshots",
    )
    _add_runtime_arguments(synthesize)
    synthesize.set_defaults(func=cmd_synthesize)

    attack = subparsers.add_parser("attack", help="attack test images")
    _add_zoo_arguments(attack)
    attack.add_argument("--program", default=None, help="program JSON to use")
    attack.add_argument(
        "--baseline",
        choices=["fixed", "sparse-rs"],
        default="fixed",
        help="attack to run when no --program is given",
    )
    attack.add_argument("--images", type=int, default=20)
    attack.add_argument("--label", type=int, default=None)
    attack.add_argument("--budget", type=int, default=2048)
    attack.add_argument(
        "--cache-size",
        type=_nonnegative_int,
        default=0,
        help="LRU query-cache entries per worker (0 = no cache); caching "
        "sits inside the counting boundary so query counts stay faithful",
    )
    attack.add_argument(
        "--freeze",
        action="store_true",
        help="run the classifier on the inference fast path (folded batch "
        "norms, reused buffers); query counts are unchanged but scores "
        "are no longer bit-identical to the default eval path",
    )
    attack.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="record each completed image in this directory; rerunning "
        "with the same flags resumes the campaign, skipping completed "
        "images with bit-identical results (resume is implicit)",
    )
    attack.add_argument(
        "--step-batch",
        type=_nonnegative_int,
        default=32,
        metavar="N",
        help="batch-native stepping window: speculate up to N queries "
        "per vectorized forward pass (bit-identical results and query "
        "counts; 0 = scalar)",
    )
    attack.add_argument(
        "--scalar-steps",
        action="store_true",
        help="drive attacks with the legacy one-query-at-a-time "
        "protocol (equivalent to --step-batch 0; differential escape "
        "hatch)",
    )
    _add_runtime_arguments(attack)
    attack.set_defaults(func=cmd_attack)

    campaign = subparsers.add_parser(
        "campaign",
        help="run/report a declarative experiment matrix "
        "({models x attacks x datasets x budgets} from a TOML/JSON spec)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run",
        help="execute every cell of a campaign spec (resumes implicitly: "
        "completed cells are skipped, the in-flight cell resumes at "
        "per-image granularity)",
    )
    campaign_run.add_argument("--spec", required=True, metavar="PATH",
                              help="campaign spec (.toml or .json)")
    campaign_run.add_argument("--root", required=True, metavar="DIR",
                              help="campaign working directory (checkpoints, "
                              "manifests, per-cell records)")
    campaign_run.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="append completed cells to this long-lived results store "
        "(the cross-commit perf trendline)",
    )
    campaign_run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="model-zoo cache directory for cifar/imagenet cells",
    )
    _add_runtime_arguments(campaign_run)
    campaign_run.set_defaults(func=cmd_campaign_run)

    campaign_report = campaign_sub.add_parser(
        "report", help="render a campaign as Markdown/CSV and BENCH JSON"
    )
    campaign_report.add_argument("--root", required=True, metavar="DIR")
    campaign_report.add_argument(
        "--format", choices=["md", "csv"], default="md"
    )
    campaign_report.add_argument("--out", default=None, metavar="PATH",
                                 help="write the report here instead of stdout")
    campaign_report.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="also write BENCH_campaign_<id>.json into this directory",
    )
    campaign_report.add_argument(
        "--no-timing",
        action="store_true",
        help="omit wall-clock columns; the remaining report is a "
        "deterministic function of the attack results (bit-identical "
        "across kill-and-resume)",
    )
    campaign_report.set_defaults(func=cmd_campaign_report)

    campaign_list = campaign_sub.add_parser(
        "list", help="show per-cell status (done/partial/pending)"
    )
    campaign_list.add_argument("--root", required=True, metavar="DIR")
    campaign_list.set_defaults(func=cmd_campaign_list)

    experiment = subparsers.add_parser(
        "experiment", help="run a paper experiment end to end"
    )
    experiment.add_argument(
        "name",
        choices=["fig3-cifar", "fig3-imagenet", "table1", "fig4", "table2"],
    )
    experiment.set_defaults(func=cmd_experiment)

    serve = subparsers.add_parser(
        "serve",
        help="serve attacks over HTTP with a micro-batching query broker "
        "(see repro-serve --help for flags)",
        add_help=False,
    )
    serve.set_defaults(func=cmd_serve)

    cluster = subparsers.add_parser(
        "cluster",
        help="serve through a sharded multi-worker tier with replica "
        "supervision and rebalancing (see repro cluster --help)",
        add_help=False,
    )
    cluster.set_defaults(func=cmd_cluster)
    return parser


def cmd_serve(args) -> int:  # pragma: no cover - dispatch happens in main()
    from repro.serve.server import main as serve_main

    return serve_main([])


def cmd_cluster(args) -> int:  # pragma: no cover - dispatch happens in main()
    from repro.cluster.router import main as cluster_main

    return cluster_main([])


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``serve`` and ``cluster`` forward their flags verbatim to their own
    # parsers; argparse's REMAINDER cannot pass leading optionals through
    # a subparser, so dispatch before parsing.  Lazy import: the serving
    # stack is not needed for any other subcommand.
    if argv and argv[0] == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "cluster":
        from repro.cluster.router import main as cluster_main

        return cluster_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
