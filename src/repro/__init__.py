"""Reproduction of "One Pixel Adversarial Attacks via Sketched Programs".

The package is organized as:

- :mod:`repro.nn` -- a from-scratch numpy deep-learning framework used to
  train the image classifiers that the attacks target.
- :mod:`repro.data` -- procedurally generated CIFAR-like and ImageNet-like
  datasets (the offline stand-ins for the paper's datasets).
- :mod:`repro.models` -- scaled-down versions of the paper's architectures
  (VGG-16-BN, ResNet18, GoogLeNet, DenseNet121, ResNet50) plus a model zoo
  that trains-on-first-use and caches weights.
- :mod:`repro.classifier` -- the black-box query interface with query
  counting and budget enforcement.
- :mod:`repro.core` -- the paper's contribution: the one-pixel attack
  sketch (Algorithm 1), the condition DSL (Figure 1), and the OPPSLA
  synthesizer (Algorithm 2).
- :mod:`repro.attacks` -- the baselines: Sparse-RS, SuOPA (differential
  evolution), Sketch+False and Sketch+Random.
- :mod:`repro.eval` -- the experiment harness reproducing every table and
  figure of the paper's evaluation.
"""

__version__ = "1.0.0"

from repro.classifier.blackbox import CountingClassifier, QueryBudgetExceeded
from repro.core.dsl.ast import Program
from repro.core.sketch import OnePixelSketch, SketchResult
from repro.core.synthesis.oppsla import Oppsla, SynthesisResult

__all__ = [
    "OnePixelSketch",
    "SketchResult",
    "Program",
    "Oppsla",
    "SynthesisResult",
    "CountingClassifier",
    "QueryBudgetExceeded",
    "__version__",
]
