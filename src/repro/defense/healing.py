"""Pixel-healing detection of one-pixel adversarial examples.

A one-pixel adversarial example is, by construction, classification-
unstable at a single location: replacing the perturbed pixel with
something locally plausible restores the original class.  The detector
exploits that asymmetry (the idea behind OPA2D's detection/defense,
Nguyen-Son et al. 2021):

1. rank pixels by *local implausibility* -- the L1 distance from the
   median of their 3x3 neighbourhood (an adversarial corner write is
   almost always a local outlier);
2. for the top-k suspects, query the classifier with the pixel *healed*
   (replaced by that neighbourhood median);
3. if any healing flips the predicted class, flag the image as
   adversarial and return the healed image and location.

Clean images are stable under healing (their pixels are locally
plausible), so false positives come only from genuinely outlier pixels
that the classifier is also sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

Classifier = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class DetectionResult:
    """The detector's verdict on one image.

    When ``adversarial``, ``healed_image`` carries the restored image,
    ``location`` the suspected perturbed pixel, and ``restored_class``
    the class the healed image receives.
    """

    adversarial: bool
    queries: int
    location: Optional[Tuple[int, int]] = None
    healed_image: Optional[np.ndarray] = None
    original_class: Optional[int] = None
    restored_class: Optional[int] = None


def neighborhood_median(image: np.ndarray, row: int, col: int) -> np.ndarray:
    """Per-channel median of the 3x3 neighbourhood, excluding the pixel."""
    height, width = image.shape[:2]
    values = []
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            r, c = row + dr, col + dc
            if 0 <= r < height and 0 <= c < width:
                values.append(image[r, c])
    return np.median(np.stack(values), axis=0)


def implausibility_map(image: np.ndarray) -> np.ndarray:
    """L1 distance of every pixel from its 3x3 neighbourhood median."""
    height, width = image.shape[:2]
    scores = np.zeros((height, width))
    for row in range(height):
        for col in range(width):
            median = neighborhood_median(image, row, col)
            scores[row, col] = np.abs(image[row, col] - median).sum()
    return scores


class PixelHealingDetector:
    """Detects (and reverses) one-pixel adversarial examples.

    Parameters
    ----------
    classifier:
        The black-box classifier under attack.
    top_k:
        Number of most-implausible pixels to try healing.  Each healing
        costs one query, so detection costs at most ``top_k + 1`` queries
        (one to read the current prediction).
    """

    def __init__(self, classifier: Classifier, top_k: int = 8):
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.classifier = classifier
        self.top_k = top_k

    def detect(self, image: np.ndarray) -> DetectionResult:
        """Inspect one image for a one-pixel perturbation."""
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"image must be (H, W, 3), got {image.shape}")
        queries = 1
        original_class = int(np.argmax(self.classifier(image)))
        scores = implausibility_map(image)
        flat_order = np.argsort(-scores, axis=None)[: self.top_k]
        width = image.shape[1]
        for flat_index in flat_order:
            row, col = int(flat_index // width), int(flat_index % width)
            healed = image.copy()
            healed[row, col] = neighborhood_median(image, row, col)
            queries += 1
            restored_class = int(np.argmax(self.classifier(healed)))
            if restored_class != original_class:
                return DetectionResult(
                    adversarial=True,
                    queries=queries,
                    location=(row, col),
                    healed_image=healed,
                    original_class=original_class,
                    restored_class=restored_class,
                )
        return DetectionResult(
            adversarial=False, queries=queries, original_class=original_class
        )
