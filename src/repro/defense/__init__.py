"""Defenses against one-pixel attacks (extension beyond the paper).

The paper's related work cites OPA2D (Nguyen-Son et al., 2021), which
detects and reverses one-pixel attacks; :mod:`repro.defense.healing`
implements that idea on our substrate.
"""

from repro.defense.healing import DetectionResult, PixelHealingDetector

__all__ = ["PixelHealingDetector", "DetectionResult"]
