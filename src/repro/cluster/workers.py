"""Worker replicas: ``repro-serve`` subprocesses under supervision.

A cluster worker is not a new kind of server -- it is the existing
single-process :mod:`repro.serve` stack, spawned as a child process on a
loopback port.  Each worker therefore owns a frozen-or-eval model
replica, its own :class:`~repro.serve.broker.MicroBatchBroker`, its own
:class:`~repro.runtime.cache.QueryCache`, and paper-faithful per-session
accounting, all unchanged.  What this module adds is the process
plumbing the router needs: spawn with the right command line and
``PYTHONPATH``, health-check over HTTP, and terminate/kill.

Workers are intentionally stateless across restarts (no per-worker
checkpoint): the durable record of open sessions is the *router's*
ledger, which survives any worker's death and the tier's own restart.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.cluster.config import ClusterConfig, worker_argv

#: Worker lifecycle states, as the supervisor sees them.
BOOTING = "booting"
LIVE = "live"
DEAD = "dead"
STOPPED = "stopped"


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (momentarily bound, then released)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def http_json(
    address: Tuple[str, int],
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict]:
    """One JSON round trip to a worker (or any serve-protocol peer).

    Returns ``(status, payload)`` for every HTTP status -- 4xx/5xx are
    responses to relay, not exceptions; only transport failures raise
    (``OSError``/``URLError``), which is the signal a worker is gone.
    """
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        try:
            payload = json.load(error)
        except (json.JSONDecodeError, ValueError):
            payload = {"error": error.reason}
        return error.code, payload


class WorkerProcess:
    """One supervised worker slot: a name, a port, and a child process.

    The slot outlives any single process: a crashed worker is respawned
    into the same slot (same name, same port), keeping the router's
    bookkeeping stable across restarts.
    """

    def __init__(
        self,
        name: str,
        port: int,
        config: ClusterConfig,
        argv_builder=None,
    ):
        self.name = name
        self.port = port
        self.config = config
        #: Optional ``(config, port) -> argv`` override.  The default is
        #: :func:`worker_argv` (a ``repro-serve`` replica); the shared
        #: cache service passes its own builder so it can reuse this
        #: slot's spawn/health/terminate plumbing and the supervisor's
        #: restart policy unchanged.
        self.argv_builder = argv_builder if argv_builder is not None else worker_argv
        self.proc: Optional[subprocess.Popen] = None
        self.state = STOPPED
        self.restarts = 0  # respawns after a death (first spawn excluded)
        self.missed_heartbeats = 0
        self.next_spawn_at: Optional[float] = None  # backoff deadline

    @property
    def address(self) -> Tuple[str, int]:
        return ("127.0.0.1", self.port)

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def spawn(self) -> None:
        """Start (or restart) the child process for this slot."""
        env = dict(os.environ)
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            self.argv_builder(self.config, self.port),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.state = BOOTING
        self.missed_heartbeats = 0
        self.next_spawn_at = None

    def process_alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def healthy(self, timeout: float = 2.0) -> bool:
        """One heartbeat: the worker answers ``/healthz`` with 200.

        A draining worker answers 503 and is deliberately counted
        unhealthy -- routers must stop sending traffic to it (that is the
        point of the draining health state).
        """
        if not self.process_alive():
            return False
        try:
            status, _ = http_json(self.address, "GET", "/healthz", timeout=timeout)
        except (OSError, urllib.error.URLError):
            return False
        return status == 200

    def wait_healthy(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.process_alive():
                return False
            if self.healthy(timeout=1.0):
                self.state = LIVE
                self.missed_heartbeats = 0
                return True
            time.sleep(0.05)
        return False

    def kill(self) -> None:
        """SIGKILL the child (crash simulation and last-resort cleanup).

        Deliberately leaves :attr:`state` alone: declaring death is the
        supervisor's call, via the same sweep that would catch a real
        crash -- which is exactly what kill() simulates.
        """
        if self.process_alive():
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self, timeout: float = 30.0) -> Optional[int]:
        """SIGTERM the child and wait for its graceful exit.

        Returns the exit code, or ``None`` if there was no process.  A
        worker that ignores SIGTERM past ``timeout`` is killed.
        """
        if self.proc is None:
            self.state = STOPPED
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        self.state = STOPPED
        return self.proc.returncode

    def describe(self) -> Dict:
        """JSON-safe slot status for the cluster ``/metrics`` plane."""
        return {
            "name": self.name,
            "port": self.port,
            "pid": self.pid,
            "state": self.state,
            "restarts": self.restarts,
        }
