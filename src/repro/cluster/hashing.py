"""Consistent hashing for sticky session sharding.

The router must send every request for a given session to the same
worker -- per-session ``StepCounter`` accounting lives in exactly one
:class:`~repro.serve.sessions.AttackSession`, so a submission that
lands on worker A and a poll that lands on worker B would simply 404.
A :class:`HashRing` gives that stickiness a shape that also survives
membership change: each worker owns many small arcs of a hash circle
(virtual nodes), a session id hashes to a point on the circle, and the
next arc clockwise owns it.  When a worker dies, *only its arcs* are
re-assigned -- every session on a surviving worker keeps its placement,
which is what bounds the blast radius of a crash to the dead replica's
sessions.

Deterministic by construction (MD5, no process randomness): the same
member set always produces the same assignment, so tests and the
differential kill harness can predict placements.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional

#: Virtual nodes per member.  More vnodes smooth the load split between
#: workers at the cost of a larger sorted ring; 64 keeps the worst-case
#: imbalance for small clusters (2-8 workers) under ~20%.
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """A stable 64-bit position on the circle for ``key``."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash circle over named members.

    Not thread-safe on its own; the router guards membership changes and
    lookups with its state lock.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted vnode positions
        self._owners: Dict[int, str] = {}  # position -> member
        self._members: Dict[str, List[int]] = {}  # member -> its positions

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    def members(self) -> List[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        """Insert a member; idempotent."""
        if member in self._members:
            return
        positions = []
        for vnode in range(self.vnodes):
            position = _point(f"{member}#{vnode}")
            # An MD5 collision between vnode keys is effectively
            # impossible, but skipping keeps ownership well-defined.
            if position in self._owners:
                continue
            self._owners[position] = member
            bisect.insort(self._points, position)
            positions.append(position)
        self._members[member] = positions

    def remove(self, member: str) -> None:
        """Drop a member; idempotent.  Only its arcs change owners."""
        positions = self._members.pop(member, None)
        if not positions:
            return
        for position in positions:
            del self._owners[position]
            index = bisect.bisect_left(self._points, position)
            del self._points[index]

    def assign(self, key: str) -> Optional[str]:
        """The member owning ``key``; ``None`` on an empty ring."""
        if not self._points:
            return None
        position = _point(key)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap: the circle has no end
        return self._owners[self._points[index]]

    def spread(self, keys) -> Dict[str, int]:
        """How many of ``keys`` land on each member (diagnostics)."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            owner = self.assign(key)
            if owner is not None:
                counts[owner] += 1
        return counts
