"""``python -m repro.cluster`` -- run a sharded serve tier."""

from repro.cluster.router import main

if __name__ == "__main__":
    raise SystemExit(main())
