"""The shared L2 cache service: one tiny process, one bounded store.

The cluster tier's workers each own a private L1
:class:`~repro.runtime.cache.QueryCache`; this module supplies the
*shared* tier behind :class:`~repro.runtime.cache.TieredQueryCache` --
a dedicated lightweight process holding one bounded LRU of
``image digest -> score vector``, spoken to over loopback HTTP.  Two
replicas that score the same image stop paying the forward pass twice:
the first writes the scores through, the second's batched L2 lookup
finds them.

Why a separate process and not router-side state: the router is a
control plane (routing, supervision, ledger) and deliberately holds no
query-path state, so it can crash and resume from the ledger alone; and
workers talk to the cache directly, keeping the router out of the hot
path.  The service is supervised exactly like a worker slot -- spawned
first, health-checked, restarted with backoff -- and its loss is never
an error: clients degrade to private-L1 behaviour (attack results are
bit-identical either way; the shared tier only saves forward passes).

Protocol (JSON over HTTP, digests as hex, scores via
:func:`~repro.runtime.cache.encode_scores` -- bit-exact)::

    POST /cache/lookup {"keys": [hex, ...]}    -> {"hits": {hex: scores}}
    POST /cache/store  {"entries": {hex: scores}} -> {"stored": n}
    GET  /healthz                              -> {"status": "ok"}
    GET  /metrics                              -> store + traffic stats

Both data endpoints are batched: one round trip serves a whole
evaluation's misses (lookup) or a whole model batch (store).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.runtime.cache import (
    QueryCache,
    decode_scores,
    encode_scores,
    normalized_cache_size,
)

DEFAULT_CACHE_PORT = 8890
DEFAULT_SHARED_SIZE = 65536


def parse_cache_address(value: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)``; raises ``ValueError`` on junk."""
    host, separator, port = value.rpartition(":")
    if not separator or not host:
        raise ValueError(f"shared cache address must be HOST:PORT, got {value!r}")
    return host, int(port)


class SharedCacheService:
    """The store plus its HTTP plumbing, embeddable or standalone.

    Reuses :class:`~repro.runtime.cache.QueryCache` as the bounded LRU
    (same eviction, same thread safety, same stats shape), and counts
    the service-level traffic -- lookups, stores, hit/miss totals across
    all clients -- that the cluster ``/metrics`` rollup reports as the
    shared tier's view of itself.
    """

    def __init__(self, maxsize: int = DEFAULT_SHARED_SIZE):
        size = normalized_cache_size(maxsize)
        if size is None:
            raise ValueError("shared cache service needs a positive size")
        self.store = QueryCache(size)
        self._lock = threading.Lock()
        self.lookups = 0  # lookup round trips served
        self.stores = 0  # store round trips served

    def lookup(self, keys: Iterable[str]) -> Dict[str, Dict]:
        hits: Dict[str, Dict] = {}
        for hexkey in keys:
            scores = self.store.get(bytes.fromhex(hexkey))
            if scores is not None:
                hits[hexkey] = encode_scores(scores)
        with self._lock:
            self.lookups += 1
        return hits

    def put(self, entries: Mapping[str, Mapping]) -> int:
        for hexkey, payload in entries.items():
            self.store.put(bytes.fromhex(hexkey), decode_scores(payload))
        with self._lock:
            self.stores += 1
        return len(entries)

    def stats(self) -> Dict:
        snapshot = self.store.stats()
        with self._lock:
            snapshot["lookups"] = self.lookups
            snapshot["store_calls"] = self.stores
        return snapshot


class _CacheHandler(BaseHTTPRequestHandler):
    service: SharedCacheService  # injected per server instance

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # supervised child; stdout noise helps nobody

    def _reply(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length))

    def do_GET(self):  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._reply(200, {"status": "ok", "role": "shared-cache"})
        elif self.path == "/metrics":
            self._reply(200, {"shared_cache": self.service.stats()})
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self):  # noqa: N802 - stdlib naming
        try:
            body = self._read_body()
            if self.path == "/cache/lookup":
                hits = self.service.lookup(body.get("keys", []))
                self._reply(200, {"hits": hits})
            elif self.path == "/cache/store":
                stored = self.service.put(body.get("entries", {}))
                self._reply(200, {"stored": stored})
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})
        except (ValueError, KeyError, TypeError) as error:
            self._reply(400, {"error": str(error)})


def _build_server(host: str, port: int, service: SharedCacheService):
    handler = type("BoundCacheHandler", (_CacheHandler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class CacheServiceHandle:
    """An in-process shared cache for tests: real HTTP, no subprocess."""

    def __init__(self, maxsize: int = DEFAULT_SHARED_SIZE, host: str = "127.0.0.1"):
        self.service = SharedCacheService(maxsize)
        self._server = _build_server(host, 0, self.service)
        self.address: Tuple[str, int] = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="shared-cache",
            daemon=True,
        )
        self._thread.start()

    def client(self) -> "HttpSharedCacheClient":
        return HttpSharedCacheClient(self.address)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "CacheServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class HttpSharedCacheClient:
    """The worker-side L2 client :class:`TieredQueryCache` plugs in.

    Both operations are one HTTP round trip and raise :class:`OSError`
    on transport failure (``urllib``'s ``URLError`` is an ``OSError``
    subclass), which is exactly the signal the tiered cache's degraded
    mode consumes.
    """

    def __init__(self, address: Tuple[str, int], timeout: float = 5.0):
        self.address = address
        self.timeout = timeout

    def lookup(self, keys: List[bytes]) -> Dict[bytes, np.ndarray]:
        from repro.cluster.workers import http_json

        status, payload = http_json(
            self.address,
            "POST",
            "/cache/lookup",
            body=json.dumps({"keys": [key.hex() for key in keys]}).encode("utf-8"),
            timeout=self.timeout,
        )
        if status != 200:
            return {}
        return {
            bytes.fromhex(hexkey): decode_scores(encoded)
            for hexkey, encoded in payload.get("hits", {}).items()
        }

    def store(self, entries: Mapping[bytes, np.ndarray]) -> None:
        from repro.cluster.workers import http_json

        body = json.dumps(
            {
                "entries": {
                    key.hex(): encode_scores(scores)
                    for key, scores in entries.items()
                }
            }
        ).encode("utf-8")
        http_json(
            self.address, "POST", "/cache/store", body=body, timeout=self.timeout
        )


def cacheservice_argv(port: int, size: int = DEFAULT_SHARED_SIZE) -> List[str]:
    """The command line for one supervised cache-service child."""
    return [
        sys.executable,
        "-m",
        "repro.cluster.cacheservice",
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--size",
        str(size),
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cacheservice",
        description="Shared L2 query-cache service for the cluster tier.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_CACHE_PORT)
    parser.add_argument(
        "--size",
        type=int,
        default=DEFAULT_SHARED_SIZE,
        help="bounded LRU capacity (entries)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    service = SharedCacheService(args.size)
    server = _build_server(args.host, args.port, service)

    def _terminate(signum, frame):
        # Graceful stop: the store is a cache, so there is nothing to
        # persist -- exit 0 and let clients fall back to L1.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
